//! The pluggable EMD backend layer.
//!
//! [`EmdBackend`] is the object-safe trait every distance implementation
//! satisfies. Beyond the single-pair distance it exposes a *pairwise-batch*
//! API: given all leaf histograms of a node, a backend returns the full
//! pairwise (or cross) distance contribution in one call, which lets an
//! implementation hoist per-histogram work out of the O(L²) pair loop.
//! Three implementations ship:
//!
//! * [`TransportBackend`] — the reference minimum-cost transportation
//!   solver. Its inputs are put into a canonical order before solving, so
//!   `d(a, b)` and `d(b, a)` are *bitwise* identical (the solver's pivoting
//!   is not otherwise guaranteed symmetric at the bit level); downstream
//!   memo tables can therefore key on unordered pairs.
//! * [`OneDBackend`] — the exact 1-D closed form (CDF difference), already
//!   bitwise symmetric because IEEE negation is exact.
//! * [`BatchedOneDBackend`] — the closed-form 1-D EMD with batch-level
//!   hoisting: every histogram's normalized mass vector is computed once
//!   per batch (the per-pair allocations and divisions of the plain 1-D
//!   path), and each pair is then folded in the *reference summation
//!   order* (`cum += pa_i − pb_i; total += |cum|`). Subtracting hoisted
//!   prefix-sum CDFs (`|CDF_a − CDF_b|`) would change the rounding of that
//!   fold, so the batched backend hoists masses instead of CDFs — the
//!   result is bit-identical (0 ULP) to [`OneDBackend`], not merely close.
//!   Bins are already in ascending score order by construction, so no sort
//!   step is needed.
//!
//! A fourth implementation, [`super::kernel::KernelOneDBackend`], lives in
//! its own module: the same closed form folded in structure-of-arrays
//! order, all pairs of a batch advancing one bin level at a time.
//!
//! Equivalence guarantees, pinned by `tests/emd_backend_equivalence.rs`:
//!
//! | backend     | vs. 1-D closed form | symmetry        |
//! |-------------|---------------------|-----------------|
//! | `1d`        | identity            | bitwise (exact) |
//! | `batched`   | bit-identical (0 ULP) | bitwise (exact) |
//! | `kernel`    | bit-identical (0 ULP) | bitwise (exact) |
//! | `transport` | ≤ 1e-9 (solver eps) | bitwise (canonical input order) |

use std::cmp::Ordering;

use crate::error::Result;
use crate::histogram::{Histogram, HistogramSpec};

use super::{one_d, transport, EmdBackendKind};

/// An EMD implementation: single-pair distance plus batch entry points.
///
/// All methods honor the module's empty-histogram conventions (empty vs.
/// empty is `0`, empty vs. non-empty is the spec's range width) and error
/// on incompatible specs, exactly like [`super::Emd::distance`].
pub trait EmdBackend: Send + Sync {
    /// The selector this implementation answers to.
    fn kind(&self) -> EmdBackendKind;

    /// The command-syntax name (`1d` / `transport` / `batched`).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Distance between two histograms sharing a spec.
    fn pair(&self, a: &Histogram, b: &Histogram) -> Result<f64>;

    /// All `C(L, 2)` unordered pairwise distances among `hists`, pushed
    /// onto `out` in lexicographic pair order `(0,1), (0,2), …`.
    fn pairwise(&self, hists: &[Histogram], out: &mut Vec<f64>) -> Result<()> {
        for i in 0..hists.len() {
            for j in (i + 1)..hists.len() {
                out.push(self.pair(&hists[i], &hists[j])?);
            }
        }
        Ok(())
    }

    /// All `|left| × |right|` cross distances (left outer, right inner —
    /// the order `cross_distances` has always used).
    fn cross(&self, left: &[Histogram], right: &[Histogram], out: &mut Vec<f64>) -> Result<()> {
        for a in left {
            for b in right {
                out.push(self.pair(a, b)?);
            }
        }
        Ok(())
    }
}

/// The empty-histogram conventions: `Some(distance)` when a convention
/// decides the pair, `None` when both histograms are non-empty and the
/// backend must compute. The single source every distance path — including
/// the engine's id-level batch path via [`one_d_from_parts`] — goes
/// through, so the conventions cannot drift apart.
pub(crate) fn convention(a_empty: bool, b_empty: bool, spec: &HistogramSpec) -> Option<f64> {
    match (a_empty, b_empty) {
        (true, true) => Some(0.0),
        (true, false) | (false, true) => Some(spec.hi() - spec.lo()),
        (false, false) => None,
    }
}

/// The shared compatibility check + empty-histogram conventions.
fn special_case(a: &Histogram, b: &Histogram) -> Result<Option<f64>> {
    a.check_compatible(b)?;
    Ok(convention(a.is_empty(), b.is_empty(), a.spec()))
}

/// The complete 1-D closed-form distance over pre-separated parts
/// (emptiness flags + normalized masses): conventions, then the reference
/// fold. Crate-visible so the engine's batch path computes the exact same
/// bits from its cached mass vectors without materializing histograms.
pub(crate) fn one_d_from_parts(
    a_empty: bool,
    b_empty: bool,
    mass_a: &[f64],
    mass_b: &[f64],
    spec: &HistogramSpec,
) -> f64 {
    convention(a_empty, b_empty, spec)
        .unwrap_or_else(|| one_d::emd_1d_mass(mass_a, mass_b, spec.bin_width()))
}

/// The 1-D closed-form pair distance on already-normalized masses.
pub(crate) fn one_d_pair(a: &Histogram, b: &Histogram) -> Result<f64> {
    if let Some(d) = special_case(a, b)? {
        return Ok(d);
    }
    Ok(one_d::emd_1d_mass(&a.mass(), &b.mass(), a.spec().bin_width()))
}

/// Exact 1-D closed form (CDF difference) — the default backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneDBackend;

impl EmdBackend for OneDBackend {
    fn kind(&self) -> EmdBackendKind {
        EmdBackendKind::OneD
    }

    fn pair(&self, a: &Histogram, b: &Histogram) -> Result<f64> {
        one_d_pair(a, b)
    }
}

/// The general transportation solver with `|center_i − center_j|` costs —
/// the reference backend, canonicalized for bitwise symmetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportBackend;

impl TransportBackend {
    /// The `|center_i − center_j|` ground-distance matrix of a spec.
    fn cost_matrix(spec: &HistogramSpec) -> Vec<f64> {
        let n = spec.bins();
        let mut cost = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                cost[i * n + j] = (spec.bin_center(i) - spec.bin_center(j)).abs();
            }
        }
        cost
    }

    /// One pair solve against an already-built cost matrix. Compatibility
    /// is checked per pair, so a batch whose histograms disagree on the
    /// spec errors before any mismatched cost matrix is ever consulted.
    fn pair_with_cost(a: &Histogram, b: &Histogram, cost: &[f64]) -> Result<f64> {
        if let Some(d) = special_case(a, b)? {
            return Ok(d);
        }
        // The ground-distance matrix is symmetric, so EMD(a, b) = EMD(b, a)
        // mathematically — but the solver's augmenting-path order is input-
        // order dependent, so the two directions could differ in the last
        // ulp. Solving in a canonical input order makes the distance
        // bitwise symmetric by construction, which in turn lets memo tables
        // share one entry per unordered pair.
        let pa = a.mass();
        let pb = b.mass();
        let (supply, demand) = match pa.as_slice().partial_cmp(pb.as_slice()) {
            Some(Ordering::Greater) => (&pb, &pa),
            _ => (&pa, &pb),
        };
        let plan = transport::transport_emd(supply, demand, cost, a.spec().bins())?;
        Ok(plan.cost)
    }
}

impl EmdBackend for TransportBackend {
    fn kind(&self) -> EmdBackendKind {
        EmdBackendKind::Transport
    }

    fn pair(&self, a: &Histogram, b: &Histogram) -> Result<f64> {
        Self::pair_with_cost(a, b, &Self::cost_matrix(a.spec()))
    }

    fn pairwise(&self, hists: &[Histogram], out: &mut Vec<f64>) -> Result<()> {
        // One cost matrix per batch: the spec is shared (any mismatch
        // errors in `pair_with_cost`), so the O(bins²) build is hoisted
        // out of the O(L²) pair loop.
        let Some(first) = hists.first() else {
            return Ok(());
        };
        let cost = Self::cost_matrix(first.spec());
        for i in 0..hists.len() {
            for j in (i + 1)..hists.len() {
                out.push(Self::pair_with_cost(&hists[i], &hists[j], &cost)?);
            }
        }
        Ok(())
    }

    fn cross(&self, left: &[Histogram], right: &[Histogram], out: &mut Vec<f64>) -> Result<()> {
        let Some(first) = left.first() else {
            return Ok(());
        };
        let cost = Self::cost_matrix(first.spec());
        for a in left {
            for b in right {
                out.push(Self::pair_with_cost(a, b, &cost)?);
            }
        }
        Ok(())
    }
}

/// The closed-form batched 1-D backend: mass vectors are normalized once
/// per batch, then every pair is folded in the reference summation order —
/// bit-identical to [`OneDBackend`], without the per-pair normalization
/// allocations the plain path performs on every computed pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchedOneDBackend;

impl BatchedOneDBackend {
    fn pair_from_masses(
        a: &Histogram,
        b: &Histogram,
        mass_a: &[f64],
        mass_b: &[f64],
    ) -> Result<f64> {
        a.check_compatible(b)?;
        Ok(one_d_from_parts(
            a.is_empty(),
            b.is_empty(),
            mass_a,
            mass_b,
            a.spec(),
        ))
    }
}

impl EmdBackend for BatchedOneDBackend {
    fn kind(&self) -> EmdBackendKind {
        EmdBackendKind::Batched
    }

    fn pair(&self, a: &Histogram, b: &Histogram) -> Result<f64> {
        one_d_pair(a, b)
    }

    fn pairwise(&self, hists: &[Histogram], out: &mut Vec<f64>) -> Result<()> {
        let masses: Vec<Vec<f64>> = hists.iter().map(Histogram::mass).collect();
        for i in 0..hists.len() {
            for j in (i + 1)..hists.len() {
                out.push(Self::pair_from_masses(
                    &hists[i], &hists[j], &masses[i], &masses[j],
                )?);
            }
        }
        Ok(())
    }

    fn cross(&self, left: &[Histogram], right: &[Histogram], out: &mut Vec<f64>) -> Result<()> {
        let left_masses: Vec<Vec<f64>> = left.iter().map(Histogram::mass).collect();
        let right_masses: Vec<Vec<f64>> = right.iter().map(Histogram::mass).collect();
        for (a, mass_a) in left.iter().zip(&left_masses) {
            for (b, mass_b) in right.iter().zip(&right_masses) {
                out.push(Self::pair_from_masses(a, b, mass_a, mass_b)?);
            }
        }
        Ok(())
    }
}

impl EmdBackendKind {
    /// The implementation behind this selector.
    pub fn implementation(&self) -> &'static dyn EmdBackend {
        static ONE_D: OneDBackend = OneDBackend;
        static TRANSPORT: TransportBackend = TransportBackend;
        static BATCHED: BatchedOneDBackend = BatchedOneDBackend;
        static KERNEL: super::kernel::KernelOneDBackend = super::kernel::KernelOneDBackend;
        match self {
            EmdBackendKind::OneD => &ONE_D,
            EmdBackendKind::Transport => &TRANSPORT,
            EmdBackendKind::Batched => &BATCHED,
            EmdBackendKind::Kernel => &KERNEL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramSpec;

    fn hist(scores: &[f64]) -> Histogram {
        Histogram::from_scores(HistogramSpec::unit(10).unwrap(), scores.iter().copied())
    }

    #[test]
    fn kinds_resolve_to_their_implementations() {
        for kind in EmdBackendKind::all() {
            assert_eq!(kind.implementation().kind(), kind);
            assert_eq!(kind.implementation().name(), kind.name());
        }
    }

    #[test]
    fn batched_pair_is_bit_identical_to_one_d() {
        let a = hist(&[0.05, 0.15, 0.15, 0.35, 0.75, 0.85]);
        let b = hist(&[0.25, 0.45, 0.55, 0.95]);
        let d1 = OneDBackend.pair(&a, &b).unwrap();
        let db = BatchedOneDBackend.pair(&a, &b).unwrap();
        assert_eq!(d1.to_bits(), db.to_bits());
    }

    #[test]
    fn batched_pairwise_matches_per_pair_loop_bitwise() {
        let hists = vec![
            hist(&[0.05, 0.05]),
            hist(&[0.55, 0.55]),
            hist(&[0.95, 0.95]),
            hist(&[0.05, 0.95]),
        ];
        let mut per_pair = Vec::new();
        OneDBackend.pairwise(&hists, &mut per_pair).unwrap();
        let mut batched = Vec::new();
        BatchedOneDBackend.pairwise(&hists, &mut batched).unwrap();
        assert_eq!(per_pair.len(), 6);
        for (x, y) in per_pair.iter().zip(&batched) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn batched_cross_matches_per_pair_loop_bitwise() {
        let left = vec![hist(&[0.05]), hist(&[0.45, 0.55])];
        let right = vec![hist(&[0.95]), hist(&[0.25]), hist(&[0.65, 0.75])];
        let mut per_pair = Vec::new();
        OneDBackend.cross(&left, &right, &mut per_pair).unwrap();
        let mut batched = Vec::new();
        BatchedOneDBackend.cross(&left, &right, &mut batched).unwrap();
        assert_eq!(per_pair.len(), 6);
        for (x, y) in per_pair.iter().zip(&batched) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn transport_pair_is_bitwise_symmetric() {
        let a = hist(&[0.1, 0.2, 0.35, 0.8]);
        let b = hist(&[0.6, 0.7, 0.9]);
        let ab = TransportBackend.pair(&a, &b).unwrap();
        let ba = TransportBackend.pair(&b, &a).unwrap();
        assert_eq!(ab.to_bits(), ba.to_bits());
    }

    #[test]
    fn batch_entry_points_honor_empty_conventions() {
        let spec = HistogramSpec::unit(10).unwrap();
        let empty = Histogram::empty(spec);
        let full = hist(&[0.5]);
        let hists = vec![empty.clone(), full.clone(), Histogram::empty(spec)];
        let mut out = Vec::new();
        BatchedOneDBackend.pairwise(&hists, &mut out).unwrap();
        // (empty, full) = 1, (empty, empty) = 0, (full, empty) = 1.
        assert_eq!(out, vec![1.0, 0.0, 1.0]);
        let mut out = Vec::new();
        BatchedOneDBackend
            .cross(std::slice::from_ref(&empty), &hists, &mut out)
            .unwrap();
        assert_eq!(out, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn incompatible_specs_error_in_batches_too() {
        let a = Histogram::empty(HistogramSpec::unit(5).unwrap());
        let b = Histogram::empty(HistogramSpec::unit(10).unwrap());
        let mut out = Vec::new();
        assert!(BatchedOneDBackend
            .pairwise(&[a.clone(), b.clone()], &mut out)
            .is_err());
        let mut out = Vec::new();
        assert!(BatchedOneDBackend
            .cross(std::slice::from_ref(&a), std::slice::from_ref(&b), &mut out)
            .is_err());
    }
}
