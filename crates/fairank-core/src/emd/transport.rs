//! General Earth Mover's Distance as a minimum-cost transportation problem.
//!
//! This is the reference backend: given supplies, demands and an arbitrary
//! non-negative ground-distance matrix, it computes the cheapest flow moving
//! the supply distribution onto the demand distribution. FaiRank's default
//! 1-D backend is validated against this solver (experiment E11), and this
//! solver additionally supports non-uniform ground distances (e.g.
//! thresholded distances as in Pele & Werman's EMD-hat).
//!
//! The implementation is successive shortest augmenting paths with Johnson
//! potentials: costs are non-negative, so Dijkstra applies throughout and
//! every augmentation moves as much mass as the bottleneck allows. For the
//! bin counts FaiRank uses (≤ a few hundred) this is far below a
//! millisecond.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{CoreError, Result};

/// Mass below this threshold is treated as zero when routing flow.
const MASS_EPS: f64 = 1e-12;

/// The result of a transportation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportPlan {
    /// Total transported cost: `Σ flow_ij · cost_ij`, i.e. the EMD when the
    /// inputs are probability distributions.
    pub cost: f64,
    /// Non-zero flows as `(supply_index, demand_index, amount)` triples.
    pub flows: Vec<(usize, usize, f64)>,
    /// Total mass moved (`min(Σ supply, Σ demand)`).
    pub moved: f64,
}

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    rev: usize,
    cap: f64,
    cost: f64,
}

struct Network {
    graph: Vec<Vec<Edge>>,
}

impl Network {
    fn new(nodes: usize) -> Self {
        Network {
            graph: vec![Vec::new(); nodes],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) {
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(Edge {
            to,
            rev: rev_from,
            cap,
            cost,
        });
        self.graph[to].push(Edge {
            to: from,
            rev: rev_to,
            cap: 0.0,
            cost: -cost,
        });
    }
}

/// Max-heap entry ordered by smallest distance first.
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want smallest dist.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Solves the transportation problem.
///
/// * `supply` — mass available at each source bin.
/// * `demand` — mass required at each destination bin.
/// * `cost` — row-major `supply.len() × width` ground-distance matrix,
///   where `width == demand.len()`.
///
/// Total supply and demand need not match; the solver moves
/// `min(Σ supply, Σ demand)` (partial EMD). All costs must be finite and
/// non-negative, all masses non-negative.
pub fn transport_emd(
    supply: &[f64],
    demand: &[f64],
    cost: &[f64],
    width: usize,
) -> Result<TransportPlan> {
    let n = supply.len();
    let m = demand.len();
    if width != m {
        return Err(CoreError::InvalidScoring(format!(
            "cost matrix width {width} does not match demand bins {m}"
        )));
    }
    if cost.len() != n * m {
        return Err(CoreError::InvalidScoring(format!(
            "cost matrix has {} entries, expected {}",
            cost.len(),
            n * m
        )));
    }
    if supply.iter().chain(demand).any(|&v| !v.is_finite() || v < 0.0) {
        return Err(CoreError::InvalidScoring(
            "supplies and demands must be finite and non-negative".into(),
        ));
    }
    if cost.iter().any(|&c| !c.is_finite() || c < 0.0) {
        return Err(CoreError::InvalidScoring(
            "ground distances must be finite and non-negative".into(),
        ));
    }

    let total_supply: f64 = supply.iter().sum();
    let total_demand: f64 = demand.iter().sum();
    let target = total_supply.min(total_demand);
    if target <= MASS_EPS {
        return Ok(TransportPlan {
            cost: 0.0,
            flows: Vec::new(),
            moved: 0.0,
        });
    }

    // Node layout: 0 = source, 1..=n supplies, n+1..=n+m demands, n+m+1 sink.
    let source = 0;
    let sink = n + m + 1;
    let mut net = Network::new(n + m + 2);
    for (i, &s) in supply.iter().enumerate() {
        if s > MASS_EPS {
            net.add_edge(source, 1 + i, s, 0.0);
        }
    }
    for (j, &d) in demand.iter().enumerate() {
        if d > MASS_EPS {
            net.add_edge(1 + n + j, sink, d, 0.0);
        }
    }
    for (i, &s) in supply.iter().enumerate() {
        if s <= MASS_EPS {
            continue;
        }
        for (j, &d) in demand.iter().enumerate() {
            if d <= MASS_EPS {
                continue;
            }
            net.add_edge(1 + i, 1 + n + j, f64::INFINITY, cost[i * m + j]);
        }
    }

    let nodes = net.graph.len();
    let mut potential = vec![0.0f64; nodes];
    let mut moved = 0.0f64;
    let mut total_cost = 0.0f64;
    let mut dist = vec![f64::INFINITY; nodes];
    let mut prev: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); nodes];

    while target - moved > MASS_EPS {
        // Dijkstra over reduced costs.
        dist.iter_mut().for_each(|d| *d = f64::INFINITY);
        prev.iter_mut().for_each(|p| *p = (usize::MAX, usize::MAX));
        dist[source] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] + MASS_EPS {
                continue;
            }
            for (ei, e) in net.graph[u].iter().enumerate() {
                if e.cap <= MASS_EPS {
                    continue;
                }
                let nd = dist[u] + e.cost + potential[u] - potential[e.to];
                if nd + MASS_EPS < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = (u, ei);
                    heap.push(HeapEntry {
                        dist: nd,
                        node: e.to,
                    });
                }
            }
        }
        if !dist[sink].is_finite() {
            // No augmenting path left; numerical residue below eps remains.
            break;
        }
        for v in 0..nodes {
            if dist[v].is_finite() {
                potential[v] += dist[v];
            }
        }
        // Bottleneck along the path.
        let mut push = target - moved;
        let mut v = sink;
        while v != source {
            let (u, ei) = prev[v];
            push = push.min(net.graph[u][ei].cap);
            v = u;
        }
        if push <= MASS_EPS {
            break;
        }
        // Apply flow.
        let mut v = sink;
        while v != source {
            let (u, ei) = prev[v];
            total_cost += push * net.graph[u][ei].cost;
            net.graph[u][ei].cap -= push;
            let rev = net.graph[u][ei].rev;
            net.graph[v][rev].cap += push;
            v = u;
        }
        moved += push;
    }

    // Extract supply→demand flows from reverse-edge capacities.
    let mut flows = Vec::new();
    for i in 0..n {
        for e in &net.graph[1 + i] {
            if e.to > n && e.to <= n + m {
                // Forward arc; flow equals the reverse edge's capacity.
                let flow = net.graph[e.to][e.rev].cap;
                if flow > MASS_EPS {
                    flows.push((i, e.to - n - 1, flow));
                }
            }
        }
    }

    Ok(TransportPlan {
        cost: total_cost,
        flows,
        moved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abs_cost(n: usize) -> Vec<f64> {
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                c[i * n + j] = (i as f64 - j as f64).abs();
            }
        }
        c
    }

    #[test]
    fn identical_distributions_cost_nothing() {
        let m = [0.25, 0.25, 0.5];
        let plan = transport_emd(&m, &m, &abs_cost(3), 3).unwrap();
        assert!(plan.cost.abs() < 1e-9);
        assert!((plan.moved - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_shift_costs_distance() {
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 0.0, 1.0];
        let plan = transport_emd(&a, &b, &abs_cost(3), 3).unwrap();
        assert!((plan.cost - 2.0).abs() < 1e-9);
        assert_eq!(plan.flows, vec![(0, 2, 1.0)]);
    }

    #[test]
    fn split_flow_uses_cheapest_routes() {
        let a = [0.6, 0.4, 0.0];
        let b = [0.0, 0.5, 0.5];
        let plan = transport_emd(&a, &b, &abs_cost(3), 3).unwrap();
        // Optimal: 0.5 from bin0→bin1? No: bin1 demand 0.5 gets 0.4 from
        // bin1 (free) + 0.1 from bin0 (cost 0.1); bin2 gets 0.5 from bin0
        // (cost 1.0). Total = 0.1 + 1.0 = 1.1.
        assert!((plan.cost - 1.1).abs() < 1e-9, "cost={}", plan.cost);
        let moved: f64 = plan.flows.iter().map(|f| f.2).sum();
        assert!((moved - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_transport_moves_min_mass() {
        let a = [0.5, 0.0];
        let b = [0.0, 1.0];
        let plan = transport_emd(&a, &b, &abs_cost(2), 2).unwrap();
        assert!((plan.moved - 0.5).abs() < 1e-9);
        assert!((plan.cost - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_mass_inputs_yield_empty_plan() {
        let plan = transport_emd(&[0.0, 0.0], &[0.0], &[0.0, 0.0], 1).unwrap();
        assert_eq!(plan.cost, 0.0);
        assert!(plan.flows.is_empty());
    }

    #[test]
    fn rectangular_instances_are_supported() {
        // 2 supplies, 3 demands.
        let a = [0.5, 0.5];
        let b = [0.2, 0.3, 0.5];
        let cost = [0.0, 1.0, 2.0, 1.0, 0.0, 1.0];
        let plan = transport_emd(&a, &b, &cost, 3).unwrap();
        // supply0 covers demand0 (0.2 @ 0) + demand1 (0.3 @ 1);
        // supply1 covers demand2 (0.5 @ 1). Total = 0.3 + 0.5 = 0.8.
        assert!((plan.cost - 0.8).abs() < 1e-9, "cost={}", plan.cost);
    }

    #[test]
    fn validation_errors() {
        assert!(transport_emd(&[1.0], &[1.0], &[0.0, 0.0], 1).is_err());
        assert!(transport_emd(&[1.0], &[1.0], &[0.0], 2).is_err());
        assert!(transport_emd(&[-1.0], &[1.0], &[0.0], 1).is_err());
        assert!(transport_emd(&[1.0], &[1.0], &[-2.0], 1).is_err());
        assert!(transport_emd(&[f64::NAN], &[1.0], &[0.0], 1).is_err());
    }

    #[test]
    fn thresholded_ground_distance() {
        // EMD-hat style: distances capped at 1. Moving across 2 bins now
        // costs the same as across 1.
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 0.0, 1.0];
        let mut cost = abs_cost(3);
        for c in cost.iter_mut() {
            *c = c.min(1.0);
        }
        let plan = transport_emd(&a, &b, &cost, 3).unwrap();
        assert!((plan.cost - 1.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_cdf_form_on_uniform_bins() {
        let a = [0.1, 0.4, 0.2, 0.3];
        let b = [0.3, 0.1, 0.1, 0.5];
        let plan = transport_emd(&a, &b, &abs_cost(4), 4).unwrap();
        let cdf = crate::emd::one_d::emd_1d_mass(&a, &b, 1.0);
        assert!((plan.cost - cdf).abs() < 1e-9, "{} vs {}", plan.cost, cdf);
    }
}
