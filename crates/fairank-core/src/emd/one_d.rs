//! Exact one-dimensional EMD via cumulative distribution functions.
//!
//! For histograms over equal-width bins on the real line, the Earth Mover's
//! Distance with ground distance `|x - y|` has the closed form
//!
//! ```text
//! EMD(a, b) = Δ · Σ_i |CDF_a(i) − CDF_b(i)|
//! ```
//!
//! where `Δ` is the bin width. This is the Wasserstein-1 distance between
//! the two discrete distributions placed at bin centers, and is what the
//! transportation solver in [`super::transport`] computes for the same cost
//! matrix — only in O(n) instead of a flow computation.

use crate::histogram::Histogram;

/// EMD between two probability-mass vectors over equal-width bins.
///
/// Callers must pass mass vectors of equal length; `bin_width` converts the
/// answer into score units. Inputs that do not sum to the same total are
/// handled by comparing unnormalized CDFs, which matches the partial-match
/// convention of Pele & Werman.
pub fn emd_1d_mass(a: &[f64], b: &[f64], bin_width: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "mass vectors must share bin count");
    let mut cum = 0.0;
    let mut total = 0.0;
    for (&pa, &pb) in a.iter().zip(b) {
        cum += pa - pb;
        total += cum.abs();
    }
    total * bin_width
}

/// EMD between two compatible, non-empty histograms (normalized to
/// probability mass first).
///
/// # Panics
/// Debug-asserts spec compatibility; use [`crate::emd::Emd::distance`] for a
/// checked version with empty-histogram conventions.
pub fn emd_1d(a: &Histogram, b: &Histogram) -> f64 {
    debug_assert_eq!(a.spec(), b.spec());
    emd_1d_mass(&a.mass(), &b.mass(), a.spec().bin_width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::{Histogram, HistogramSpec};

    #[test]
    fn shifting_one_bin_costs_one_bin_width() {
        // All mass in bin 0 vs all mass in bin 1.
        let d = emd_1d_mass(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], 0.25);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn moving_all_mass_across_n_bins() {
        let d = emd_1d_mass(&[1.0, 0.0, 0.0, 0.0], &[0.0, 0.0, 0.0, 1.0], 0.25);
        assert!((d - 0.75).abs() < 1e-12);
    }

    #[test]
    fn split_mass_averages_cost() {
        // Half the mass moves one bin, half moves none.
        let d = emd_1d_mass(&[1.0, 0.0], &[0.5, 0.5], 0.5);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_for_identical_mass() {
        let m = [0.2, 0.3, 0.5];
        assert_eq!(emd_1d_mass(&m, &m, 0.1), 0.0);
    }

    #[test]
    fn histogram_wrapper_normalizes() {
        let spec = HistogramSpec::unit(4).unwrap();
        // Same distribution with different totals must be identical.
        let a = Histogram::from_scores(spec, [0.1, 0.9]);
        let b = Histogram::from_scores(spec, [0.1, 0.1, 0.9, 0.9]);
        assert!(emd_1d(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_on_examples() {
        let specs = [
            ([1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]),
            ([0.5, 0.5, 0.0], [0.0, 0.5, 0.5], [0.2, 0.3, 0.5]),
        ];
        for (a, b, c) in specs {
            let ab = emd_1d_mass(&a, &b, 1.0);
            let bc = emd_1d_mass(&b, &c, 1.0);
            let ac = emd_1d_mass(&a, &c, 1.0);
            assert!(ac <= ab + bc + 1e-12);
        }
    }
}
