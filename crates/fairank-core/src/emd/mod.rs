//! Earth Mover's Distance between score histograms.
//!
//! The paper quantifies the difference between two partitions' score
//! distributions with the EMD (Definition 2, citing Pele & Werman's fast
//! EMD work). Two backends are provided:
//!
//! * [`one_d::emd_1d`] — the exact closed form for one-dimensional
//!   histograms over equal-width bins (the only case FaiRank needs):
//!   the L1 distance between the two CDFs, scaled by the bin width.
//! * [`transport`] — a general minimum-cost transportation solver
//!   (successive shortest paths with potentials) that accepts arbitrary
//!   ground-distance matrices. It is the reference implementation the 1-D
//!   form is validated against, and supports non-uniform ground distances.
//!
//! Distances are expressed in *score units*: for histograms over `[0, 1]`
//! the EMD between any two probability distributions lies in `[0, 1]`.

pub mod one_d;
pub mod transport;

pub use one_d::emd_1d;
pub use transport::{transport_emd, TransportPlan};

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::histogram::Histogram;

/// Which EMD implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EmdBackend {
    /// Exact 1-D closed form (CDF difference). Fast path; default.
    #[default]
    OneD,
    /// General transportation solver with `|center_i - center_j|` costs.
    Transport,
}

impl EmdBackend {
    /// The command-syntax name of the backend (`1d` / `transport`) — the
    /// single source for both parsing and display.
    pub fn name(&self) -> &'static str {
        match self {
            EmdBackend::OneD => "1d",
            EmdBackend::Transport => "transport",
        }
    }

    /// Parses a command-syntax backend name.
    pub fn parse(s: &str) -> Option<EmdBackend> {
        match s {
            "1d" => Some(EmdBackend::OneD),
            "transport" => Some(EmdBackend::Transport),
            _ => None,
        }
    }
}

/// Configured EMD distance between histograms.
///
/// Empty-vs-nonempty comparisons are defined as the maximum possible
/// distance under the spec (the range width); empty-vs-empty is zero. The
/// quantification pipeline never creates empty partitions, but interactive
/// exploration can (e.g. after aggressive filtering), and a defined answer
/// beats a panic there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Emd {
    backend: EmdBackend,
}

impl Emd {
    /// An EMD using the given backend.
    pub fn new(backend: EmdBackend) -> Self {
        Emd { backend }
    }

    /// The backend in use.
    pub fn backend(&self) -> EmdBackend {
        self.backend
    }

    /// Distance between two histograms sharing a spec.
    pub fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64> {
        a.check_compatible(b)?;
        let spec = a.spec();
        match (a.is_empty(), b.is_empty()) {
            (true, true) => return Ok(0.0),
            (true, false) | (false, true) => return Ok(spec.hi() - spec.lo()),
            (false, false) => {}
        }
        let pa = a.mass();
        let pb = b.mass();
        match self.backend {
            EmdBackend::OneD => Ok(one_d::emd_1d_mass(&pa, &pb, spec.bin_width())),
            EmdBackend::Transport => {
                let n = spec.bins();
                let mut cost = vec![0.0; n * n];
                for i in 0..n {
                    for j in 0..n {
                        cost[i * n + j] = (spec.bin_center(i) - spec.bin_center(j)).abs();
                    }
                }
                let plan = transport::transport_emd(&pa, &pb, &cost, n)?;
                Ok(plan.cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramSpec;

    fn hist(scores: &[f64]) -> Histogram {
        Histogram::from_scores(HistogramSpec::unit(10).unwrap(), scores.iter().copied())
    }

    #[test]
    fn identical_histograms_have_zero_distance() {
        let h = hist(&[0.1, 0.5, 0.9]);
        for backend in [EmdBackend::OneD, EmdBackend::Transport] {
            let d = Emd::new(backend).distance(&h, &h).unwrap();
            assert!(d.abs() < 1e-12, "{backend:?} gave {d}");
        }
    }

    #[test]
    fn opposite_corners_have_maximal_distance() {
        let a = hist(&[0.0]);
        let b = hist(&[1.0]);
        // Mass sits at the centers of the first and last bins: 0.05 and 0.95.
        for backend in [EmdBackend::OneD, EmdBackend::Transport] {
            let d = Emd::new(backend).distance(&a, &b).unwrap();
            assert!((d - 0.9).abs() < 1e-9, "{backend:?} gave {d}");
        }
    }

    #[test]
    fn backends_agree_on_arbitrary_histograms() {
        let a = hist(&[0.05, 0.15, 0.15, 0.35, 0.75, 0.85]);
        let b = hist(&[0.25, 0.45, 0.55, 0.95]);
        let d1 = Emd::new(EmdBackend::OneD).distance(&a, &b).unwrap();
        let d2 = Emd::new(EmdBackend::Transport).distance(&a, &b).unwrap();
        assert!((d1 - d2).abs() < 1e-9, "one_d={d1} transport={d2}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = hist(&[0.1, 0.2, 0.3]);
        let b = hist(&[0.7, 0.8]);
        let emd = Emd::default();
        let ab = emd.distance(&a, &b).unwrap();
        let ba = emd.distance(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_conventions() {
        let spec = HistogramSpec::unit(10).unwrap();
        let empty = Histogram::empty(spec);
        let full = hist(&[0.5]);
        let emd = Emd::default();
        assert_eq!(emd.distance(&empty, &empty).unwrap(), 0.0);
        assert_eq!(emd.distance(&empty, &full).unwrap(), 1.0);
        assert_eq!(emd.distance(&full, &empty).unwrap(), 1.0);
    }

    #[test]
    fn incompatible_specs_error() {
        let a = Histogram::empty(HistogramSpec::unit(5).unwrap());
        let b = Histogram::empty(HistogramSpec::unit(10).unwrap());
        assert!(Emd::default().distance(&a, &b).is_err());
    }
}
