//! Earth Mover's Distance between score histograms.
//!
//! The paper quantifies the difference between two partitions' score
//! distributions with the EMD (Definition 2, citing Pele & Werman's fast
//! EMD work). The implementations live behind the pluggable
//! [`backend::EmdBackend`] trait (single-pair distance plus pairwise-batch
//! entry points); four backends ship:
//!
//! * [`backend::OneDBackend`] (`1d`) — the exact closed form for
//!   one-dimensional histograms over equal-width bins (the only case
//!   FaiRank needs): the L1 distance between the two CDFs, scaled by the
//!   bin width ([`one_d::emd_1d`]).
//! * [`backend::TransportBackend`] (`transport`) — a general minimum-cost
//!   transportation solver (successive shortest paths with potentials)
//!   that accepts arbitrary ground-distance matrices. It is the reference
//!   implementation the 1-D form is validated against, supports
//!   non-uniform ground distances, and solves in a canonical input order
//!   so its distances are bitwise symmetric.
//! * [`backend::BatchedOneDBackend`] (`batched`) — the 1-D closed form
//!   with batch-level hoisting of the normalized mass vectors;
//!   bit-identical to `1d`, built for the O(L²) pairwise aggregations of
//!   the QUANTIFY hot path.
//! * [`kernel::KernelOneDBackend`] (`kernel`) — the 1-D closed form over a
//!   structure-of-arrays batch: all pairs of a batch fold together, one
//!   bin level at a time, in a branchless inner loop over pairs. Per pair
//!   the operation sequence is exactly the reference fold, so the backend
//!   stays bit-identical to `1d` while the inner loop autovectorizes.
//!
//! Distances are expressed in *score units*: for histograms over `[0, 1]`
//! the EMD between any two probability distributions lies in `[0, 1]`.

pub mod backend;
pub mod kernel;
pub mod one_d;
pub mod transport;

pub use backend::{BatchedOneDBackend, EmdBackend, OneDBackend, TransportBackend};
pub use kernel::KernelOneDBackend;
pub use one_d::emd_1d;
pub use transport::{transport_emd, TransportPlan};

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::histogram::Histogram;

/// Which EMD implementation to use — the serializable selector behind
/// which the [`backend::EmdBackend`] trait objects live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EmdBackendKind {
    /// Exact 1-D closed form (CDF difference). Fast path; default.
    #[default]
    OneD,
    /// General transportation solver with `|center_i - center_j|` costs.
    Transport,
    /// Closed-form batched 1-D backend (bit-identical to `OneD`, hoists
    /// per-histogram normalization out of pairwise batches).
    Batched,
    /// Structure-of-arrays 1-D backend (bit-identical to `OneD`): a whole
    /// batch's CDF folds advance together, bin level by bin level, with a
    /// branchless inner loop over pairs.
    Kernel,
}

impl EmdBackendKind {
    /// The command-syntax name of the backend (`1d` / `transport` /
    /// `batched` / `kernel`) — the single source for both parsing and
    /// display.
    pub fn name(&self) -> &'static str {
        match self {
            EmdBackendKind::OneD => "1d",
            EmdBackendKind::Transport => "transport",
            EmdBackendKind::Batched => "batched",
            EmdBackendKind::Kernel => "kernel",
        }
    }

    /// Parses a command-syntax backend name.
    pub fn parse(s: &str) -> Option<EmdBackendKind> {
        match s {
            "1d" => Some(EmdBackendKind::OneD),
            "transport" => Some(EmdBackendKind::Transport),
            "batched" => Some(EmdBackendKind::Batched),
            "kernel" => Some(EmdBackendKind::Kernel),
            _ => None,
        }
    }

    /// Every backend, for sweeps and conformance suites.
    pub fn all() -> [EmdBackendKind; 4] {
        [
            EmdBackendKind::OneD,
            EmdBackendKind::Transport,
            EmdBackendKind::Batched,
            EmdBackendKind::Kernel,
        ]
    }
}

/// Configured EMD distance between histograms.
///
/// Empty-vs-nonempty comparisons are defined as the maximum possible
/// distance under the spec (the range width); empty-vs-empty is zero. The
/// quantification pipeline never creates empty partitions, but interactive
/// exploration can (e.g. after aggressive filtering), and a defined answer
/// beats a panic there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Emd {
    backend: EmdBackendKind,
}

impl Emd {
    /// An EMD using the given backend.
    pub fn new(backend: EmdBackendKind) -> Self {
        Emd { backend }
    }

    /// The backend selector in use.
    pub fn backend(&self) -> EmdBackendKind {
        self.backend
    }

    /// The backend implementation in use.
    pub fn implementation(&self) -> &'static dyn EmdBackend {
        self.backend.implementation()
    }

    /// Distance between two histograms sharing a spec.
    pub fn distance(&self, a: &Histogram, b: &Histogram) -> Result<f64> {
        self.implementation().pair(a, b)
    }

    /// All `C(L, 2)` unordered pairwise distances among `hists`, in
    /// lexicographic pair order `(0,1), (0,2), …` — one call per node, so
    /// batching backends can hoist per-histogram work out of the pair loop.
    pub fn pairwise(&self, hists: &[Histogram]) -> Result<Vec<f64>> {
        let n = hists.len();
        let mut out = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        self.implementation().pairwise(hists, &mut out)?;
        Ok(out)
    }

    /// All `|left| × |right|` cross distances (left outer, right inner).
    pub fn cross(&self, left: &[Histogram], right: &[Histogram]) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(left.len() * right.len());
        self.implementation().cross(left, right, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramSpec;

    fn hist(scores: &[f64]) -> Histogram {
        Histogram::from_scores(HistogramSpec::unit(10).unwrap(), scores.iter().copied())
    }

    #[test]
    fn identical_histograms_have_zero_distance() {
        let h = hist(&[0.1, 0.5, 0.9]);
        for backend in EmdBackendKind::all() {
            let d = Emd::new(backend).distance(&h, &h).unwrap();
            assert!(d.abs() < 1e-12, "{backend:?} gave {d}");
        }
    }

    #[test]
    fn opposite_corners_have_maximal_distance() {
        let a = hist(&[0.0]);
        let b = hist(&[1.0]);
        // Mass sits at the centers of the first and last bins: 0.05 and 0.95.
        for backend in EmdBackendKind::all() {
            let d = Emd::new(backend).distance(&a, &b).unwrap();
            assert!((d - 0.9).abs() < 1e-9, "{backend:?} gave {d}");
        }
    }

    #[test]
    fn backends_agree_on_arbitrary_histograms() {
        let a = hist(&[0.05, 0.15, 0.15, 0.35, 0.75, 0.85]);
        let b = hist(&[0.25, 0.45, 0.55, 0.95]);
        let d1 = Emd::new(EmdBackendKind::OneD).distance(&a, &b).unwrap();
        let d2 = Emd::new(EmdBackendKind::Transport).distance(&a, &b).unwrap();
        let d3 = Emd::new(EmdBackendKind::Batched).distance(&a, &b).unwrap();
        let d4 = Emd::new(EmdBackendKind::Kernel).distance(&a, &b).unwrap();
        assert!((d1 - d2).abs() < 1e-9, "one_d={d1} transport={d2}");
        assert_eq!(d1.to_bits(), d3.to_bits(), "one_d={d1} batched={d3}");
        assert_eq!(d1.to_bits(), d4.to_bits(), "one_d={d1} kernel={d4}");
    }

    #[test]
    fn distance_is_bitwise_symmetric_for_every_backend() {
        let a = hist(&[0.1, 0.2, 0.3]);
        let b = hist(&[0.7, 0.8]);
        for backend in EmdBackendKind::all() {
            let emd = Emd::new(backend);
            let ab = emd.distance(&a, &b).unwrap();
            let ba = emd.distance(&b, &a).unwrap();
            assert_eq!(ab.to_bits(), ba.to_bits(), "{backend:?}: {ab} vs {ba}");
        }
    }

    #[test]
    fn empty_histogram_conventions() {
        let spec = HistogramSpec::unit(10).unwrap();
        let empty = Histogram::empty(spec);
        let full = hist(&[0.5]);
        for backend in EmdBackendKind::all() {
            let emd = Emd::new(backend);
            assert_eq!(emd.distance(&empty, &empty).unwrap(), 0.0);
            assert_eq!(emd.distance(&empty, &full).unwrap(), 1.0);
            assert_eq!(emd.distance(&full, &empty).unwrap(), 1.0);
        }
    }

    #[test]
    fn incompatible_specs_error() {
        let a = Histogram::empty(HistogramSpec::unit(5).unwrap());
        let b = Histogram::empty(HistogramSpec::unit(10).unwrap());
        assert!(Emd::default().distance(&a, &b).is_err());
    }

    #[test]
    fn pairwise_entry_matches_per_pair_distances() {
        let hists = vec![hist(&[0.05, 0.05]), hist(&[0.55, 0.55]), hist(&[0.95])];
        for backend in EmdBackendKind::all() {
            let emd = Emd::new(backend);
            let batch = emd.pairwise(&hists).unwrap();
            assert_eq!(batch.len(), 3);
            let mut k = 0;
            for i in 0..hists.len() {
                for j in (i + 1)..hists.len() {
                    let d = emd.distance(&hists[i], &hists[j]).unwrap();
                    assert_eq!(d.to_bits(), batch[k].to_bits(), "{backend:?} pair {i},{j}");
                    k += 1;
                }
            }
            assert!(emd.pairwise(&hists[..1]).unwrap().is_empty());
            assert!(emd.pairwise(&[]).unwrap().is_empty());
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in EmdBackendKind::all() {
            assert_eq!(EmdBackendKind::parse(backend.name()), Some(backend));
        }
        assert_eq!(EmdBackendKind::parse("nonsense"), None);
    }
}
