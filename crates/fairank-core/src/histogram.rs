//! Fixed-bin score histograms.
//!
//! The paper builds, for every partition, "a histogram … by creating equal
//! bins over the range of f and counting the number of individuals whose
//! function scores fall in each bin" (§3.1). Histograms here always share a
//! [`HistogramSpec`] so that Earth Mover's Distances between them are
//! well-defined.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Number of bins FaiRank uses when the caller does not specify one.
/// Figure 2 of the paper draws 5 bins; 10 is a finer default that keeps the
/// example partitioning's ordering intact (see experiment E10).
pub const DEFAULT_BINS: usize = 10;

/// Shape of a histogram: bin count plus the score range it covers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSpec {
    bins: usize,
    lo: f64,
    hi: f64,
}

impl HistogramSpec {
    /// Creates a spec with `bins` equal-width bins over `[lo, hi]`.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Result<Self> {
        if bins == 0 {
            return Err(CoreError::InvalidHistogramSpec("bin count is zero".into()));
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Err(CoreError::InvalidHistogramSpec(format!(
                "range bounds must be finite, got [{lo}, {hi}]"
            )));
        }
        if lo >= hi {
            return Err(CoreError::InvalidHistogramSpec(format!(
                "range [{lo}, {hi}] is empty or inverted"
            )));
        }
        Ok(HistogramSpec { bins, lo, hi })
    }

    /// The paper's default: equal bins over the unit interval, since
    /// Definition 1 constrains `f : W → [0, 1]`.
    pub fn unit(bins: usize) -> Result<Self> {
        HistogramSpec::new(bins, 0.0, 1.0)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Lower bound of the covered range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the covered range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of one bin, in score units.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins as f64
    }

    /// Center of bin `i`, in score units.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Maps a score to its bin. Scores are clamped into the range, so the
    /// maximum score lands in the last bin rather than one past it.
    pub fn bin_of(&self, score: f64) -> usize {
        let clamped = score.clamp(self.lo, self.hi);
        let raw = ((clamped - self.lo) / self.bin_width()) as usize;
        raw.min(self.bins - 1)
    }
}

impl Default for HistogramSpec {
    fn default() -> Self {
        HistogramSpec::unit(DEFAULT_BINS).expect("default spec is valid")
    }
}

/// A score histogram: per-bin counts under a shared [`HistogramSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    spec: HistogramSpec,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram under `spec`.
    pub fn empty(spec: HistogramSpec) -> Self {
        Histogram {
            counts: vec![0; spec.bins()],
            total: 0,
            spec,
        }
    }

    /// Builds a histogram of `scores` under `spec`.
    pub fn from_scores(spec: HistogramSpec, scores: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Histogram::empty(spec);
        for s in scores {
            h.add(s);
        }
        h
    }

    /// Builds a histogram of a subset of `scores` selected by `rows`.
    pub fn from_rows(spec: HistogramSpec, scores: &[f64], rows: &[u32]) -> Self {
        Histogram::from_scores(spec, rows.iter().map(|&r| scores[r as usize]))
    }

    /// Builds a histogram directly from per-bin counts (used by the split
    /// engine, which accumulates counts in one pass instead of re-binning
    /// scores). Equivalent to adding each counted score individually.
    ///
    /// # Panics
    /// If `counts.len()` does not match the spec's bin count.
    pub fn from_counts(spec: HistogramSpec, counts: Vec<u64>) -> Self {
        assert_eq!(
            counts.len(),
            spec.bins(),
            "counts must have one entry per bin"
        );
        let total = counts.iter().sum();
        Histogram {
            spec,
            counts,
            total,
        }
    }

    /// Adds one score.
    pub fn add(&mut self, score: f64) {
        let bin = self.spec.bin_of(score);
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// The spec this histogram was built under.
    pub fn spec(&self) -> &HistogramSpec {
        &self.spec
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of individuals counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when no score has been added.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The normalized probability mass per bin. An empty histogram yields an
    /// all-zero mass vector (callers treat empty partitions specially).
    pub fn mass(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.counts.len()];
        self.mass_into(&mut out);
        out
    }

    /// Writes the normalized probability mass per bin into `out` without
    /// allocating — the batch backends' fill primitive for preallocated
    /// structure-of-arrays matrices. Produces exactly the bits of
    /// [`Histogram::mass`] (same `count / total` division per bin); an
    /// empty histogram writes all zeros.
    ///
    /// # Panics
    /// If `out.len()` does not match the bin count.
    pub fn mass_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.counts.len(), "one slot per bin");
        if self.total == 0 {
            out.fill(0.0);
            return;
        }
        let t = self.total as f64;
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / t;
        }
    }

    /// Mean score approximated from bin centers (used for node statistics).
    pub fn approx_mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * self.spec.bin_center(i))
            .sum();
        Some(sum / self.total as f64)
    }

    /// Checks that two histograms share a spec, as required for EMD.
    pub fn check_compatible(&self, other: &Histogram) -> Result<()> {
        if self.spec != other.spec {
            return Err(CoreError::IncompatibleHistograms {
                left: self.spec.bins(),
                right: other.spec.bins(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_rejects_degenerate_inputs() {
        assert!(HistogramSpec::new(0, 0.0, 1.0).is_err());
        assert!(HistogramSpec::new(4, 1.0, 1.0).is_err());
        assert!(HistogramSpec::new(4, 2.0, 1.0).is_err());
        assert!(HistogramSpec::new(4, f64::NAN, 1.0).is_err());
        assert!(HistogramSpec::new(4, 0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn bin_of_maps_boundaries_correctly() {
        let spec = HistogramSpec::unit(5).unwrap();
        assert_eq!(spec.bin_of(0.0), 0);
        assert_eq!(spec.bin_of(0.19), 0);
        assert_eq!(spec.bin_of(0.2), 1);
        assert_eq!(spec.bin_of(0.999), 4);
        // The maximum falls in the last bin, not out of range.
        assert_eq!(spec.bin_of(1.0), 4);
        // Out-of-range scores clamp instead of panicking.
        assert_eq!(spec.bin_of(-3.0), 0);
        assert_eq!(spec.bin_of(42.0), 4);
    }

    #[test]
    fn bin_centers_are_equally_spaced() {
        let spec = HistogramSpec::new(4, 0.0, 2.0).unwrap();
        assert!((spec.bin_width() - 0.5).abs() < 1e-12);
        assert!((spec.bin_center(0) - 0.25).abs() < 1e-12);
        assert!((spec.bin_center(3) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_total() {
        let spec = HistogramSpec::unit(5).unwrap();
        // Note: 0.15 < 0.2 in binary floating point (0.15/0.2 ≈ 0.74999…),
        // so it falls in bin 0 alongside 0.05.
        let h = Histogram::from_scores(spec, [0.05, 0.15, 0.25, 0.95, 1.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]);
        assert_eq!(h.total(), 5);
        assert!(!h.is_empty());
    }

    #[test]
    fn mass_sums_to_one_when_nonempty() {
        let spec = HistogramSpec::unit(7).unwrap();
        let h = Histogram::from_scores(spec, (0..100).map(|i| i as f64 / 100.0));
        let sum: f64 = h.mass().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mass_into_matches_mass_bitwise() {
        let spec = HistogramSpec::unit(5).unwrap();
        let h = Histogram::from_scores(spec, [0.05, 0.15, 0.25, 0.95, 1.0, 0.3]);
        let mut out = vec![f64::NAN; 5];
        h.mass_into(&mut out);
        for (a, b) in h.mass().iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Empty histograms overwrite stale slots with zeros.
        let mut out = vec![f64::NAN; 5];
        Histogram::empty(spec).mass_into(&mut out);
        assert_eq!(out, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "one slot per bin")]
    fn mass_into_rejects_wrong_arity() {
        let h = Histogram::empty(HistogramSpec::unit(5).unwrap());
        h.mass_into(&mut [0.0; 3]);
    }

    #[test]
    fn empty_histogram_has_zero_mass() {
        let spec = HistogramSpec::unit(3).unwrap();
        let h = Histogram::empty(spec);
        assert!(h.is_empty());
        assert_eq!(h.mass(), vec![0.0, 0.0, 0.0]);
        assert_eq!(h.approx_mean(), None);
    }

    #[test]
    fn from_counts_matches_from_scores() {
        let spec = HistogramSpec::unit(5).unwrap();
        let by_scores = Histogram::from_scores(spec, [0.05, 0.15, 0.25, 0.95, 1.0]);
        let by_counts = Histogram::from_counts(spec, vec![2, 1, 0, 0, 2]);
        assert_eq!(by_scores, by_counts);
        assert_eq!(by_counts.total(), 5);
    }

    #[test]
    #[should_panic(expected = "one entry per bin")]
    fn from_counts_rejects_wrong_arity() {
        let spec = HistogramSpec::unit(5).unwrap();
        let _ = Histogram::from_counts(spec, vec![1, 2]);
    }

    #[test]
    fn from_rows_selects_subset() {
        let spec = HistogramSpec::unit(2).unwrap();
        let scores = [0.1, 0.9, 0.2, 0.8];
        let h = Histogram::from_rows(spec, &scores, &[0, 2]);
        assert_eq!(h.counts(), &[2, 0]);
    }

    #[test]
    fn approx_mean_matches_bin_centers() {
        let spec = HistogramSpec::unit(10).unwrap();
        let h = Histogram::from_scores(spec, [0.05, 0.05, 0.95, 0.95]);
        let mean = h.approx_mean().unwrap();
        assert!((mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compatibility_check() {
        let a = Histogram::empty(HistogramSpec::unit(5).unwrap());
        let b = Histogram::empty(HistogramSpec::unit(6).unwrap());
        let c = Histogram::empty(HistogramSpec::unit(5).unwrap());
        assert!(a.check_compatible(&b).is_err());
        assert!(a.check_compatible(&c).is_ok());
    }

    #[test]
    fn default_spec_is_unit_ten_bins() {
        let spec = HistogramSpec::default();
        assert_eq!(spec.bins(), DEFAULT_BINS);
        assert_eq!(spec.lo(), 0.0);
        assert_eq!(spec.hi(), 1.0);
    }
}
