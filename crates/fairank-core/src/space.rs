//! The *ranking space*: individuals, their protected attributes, and their
//! scores — the exact input of the paper's Definition 1.
//!
//! Protected attributes are categorical. Each attribute stores one
//! dictionary-encoded code per individual plus the code → label mapping.
//! Numeric protected attributes (e.g. *Year of Birth*) are discretized by the
//! data substrate before they reach this crate.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// A single protected attribute over all individuals, dictionary-encoded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtectedAttribute {
    /// Attribute name, e.g. `"gender"`.
    pub name: String,
    /// Per-individual value code; `codes[i]` indexes into `labels`.
    pub codes: Vec<u32>,
    /// Human-readable value labels; `labels[c]` is the value with code `c`.
    pub labels: Vec<String>,
}

impl ProtectedAttribute {
    /// Builds an attribute from raw string values, dictionary-encoding them
    /// in first-appearance order.
    pub fn from_values<S: AsRef<str>>(name: impl Into<String>, values: &[S]) -> Self {
        let mut labels: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let v = v.as_ref();
            let code = match labels.iter().position(|l| l == v) {
                Some(idx) => idx as u32,
                None => {
                    labels.push(v.to_string());
                    (labels.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        ProtectedAttribute {
            name: name.into(),
            codes,
            labels,
        }
    }

    /// Number of distinct values this attribute can take.
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }

    /// Label for a given code, if the code is in range.
    pub fn label(&self, code: u32) -> Option<&str> {
        self.labels.get(code as usize).map(String::as_str)
    }

    /// Distinct codes present among the given rows, in ascending order.
    pub fn distinct_codes(&self, rows: &[u32]) -> Vec<u32> {
        let mut seen = vec![false; self.labels.len()];
        for &r in rows {
            if let Some(&c) = self.codes.get(r as usize) {
                seen[c as usize] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(c, &s)| s.then_some(c as u32))
            .collect()
    }

    fn validate(&self, expected_rows: usize) -> Result<()> {
        if self.codes.len() != expected_rows {
            return Err(CoreError::InvalidSpace(format!(
                "attribute {:?} has {} codes but the space has {} individuals",
                self.name,
                self.codes.len(),
                expected_rows
            )));
        }
        if let Some(&bad) = self.codes.iter().find(|&&c| c as usize >= self.labels.len()) {
            return Err(CoreError::InvalidSpace(format!(
                "attribute {:?} contains code {} but only {} labels",
                self.name,
                bad,
                self.labels.len()
            )));
        }
        Ok(())
    }
}

/// A tabular source of *protected* attributes, dictionary-encoded.
///
/// Implemented by `fairank_data::Dataset`; the core algorithms accept any
/// implementor, keeping this crate free of storage concerns.
pub trait ProtectedTable {
    /// Materializes every protected attribute with one code per row.
    fn protected_attributes(&self) -> Vec<ProtectedAttribute>;
}

/// Individuals, their protected attributes, and one score per individual —
/// "the ranking space, i.e., individuals and their scores" (paper §1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingSpace {
    attributes: Vec<ProtectedAttribute>,
    scores: Vec<f64>,
}

impl RankingSpace {
    /// Creates a validated ranking space.
    ///
    /// Every attribute must carry exactly one code per score, codes must be
    /// within their label tables, and all scores must be finite.
    pub fn new(attributes: Vec<ProtectedAttribute>, scores: Vec<f64>) -> Result<Self> {
        if scores.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        for attr in &attributes {
            attr.validate(scores.len())?;
        }
        if let Some((row, &value)) = scores.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(CoreError::NonFiniteScore { row, value });
        }
        Ok(RankingSpace { attributes, scores })
    }

    /// Number of individuals.
    pub fn num_individuals(&self) -> usize {
        self.scores.len()
    }

    /// All protected attributes.
    pub fn attributes(&self) -> &[ProtectedAttribute] {
        &self.attributes
    }

    /// Attribute at `idx`.
    pub fn attribute(&self, idx: usize) -> Option<&ProtectedAttribute> {
        self.attributes.get(idx)
    }

    /// Index of the attribute with the given name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// The score of every individual, aligned with attribute codes.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The largest cardinality over all attributes (0 when the space has
    /// none) — what split evaluators size their per-value scratch tables
    /// to, so one preallocation covers every candidate attribute.
    pub fn max_cardinality(&self) -> usize {
        self.attributes
            .iter()
            .map(ProtectedAttribute::cardinality)
            .max()
            .unwrap_or(0)
    }

    /// Observed score range `(min, max)`.
    pub fn score_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &s in &self.scores {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        (lo, hi)
    }

    /// Row indices of all individuals: `0..n`.
    pub fn all_rows(&self) -> Vec<u32> {
        (0..self.scores.len() as u32).collect()
    }

    /// The binned-score cache: each individual's histogram bin under `spec`,
    /// computed once so repeated histogram builds over row subsets become
    /// pure counting instead of re-deriving `bin_of(score)` per row (the
    /// hottest inner loop of split evaluation).
    pub fn bin_codes(&self, spec: &crate::histogram::HistogramSpec) -> Vec<u32> {
        self.scores.iter().map(|&s| spec.bin_of(s) as u32).collect()
    }

    /// Appends one individual: one label per attribute (dictionary-encoded
    /// in first-appearance order, so unseen labels extend the attribute's
    /// vocabulary) plus a finite score. Returns the new row's code per
    /// attribute, aligned with [`Self::attributes`].
    pub fn insert_row<S: AsRef<str>>(&mut self, labels: &[S], score: f64) -> Result<Vec<u32>> {
        if labels.len() != self.attributes.len() {
            return Err(CoreError::InvalidSpace(format!(
                "insert carries {} labels but the space has {} attributes",
                labels.len(),
                self.attributes.len()
            )));
        }
        if !score.is_finite() {
            return Err(CoreError::NonFiniteScore {
                row: self.scores.len(),
                value: score,
            });
        }
        let mut codes = Vec::with_capacity(labels.len());
        for (attr, label) in self.attributes.iter_mut().zip(labels) {
            let label = label.as_ref();
            let code = match attr.labels.iter().position(|l| l == label) {
                Some(idx) => idx as u32,
                None => {
                    attr.labels.push(label.to_string());
                    (attr.labels.len() - 1) as u32
                }
            };
            attr.codes.push(code);
            codes.push(code);
        }
        self.scores.push(score);
        Ok(codes)
    }

    /// Removes the individual at `row`, shifting subsequent rows down by
    /// one. The last individual cannot be removed (a space is never empty).
    pub fn remove_row(&mut self, row: usize) -> Result<()> {
        if row >= self.scores.len() {
            return Err(CoreError::InvalidSpace(format!(
                "row {} out of bounds for {} individuals",
                row,
                self.scores.len()
            )));
        }
        if self.scores.len() == 1 {
            return Err(CoreError::EmptyInput);
        }
        for attr in &mut self.attributes {
            attr.codes.remove(row);
        }
        self.scores.remove(row);
        Ok(())
    }

    /// Replaces the score of the individual at `row`.
    pub fn rescore_row(&mut self, row: usize, score: f64) -> Result<()> {
        if row >= self.scores.len() {
            return Err(CoreError::InvalidSpace(format!(
                "row {} out of bounds for {} individuals",
                row,
                self.scores.len()
            )));
        }
        if !score.is_finite() {
            return Err(CoreError::NonFiniteScore { row, value: score });
        }
        self.scores[row] = score;
        Ok(())
    }

    /// Applies every operation of `delta` in order. This is the
    /// full-recompute twin of `incremental::DeltaEngine::apply`: both
    /// mutate a space identically, so a fresh search over the mutated
    /// space is the reference for the delta-evaluated one.
    pub fn apply_delta(&mut self, delta: &SpaceDelta) -> Result<()> {
        for op in &delta.ops {
            match op {
                DeltaOp::Insert { labels, score } => {
                    self.insert_row(labels, *score)?;
                }
                DeltaOp::Remove { row } => self.remove_row(*row as usize)?,
                DeltaOp::Rescore { row, score } => self.rescore_row(*row as usize, *score)?,
            }
        }
        Ok(())
    }

    /// Restricts the space to the given rows, producing a new, re-indexed
    /// space (used by protected-attribute filters).
    pub fn select(&self, rows: &[u32]) -> Result<Self> {
        if rows.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        if let Some(&bad) = rows.iter().find(|&&r| r as usize >= self.scores.len()) {
            return Err(CoreError::InvalidSpace(format!(
                "row {} out of bounds for {} individuals",
                bad,
                self.scores.len()
            )));
        }
        let attributes = self
            .attributes
            .iter()
            .map(|a| ProtectedAttribute {
                name: a.name.clone(),
                codes: rows.iter().map(|&r| a.codes[r as usize]).collect(),
                labels: a.labels.clone(),
            })
            .collect();
        let scores = rows.iter().map(|&r| self.scores[r as usize]).collect();
        RankingSpace::new(attributes, scores)
    }
}

/// One mutation of a ranking space. Row indices refer to the space state
/// at the moment the operation applies (earlier operations of the same
/// delta shift them, exactly as sequential application would).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// A new individual arrives: one label per attribute plus a score.
    Insert {
        /// Attribute value labels, aligned with the space's attributes.
        labels: Vec<String>,
        /// The arrival's score.
        score: f64,
    },
    /// The individual at `row` departs.
    Remove {
        /// Row index to remove.
        row: u32,
    },
    /// The individual at `row` gets a new score.
    Rescore {
        /// Row index to rescore.
        row: u32,
        /// The new score.
        score: f64,
    },
}

/// An ordered batch of space mutations — the unit the incremental
/// subsystem re-evaluates after. Serializable so churn rounds can travel
/// over the wire.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpaceDelta {
    /// Mutations, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl SpaceDelta {
    /// An empty delta.
    pub fn new() -> Self {
        SpaceDelta::default()
    }

    /// Appends an arrival.
    pub fn insert<S: Into<String>>(mut self, labels: Vec<S>, score: f64) -> Self {
        self.ops.push(DeltaOp::Insert {
            labels: labels.into_iter().map(Into::into).collect(),
            score,
        });
        self
    }

    /// Appends a departure.
    pub fn remove(mut self, row: u32) -> Self {
        self.ops.push(DeltaOp::Remove { row });
        self
    }

    /// Appends a score update.
    pub fn rescore(mut self, row: u32, score: f64) -> Self {
        self.ops.push(DeltaOp::Rescore { row, score });
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the delta carries no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gender() -> ProtectedAttribute {
        ProtectedAttribute::from_values("gender", &["F", "M", "M", "F", "M"])
    }

    #[test]
    fn dictionary_encoding_preserves_first_appearance_order() {
        let attr = gender();
        assert_eq!(attr.labels, vec!["F".to_string(), "M".to_string()]);
        assert_eq!(attr.codes, vec![0, 1, 1, 0, 1]);
        assert_eq!(attr.cardinality(), 2);
        assert_eq!(attr.label(0), Some("F"));
        assert_eq!(attr.label(2), None);
    }

    #[test]
    fn distinct_codes_respects_row_subset() {
        let attr = gender();
        assert_eq!(attr.distinct_codes(&[0, 3]), vec![0]);
        assert_eq!(attr.distinct_codes(&[1, 2]), vec![1]);
        assert_eq!(attr.distinct_codes(&[0, 1, 2, 3, 4]), vec![0, 1]);
        assert_eq!(attr.distinct_codes(&[]), Vec::<u32>::new());
    }

    #[test]
    fn space_validation_catches_length_mismatch() {
        let err = RankingSpace::new(vec![gender()], vec![0.1, 0.2]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpace(_)));
    }

    #[test]
    fn space_validation_catches_bad_codes() {
        let attr = ProtectedAttribute {
            name: "broken".into(),
            codes: vec![0, 9],
            labels: vec!["a".into()],
        };
        let err = RankingSpace::new(vec![attr], vec![0.1, 0.2]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpace(_)));
    }

    #[test]
    fn space_validation_rejects_non_finite_scores() {
        let err = RankingSpace::new(vec![], vec![0.5, f64::NAN]).unwrap_err();
        // NaN is not equal to itself, so match structurally.
        assert!(matches!(err, CoreError::NonFiniteScore { row: 1, .. }));
    }

    #[test]
    fn space_validation_rejects_empty() {
        assert_eq!(
            RankingSpace::new(vec![], vec![]).unwrap_err(),
            CoreError::EmptyInput
        );
    }

    #[test]
    fn score_range_spans_min_and_max() {
        let space = RankingSpace::new(vec![], vec![0.4, 0.1, 0.9]).unwrap();
        assert_eq!(space.score_range(), (0.1, 0.9));
    }

    #[test]
    fn select_reindexes_rows() {
        let space =
            RankingSpace::new(vec![gender()], vec![0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        let sub = space.select(&[1, 4]).unwrap();
        assert_eq!(sub.num_individuals(), 2);
        assert_eq!(sub.scores(), &[0.2, 0.5]);
        assert_eq!(sub.attributes()[0].codes, vec![1, 1]);
        // Labels survive even if a value disappears from the selection.
        assert_eq!(sub.attributes()[0].labels.len(), 2);
    }

    #[test]
    fn select_rejects_out_of_bounds_and_empty() {
        let space = RankingSpace::new(vec![], vec![0.1, 0.2]).unwrap();
        assert!(space.select(&[5]).is_err());
        assert_eq!(space.select(&[]).unwrap_err(), CoreError::EmptyInput);
    }

    #[test]
    fn bin_codes_match_bin_of() {
        use crate::histogram::HistogramSpec;
        let space = RankingSpace::new(vec![], vec![0.05, 0.55, 0.95, 1.0]).unwrap();
        let spec = HistogramSpec::unit(10).unwrap();
        let codes = space.bin_codes(&spec);
        assert_eq!(codes.len(), 4);
        for (&code, &score) in codes.iter().zip(space.scores()) {
            assert_eq!(code as usize, spec.bin_of(score));
        }
    }

    #[test]
    fn max_cardinality_spans_attributes() {
        let bare = RankingSpace::new(vec![], vec![0.1]).unwrap();
        assert_eq!(bare.max_cardinality(), 0);
        let trio = ProtectedAttribute::from_values("trio", &["x", "y", "z", "x", "y"]);
        let space = RankingSpace::new(vec![gender(), trio], vec![0.1; 5]).unwrap();
        assert_eq!(space.max_cardinality(), 3);
    }

    #[test]
    fn insert_row_extends_dictionaries_in_first_appearance_order() {
        let mut space = RankingSpace::new(vec![gender()], vec![0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        let codes = space.insert_row(&["M"], 0.6).unwrap();
        assert_eq!(codes, vec![1]);
        assert_eq!(space.num_individuals(), 6);
        // An unseen label grows the vocabulary at the end.
        let codes = space.insert_row(&["X"], 0.7).unwrap();
        assert_eq!(codes, vec![2]);
        assert_eq!(space.attributes()[0].labels, vec!["F", "M", "X"]);
        assert_eq!(space.scores()[6], 0.7);
    }

    #[test]
    fn insert_row_validates_arity_and_score() {
        let mut space = RankingSpace::new(vec![gender()], vec![0.1; 5]).unwrap();
        assert!(space.insert_row::<&str>(&[], 0.5).is_err());
        assert!(matches!(
            space.insert_row(&["F"], f64::NAN).unwrap_err(),
            CoreError::NonFiniteScore { row: 5, .. }
        ));
        assert_eq!(space.num_individuals(), 5);
    }

    #[test]
    fn remove_row_shifts_and_guards_emptiness() {
        let mut space = RankingSpace::new(vec![gender()], vec![0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        space.remove_row(1).unwrap();
        assert_eq!(space.scores(), &[0.1, 0.3, 0.4, 0.5]);
        assert_eq!(space.attributes()[0].codes, vec![0, 1, 0, 1]);
        assert!(space.remove_row(9).is_err());
        let mut solo = RankingSpace::new(vec![], vec![0.5]).unwrap();
        assert_eq!(solo.remove_row(0).unwrap_err(), CoreError::EmptyInput);
    }

    #[test]
    fn rescore_row_replaces_score_and_rejects_non_finite() {
        let mut space = RankingSpace::new(vec![], vec![0.1, 0.2]).unwrap();
        space.rescore_row(0, 0.9).unwrap();
        assert_eq!(space.scores(), &[0.9, 0.2]);
        assert!(space.rescore_row(0, f64::INFINITY).is_err());
        assert!(space.rescore_row(5, 0.5).is_err());
    }

    #[test]
    fn apply_delta_matches_sequential_mutation() {
        let mut direct = RankingSpace::new(vec![gender()], vec![0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        let mut batched = direct.clone();
        let delta = SpaceDelta::new()
            .insert(vec!["M"], 0.6)
            .remove(0)
            .rescore(2, 0.35);
        assert_eq!(delta.len(), 3);
        assert!(!delta.is_empty());
        direct.insert_row(&["M"], 0.6).unwrap();
        direct.remove_row(0).unwrap();
        direct.rescore_row(2, 0.35).unwrap();
        batched.apply_delta(&delta).unwrap();
        assert_eq!(direct, batched);
    }

    #[test]
    fn space_delta_serde_round_trip() {
        let delta = SpaceDelta::new()
            .insert(vec!["F"], 0.25)
            .remove(3)
            .rescore(1, 0.75);
        let json = serde_json::to_string(&delta).unwrap();
        let back: SpaceDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(delta, back);
    }

    #[test]
    fn attribute_lookup_by_name() {
        let space = RankingSpace::new(vec![gender()], vec![0.0; 5]).unwrap();
        assert_eq!(space.attribute_index("gender"), Some(0));
        assert_eq!(space.attribute_index("age"), None);
        assert!(space.attribute(0).is_some());
        assert!(space.attribute(1).is_none());
    }
}
