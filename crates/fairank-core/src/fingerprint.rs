//! Stable content fingerprints for content-addressed storage and caching.
//!
//! A [`Fingerprint`] is a 128-bit hash of a byte stream, computed by
//! [`ContentHasher`] — two independent FNV-1a-style 64-bit lanes with
//! distinct offset bases and primes, fed the identical length-prefixed
//! stream. The hash is *stable*: it depends only on the bytes written,
//! never on pointer identity, process, platform word size, or hash-map
//! iteration order, so the same dataset content always fingerprints to
//! the same value across sessions and server restarts.
//!
//! This is a content identity for deduplication and cache addressing,
//! not a cryptographic hash: collisions are astronomically unlikely at
//! 128 bits for honest inputs, but nothing here resists an adversary
//! crafting collisions. Hand-rolled because the build environment
//! vendors all dependencies (no external hash crates).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 128-bit stable content hash.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Fingerprint {
    /// High 64 bits (lane A).
    pub hi: u64,
    /// Low 64 bits (lane B).
    pub lo: u64,
}

impl Fingerprint {
    /// The fingerprint as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME_A: u64 = 0x0000_0100_0000_01b3;
// Lane B: a distinct odd multiplier and offset so the two lanes walk
// independent orbits over the same byte stream.
const FNV_OFFSET_B: u64 = 0x9e37_79b9_7f4a_7c15;
const FNV_PRIME_B: u64 = 0x0000_0100_0000_01b5;

/// Incremental stable hasher producing a [`Fingerprint`].
///
/// Variable-length inputs (strings, slices) are length-prefixed by the
/// `update_*` helpers, so adjacent fields can never alias
/// (`["ab", "c"]` and `["a", "bc"]` hash differently).
#[derive(Debug, Clone)]
pub struct ContentHasher {
    a: u64,
    b: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        ContentHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    /// Feeds raw bytes (no length prefix — use for fixed-width fields or
    /// after an explicit `update_len`).
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME_A);
            self.b = (self.b.rotate_left(5) ^ u64::from(byte)).wrapping_mul(FNV_PRIME_B);
        }
    }

    /// Feeds a length (for prefixing variable-width fields).
    pub fn update_len(&mut self, len: usize) {
        self.update_u64(len as u64);
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds a `u32` as little-endian bytes.
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds an `i64` as little-endian bytes.
    pub fn update_i64(&mut self, v: i64) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds an `f64` by IEEE-754 bit pattern — distinguishes `-0.0` from
    /// `0.0` and every NaN payload, which is exactly what bitwise result
    /// identity requires.
    pub fn update_f64(&mut self, v: f64) {
        self.update(&v.to_bits().to_le_bytes());
    }

    /// Feeds a string, length-prefixed.
    pub fn update_str(&mut self, s: &str) {
        self.update_len(s.len());
        self.update(s.as_bytes());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        // A final avalanche round so short inputs don't leave the lanes
        // near their offsets.
        let mut hi = self.a ^ self.b.rotate_left(32);
        let mut lo = self.b ^ self.a.rotate_left(17);
        hi ^= hi >> 33;
        hi = hi.wrapping_mul(0xff51_afd7_ed55_8ccd);
        hi ^= hi >> 33;
        lo ^= lo >> 33;
        lo = lo.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        lo ^= lo >> 33;
        Fingerprint { hi, lo }
    }
}

/// Fingerprints one byte slice in one call.
pub fn fingerprint_bytes(bytes: &[u8]) -> Fingerprint {
    let mut h = ContentHasher::new();
    h.update_len(bytes.len());
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_agree_and_differ_from_others() {
        let a = fingerprint_bytes(b"hello world");
        let b = fingerprint_bytes(b"hello world");
        let c = fingerprint_bytes(b"hello worlD");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, Fingerprint::default());
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let mut h1 = ContentHasher::new();
        h1.update_str("ab");
        h1.update_str("c");
        let mut h2 = ContentHasher::new();
        h2.update_str("a");
        h2.update_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn float_bits_are_distinguished() {
        let mut h1 = ContentHasher::new();
        h1.update_f64(0.0);
        let mut h2 = ContentHasher::new();
        h2.update_f64(-0.0);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn empty_input_is_stable_and_nonzero() {
        let a = ContentHasher::new().finish();
        let b = ContentHasher::new().finish();
        assert_eq!(a, b);
        assert_ne!(a, Fingerprint { hi: 0, lo: 0 });
    }

    #[test]
    fn hex_rendering_is_32_digits() {
        let fp = fingerprint_bytes(b"x");
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, fp.to_string());
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn serde_round_trip() {
        let fp = fingerprint_bytes(b"dataset");
        let json = serde_json::to_string(&fp).unwrap();
        let back: Fingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(fp, back);
    }
}
