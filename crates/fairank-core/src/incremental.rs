//! Incremental (delta) re-evaluation: re-run `QUANTIFY` after a small
//! space mutation in O(changed paths) instead of O(dataset), with results
//! bit-identical to a full recomputation.
//!
//! The paper frames FaiRank as an *interactive* auditor of live
//! marketplaces, yet a from-scratch run rebuilds everything a mutation
//! didn't touch: the bin-code cache (O(n)), one counting pass per
//! (node, attribute) candidate (O(n · |A|) per tree level), every
//! histogram interning, and — via an empty memo — every EMD. A
//! [`DeltaEngine`] keeps the PR 6 data-oriented arenas alive across
//! *generations* instead:
//!
//! * **Mutation API** — [`RankingSpace`] row inserts/removes/rescores
//!   arrive as a [`SpaceDelta`]; each op recomputes bin codes for the
//!   affected row only.
//! * **Dirty-path propagation** — a touched row lives in exactly the
//!   partitions whose `(attr, code)` path constraints it satisfies, so
//!   [`EngineParts::apply_event`] walks only the matching `PathTrie`
//!   edges and re-derives each cached `ContentTable` histogram by
//!   adjusting one bin, never rescanning rows.
//! * **Targeted memo invalidation** — after patching, compaction drops
//!   exactly the `FlatMemo` EMD entries whose content ids were orphaned;
//!   distances between untouched distinct pairs survive.
//! * **Split-summary replay** — the previous run recorded, per evaluated
//!   node and attribute, the per-code child sizes; membership events
//!   patch them, so `delta_best_split` reproduces `mostUnfair`'s exact
//!   candidate set and skip decisions without any row scan, falling back
//!   to (and re-recording) the real counting pass wherever the caches
//!   can't answer — e.g. a node the previous tree never evaluated or a
//!   brand-new attribute value.
//!
//! Bitwise identity holds because every aggregated value the search
//! compares is a pure function of interned histogram *contents* (count
//! vectors), which the patches keep exactly equal to what a fresh build
//! over the mutated space would intern — only the id numbering may
//! differ, and nothing numeric depends on it. The differential proptest
//! suite (`tests/incremental_equivalence.rs`) pins this across all four
//! EMD backends, along with the guarantee that a delta run never computes
//! more EMDs than the full recompute it replaces.

use std::time::Instant;

use crate::cancel::RunBudget;
use crate::engine::{CacheAdjust, CandidateSplit, EngineParts, SplitEngine};
use crate::error::{CoreError, Result};
use crate::partition::{Partition, PartitioningTree};
use crate::quantify::{Quantify, QuantifyOutcome, SearchStats, SplitEvaluation};
use crate::space::{DeltaOp, RankingSpace, SpaceDelta};

/// What one [`DeltaEngine::apply`] call did to the caches — the
/// O(changed paths) work that replaced an O(dataset) rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Mutation ops applied.
    pub events: usize,
    /// Cached path histograms re-derived by bin adjustment (0 before the
    /// first run, when there are no caches to patch, and for same-bin
    /// rescores, which are recognized no-ops).
    pub histograms_rebuilt: usize,
    /// EMD memo entries dropped by targeted invalidation (entries whose
    /// content ids were orphaned by the patches).
    pub emd_entries_dropped: usize,
}

/// A `QUANTIFY` searcher that owns its ranking space and keeps the split
/// engine's caches alive across mutations.
///
/// ```text
/// let mut delta = DeltaEngine::new(space, Quantify::new(criterion))?;
/// let before = delta.requantify()?;            // full build, caches warm
/// delta.apply(&SpaceDelta::new().rescore(3, 0.9))?;  // O(changed paths)
/// let after = delta.requantify()?;             // delta re-run, bit-identical
/// ```
///
/// The search configuration is honored exactly as [`Quantify::run_space`]
/// would — same split evaluation, minimum partition size, depth cap, and
/// cancellation budget — except that the naive-evaluation flag is ignored
/// (a delta run is engine-backed by definition; results are bit-identical
/// either way). The criterion is fixed for the engine's lifetime:
/// re-fitting the histogram range would shift every bin and invalidate
/// every cache, which is exactly what this type exists to avoid.
#[derive(Debug)]
pub struct DeltaEngine {
    space: RankingSpace,
    search: Quantify,
    /// The detached caches between runs; `None` until the first
    /// [`Self::requantify`] builds them.
    parts: Option<EngineParts>,
    /// Memo entries dropped by compaction since the last completed run,
    /// surfaced as the next outcome's `delta_invalidated_emds`.
    pending_invalidated: usize,
    /// The last completed run's tree in compact form, indexed by its node
    /// ids — the clean-subtree skip's source of structure and stat
    /// contributions. Dropped on a cancelled run (the recording is
    /// incomplete), which only costs the next run its skips.
    prev: Option<Vec<PrevNode>>,
}

/// One node of the last completed run's tree, in exactly the form the next
/// replay's clean-subtree skip needs: the split decision with its child
/// codes (to match a live split against the previous structure) and the
/// cumulative `[nodes_evaluated, candidate_splits, splits_performed]`
/// contributions of the recursion rooted here (so a structurally copied
/// subtree adds stat-exact counts without re-evaluating anything).
#[derive(Debug, Clone, Default)]
struct PrevNode {
    split_attr: Option<usize>,
    /// `(child code, node index)` per child, ascending by code — the same
    /// order [`Partition::split`] and a candidate's `child_ids` use.
    children: Vec<(u32, usize)>,
    stats: [usize; 3],
    /// The node's recorded `mostUnfair` evaluation, for candidate reuse
    /// when the node itself is clean on the next run.
    eval: Option<PrevEval>,
}

/// One node's recorded `mostUnfair` outcome: how many candidates scored,
/// and the winner as `(attr, value bits, child codes)`. A clean node's
/// evaluation is a pure function of its (bit-unchanged) subtree contents,
/// so the next replay reconstructs the winner from this instead of
/// re-scoring every attribute — child codes rather than content ids
/// because codes survive memo compaction.
#[derive(Debug, Clone)]
struct PrevEval {
    scored: usize,
    candidate: Option<(usize, f64, Vec<u32>)>,
}

/// What one replay records about one new-tree node, keyed by node id.
#[derive(Debug, Clone, Default)]
struct NodeRec {
    /// Cumulative `[nodes_evaluated, candidate_splits, splits_performed]`
    /// of the recursion rooted here.
    stats: [usize; 3],
    eval: Option<PrevEval>,
}

/// Previous-run context threaded through one replay: the last completed
/// tree (`prev`, if any) and the per-node recordings being made for the
/// *next* run (`recs`, indexed by the new tree's node ids).
struct Replay<'p> {
    prev: Option<&'p [PrevNode]>,
    recs: Vec<NodeRec>,
}

impl Replay<'_> {
    /// The recording slot for new-tree node `id`, growing the table as
    /// the tree grows.
    fn rec(&mut self, id: usize) -> &mut NodeRec {
        if self.recs.len() <= id {
            self.recs.resize_with(id + 1, NodeRec::default);
        }
        &mut self.recs[id]
    }

    /// The previous run's recorded evaluation for `prev_id`, if any.
    fn prev_eval(&self, prev_id: Option<usize>) -> Option<PrevEval> {
        self.prev?.get(prev_id?)?.eval.clone()
    }
}

impl DeltaEngine {
    /// An incremental searcher over `space` driven by `search`'s
    /// configuration.
    pub fn new(space: RankingSpace, search: Quantify) -> Result<Self> {
        if space.num_individuals() == 0 {
            return Err(CoreError::EmptyInput);
        }
        Ok(DeltaEngine {
            space,
            search,
            parts: None,
            pending_invalidated: 0,
            prev: None,
        })
    }

    /// The current state of the mutating space.
    pub fn space(&self) -> &RankingSpace {
        &self.space
    }

    /// The search configuration every run replays.
    pub fn search(&self) -> &Quantify {
        &self.search
    }

    /// Mutation generation: 0 until the first mutation is applied to live
    /// caches, then one increment per [`Self::apply`] call that patches
    /// them.
    pub fn generation(&self) -> u32 {
        self.parts.as_ref().map_or(0, EngineParts::generation)
    }

    /// Replaces the cancellation budget for subsequent runs (the serving
    /// tier re-arms per request).
    pub fn set_run_budget(&mut self, budget: RunBudget) {
        self.search = self.search.clone().with_run_budget(budget);
    }

    /// Applies a batch of mutations: each op updates the space (bin codes
    /// recomputed for the affected row only), patches every dirty cached
    /// path, and finally compacts orphaned contents out of the EMD memo.
    /// Ops apply sequentially; if one fails (bad row index, non-finite
    /// score, emptying the space), earlier ops stay applied and the space
    /// and caches remain mutually consistent.
    pub fn apply(&mut self, delta: &SpaceDelta) -> Result<DeltaReport> {
        let mut report = DeltaReport::default();
        let Some(parts) = self.parts.as_mut() else {
            // No caches yet: plain space mutation; the first run builds
            // everything fresh anyway.
            self.space.apply_delta(delta)?;
            report.events = delta.len();
            return Ok(report);
        };
        parts.begin_generation();
        for op in &delta.ops {
            match op {
                DeltaOp::Insert { labels, score } => {
                    let codes = self.space.insert_row(labels, *score)?;
                    let bin = parts.bin_of(*score);
                    parts.push_row_bin(bin);
                    report.histograms_rebuilt +=
                        parts.apply_event(&codes, CacheAdjust::Insert { bin });
                }
                DeltaOp::Remove { row } => {
                    let r = *row as usize;
                    // Codes must be captured before the removal destroys
                    // them; the space call right after validates the index
                    // (and guards emptiness) before any cache is touched.
                    let codes: Option<Vec<u32>> = (r < self.space.num_individuals()).then(|| {
                        self.space
                            .attributes()
                            .iter()
                            .map(|a| a.codes[r])
                            .collect()
                    });
                    self.space.remove_row(r)?;
                    let codes = codes.expect("index validated by remove_row");
                    let bin = parts.remove_row_bin(r);
                    report.histograms_rebuilt +=
                        parts.apply_event(&codes, CacheAdjust::Remove { bin });
                }
                DeltaOp::Rescore { row, score } => {
                    let r = *row as usize;
                    let codes: Option<Vec<u32>> = (r < self.space.num_individuals()).then(|| {
                        self.space
                            .attributes()
                            .iter()
                            .map(|a| a.codes[r])
                            .collect()
                    });
                    self.space.rescore_row(r, *score)?;
                    let codes = codes.expect("index validated by rescore_row");
                    let old_bin = parts.row_bin(r);
                    let new_bin = parts.bin_of(*score);
                    parts.set_row_bin(r, new_bin);
                    report.histograms_rebuilt +=
                        parts.apply_event(&codes, CacheAdjust::Rescore { old_bin, new_bin });
                }
            }
            report.events += 1;
        }
        let dropped = parts.compact();
        self.pending_invalidated += dropped;
        report.emd_entries_dropped = dropped;
        Ok(report)
    }

    /// Runs `QUANTIFY` over the current space. The first call builds the
    /// caches from scratch (recording split summaries); later calls replay
    /// the search through the surviving caches, reconstructing every
    /// `mostUnfair` from recorded summaries where possible. The outcome —
    /// tree, partitions, unfairness bits, and the search-level counters
    /// (`nodes_evaluated`, `splits_performed`, `candidate_splits`) — is
    /// identical to [`Quantify::run_space`] on an equal space; only the
    /// cache-level counters differ, reflecting the reuse.
    pub fn requantify(&mut self) -> Result<QuantifyOutcome> {
        let start = Instant::now();
        if self.search.max_depth() == Some(0) {
            // Depth 0 replays `run_space`'s trivial branch verbatim — no
            // engine, no caches touched.
            let root = Partition::root(&self.space);
            let tree = PartitioningTree::new(root.clone());
            let partitions = vec![root];
            let unfairness = self
                .search
                .criterion()
                .unfairness(&partitions, self.space.scores())?;
            return Ok(QuantifyOutcome {
                tree,
                partitions,
                unfairness,
                stats: SearchStats {
                    histograms_built: 1,
                    ..SearchStats::default()
                },
                elapsed: start.elapsed(),
            });
        }
        let mut engine = match self.parts.take() {
            Some(parts) => SplitEngine::resume(&self.space, parts),
            None => {
                let mut engine = SplitEngine::new(&self.space, *self.search.criterion());
                engine.record_split_evals();
                engine
            }
        };
        engine.set_run_budget(self.search.run_budget());
        engine.seed_invalidated_emds(self.pending_invalidated);
        let prev = self.prev.take();
        let mut replay = Replay {
            prev: prev.as_deref(),
            recs: Vec::new(),
        };
        let mut next: Option<Vec<PrevNode>> = None;
        let mut stats = SearchStats::default();
        let result = match self.delta_search(&mut engine, &mut stats, start, &mut replay, &mut next)
        {
            Err(CoreError::Cancelled { reason, .. }) => {
                Quantify::merge_engine_stats(&mut stats, &engine);
                Err(CoreError::Cancelled { reason, stats })
            }
            other => other,
        };
        // The caches stay valid even when the run was cancelled mid-way:
        // a search only ever *adds* pure entries to them.
        let mut parts = engine.into_parts();
        if result.is_ok() {
            self.pending_invalidated = 0;
            // The completed replay re-validated (or copied) everything the
            // accumulated mutations had dirtied.
            parts.clear_dirty();
            self.prev = next;
        }
        self.parts = Some(parts);
        result
    }

    /// The mirror of `Quantify::engine_search`, with `delta_best_split` in
    /// place of the counting-pass `best_split`. Everything else — real
    /// partition splits, sibling sets, split-acceptance values, the final
    /// leaf unfairness — runs through the same engine calls in the same
    /// order, so accepted trees and every compared value reproduce the
    /// from-scratch bits.
    fn delta_search(
        &self,
        engine: &mut SplitEngine<'_>,
        stats: &mut SearchStats,
        start: Instant,
        replay: &mut Replay<'_>,
        next: &mut Option<Vec<PrevNode>>,
    ) -> Result<QuantifyOutcome> {
        let space = &self.space;
        let root = Partition::root(space);
        let mut tree = PartitioningTree::new(root.clone());

        let all_attrs: Vec<usize> = (0..space.attributes().len()).collect();
        let min_size = self.search.min_partition_size();

        let (candidate, scored) =
            self.candidate_for(engine, &root, &all_attrs, min_size, replay, Some(0))?;
        stats.candidate_splits += scored;
        replay.rec(tree.root()).eval = Some(PrevEval {
            scored,
            candidate: candidate
                .as_ref()
                .map(|c| (c.attr, c.value, c.child_codes.clone())),
        });
        let Some(candidate) = candidate else {
            let partitions = vec![root];
            let unfairness = engine.unfairness(&partitions)?;
            Quantify::merge_engine_stats(stats, engine);
            *next = Some(Self::assemble_prev(&tree, &replay.recs));
            return Ok(QuantifyOutcome {
                tree,
                partitions,
                unfairness,
                stats: *stats,
                elapsed: start.elapsed(),
            });
        };

        let first_attr = candidate.attr;
        let children = root.split(space, first_attr);
        debug_assert_eq!(children.len(), candidate.child_ids.len());
        let child_codes: Vec<u32> = children
            .iter()
            .map(|c| c.path.last().expect("split appends a step").code)
            .collect();
        let remaining: Vec<usize> = all_attrs
            .iter()
            .copied()
            .filter(|&a| a != first_attr)
            .collect();
        let ids = tree.split_node(tree.root(), first_attr, children);
        stats.splits_performed += 1;

        let prev_children = Self::match_prev(replay.prev, Some(0), first_attr, &child_codes);
        if let (Some(pc), true) = (prev_children.as_ref(), engine.subtree_clean(&[])) {
            // Zero effective churn: the whole previous tree replays
            // verbatim — copy it.
            self.copy_group(&mut tree, &ids, replay, stats, pc);
        } else {
            for (i, id) in ids.iter().enumerate() {
                let sibling_ids: Vec<u32> = candidate
                    .child_ids
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, &c)| c)
                    .collect();
                self.delta_rec(
                    engine,
                    &mut tree,
                    *id,
                    candidate.child_ids[i],
                    &sibling_ids,
                    &remaining,
                    1,
                    stats,
                    replay,
                    prev_children.as_ref().map(|pc| pc[i]),
                )?;
            }
        }

        let partitions = tree.leaf_partitions();
        let unfairness = engine.unfairness(&partitions)?;
        Quantify::merge_engine_stats(stats, engine);
        *next = Some(Self::assemble_prev(&tree, &replay.recs));
        Ok(QuantifyOutcome {
            tree,
            partitions,
            unfairness,
            stats: *stats,
            elapsed: start.elapsed(),
        })
    }

    /// The node's `mostUnfair` winner: reconstructed from the previous
    /// run's recorded evaluation when the node's subtree is clean (its
    /// cached contents are bit-unchanged, so the recorded winner, value
    /// bits, and scored count are exactly what a live evaluation would
    /// produce), otherwise evaluated through [`SplitEngine::delta_best_split`].
    /// A cache miss inside the reconstruction (a probe the trie can't
    /// answer) falls back to the live evaluation too.
    fn candidate_for(
        &self,
        engine: &mut SplitEngine<'_>,
        current: &Partition,
        avail: &[usize],
        min_size: usize,
        replay: &Replay<'_>,
        prev_id: Option<usize>,
    ) -> Result<(Option<CandidateSplit>, usize)> {
        if let Some(ev) = replay.prev_eval(prev_id) {
            if engine.subtree_clean(&current.path) {
                match &ev.candidate {
                    None => return Ok((None, ev.scored)),
                    Some((attr, value, codes)) => {
                        if let Some(c) = engine.rebuild_candidate(current, *attr, *value, codes) {
                            return Ok((Some(c), ev.scored));
                        }
                    }
                }
            }
        }
        engine.delta_best_split(current, avail, min_size)
    }

    /// Matches a live split (attr + ascending child codes) against the
    /// previous tree's node `prev_id`: `Some(previous child indices)` when
    /// the previous run split this node identically, so children
    /// correspond pairwise.
    fn match_prev(
        prev: Option<&[PrevNode]>,
        prev_id: Option<usize>,
        attr: usize,
        child_codes: &[u32],
    ) -> Option<Vec<usize>> {
        let nodes = prev?;
        let p = &nodes[prev_id?];
        (p.split_attr == Some(attr)
            && p.children.len() == child_codes.len()
            && p.children
                .iter()
                .zip(child_codes)
                .all(|(&(code, _), &c)| code == c))
        .then(|| p.children.iter().map(|&(_, i)| i).collect())
    }

    /// Copies every member of a clean sibling group from the previous
    /// tree: stat contributions carry over cumulatively, structure is
    /// rematerialized by real splits.
    fn copy_group(
        &self,
        tree: &mut PartitioningTree,
        ids: &[usize],
        replay: &mut Replay<'_>,
        stats: &mut SearchStats,
        prev_children: &[usize],
    ) {
        let prev_nodes = replay.prev.expect("a matched group implies a previous run");
        for (i, id) in ids.iter().enumerate() {
            let ps = prev_nodes[prev_children[i]].stats;
            stats.nodes_evaluated += ps[0];
            stats.candidate_splits += ps[1];
            stats.splits_performed += ps[2];
            self.copy_subtree(tree, *id, replay, prev_children[i]);
        }
    }

    /// Structurally copies the previous run's subtree rooted at `prev_idx`
    /// onto the (currently leaf) new-tree node `node_id`. The caller has
    /// proved the subtree clean, so every split decision beneath it is
    /// bit-unchanged; children rematerialize through real
    /// [`Partition::split`] calls — exact row sets even after
    /// index-shifting removals elsewhere in the space — with no candidate
    /// re-evaluation, no trie walks, and no memo probes.
    fn copy_subtree(
        &self,
        tree: &mut PartitioningTree,
        node_id: usize,
        replay: &mut Replay<'_>,
        prev_idx: usize,
    ) {
        let prev_nodes = replay.prev.expect("copy requires a previous run");
        let prev = &prev_nodes[prev_idx];
        let carried = NodeRec {
            stats: prev.stats,
            eval: prev.eval.clone(),
        };
        *replay.rec(node_id) = carried;
        let Some(attr) = prev.split_attr else {
            return;
        };
        let children = tree.node(node_id).partition.split(&self.space, attr);
        debug_assert_eq!(children.len(), prev.children.len());
        let ids = tree.split_node(node_id, attr, children);
        for (i, id) in ids.iter().enumerate() {
            self.copy_subtree(tree, *id, replay, prev.children[i].1);
        }
    }

    /// The finished run's tree re-encoded as the next run's [`PrevNode`]
    /// table (same node indexing as the tree).
    fn assemble_prev(tree: &PartitioningTree, recs: &[NodeRec]) -> Vec<PrevNode> {
        tree.nodes()
            .iter()
            .enumerate()
            .map(|(id, n)| {
                let rec = recs.get(id).cloned().unwrap_or_default();
                PrevNode {
                    split_attr: n.split_attr,
                    children: n
                        .children
                        .iter()
                        .map(|&c| {
                            let code = tree
                                .node(c)
                                .partition
                                .path
                                .last()
                                .expect("a child's path ends in its own step")
                                .code;
                            (code, c)
                        })
                        .collect(),
                    stats: rec.stats,
                    eval: rec.eval,
                }
            })
            .collect()
    }

    /// The mirror of `Quantify::quantify_rec_engine` (Algorithm 1's
    /// recursive body), summary-replayed. The node's and its siblings'
    /// histogram content ids arrive from the parent's winning candidate
    /// (`Partition::split` and the candidate's `child_ids` both enumerate
    /// nonempty codes in ascending order), so the split-acceptance values
    /// come straight from id-level evaluation — no per-node trie walks, no
    /// sibling partition clones. Every compared value is a pure function
    /// of content ids, so the replay reproduces the from-scratch bits.
    #[allow(clippy::too_many_arguments)]
    fn delta_rec(
        &self,
        engine: &mut SplitEngine<'_>,
        tree: &mut PartitioningTree,
        node_id: usize,
        current_id: u32,
        sibling_ids: &[u32],
        avail: &[usize],
        depth: usize,
        stats: &mut SearchStats,
        replay: &mut Replay<'_>,
        prev_id: Option<usize>,
    ) -> Result<()> {
        // Record this subtree's cumulative counter contributions so a
        // future clean-subtree copy can add them without re-evaluating.
        let snap = [
            stats.nodes_evaluated,
            stats.candidate_splits,
            stats.splits_performed,
        ];
        let result = self.delta_rec_inner(
            engine,
            tree,
            node_id,
            current_id,
            sibling_ids,
            avail,
            depth,
            stats,
            replay,
            prev_id,
        );
        let contrib = [
            stats.nodes_evaluated - snap[0],
            stats.candidate_splits - snap[1],
            stats.splits_performed - snap[2],
        ];
        replay.rec(node_id).stats = contrib;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn delta_rec_inner(
        &self,
        engine: &mut SplitEngine<'_>,
        tree: &mut PartitioningTree,
        node_id: usize,
        current_id: u32,
        sibling_ids: &[u32],
        avail: &[usize],
        depth: usize,
        stats: &mut SearchStats,
        replay: &mut Replay<'_>,
        prev_id: Option<usize>,
    ) -> Result<()> {
        if avail.is_empty() {
            return Ok(());
        }
        if self.search.max_depth().is_some_and(|d| depth >= d) {
            return Ok(());
        }
        engine.check_budget()?;
        stats.nodes_evaluated += 1;

        let (candidate, scored) = self.candidate_for(
            engine,
            &tree.node(node_id).partition,
            avail,
            self.search.min_partition_size(),
            replay,
            prev_id,
        )?;
        stats.candidate_splits += scored;
        replay.rec(node_id).eval = Some(PrevEval {
            scored,
            candidate: candidate
                .as_ref()
                .map(|c| (c.attr, c.value, c.child_codes.clone())),
        });
        let Some(candidate) = candidate else {
            return Ok(());
        };

        let (current_val, children_val) = match self.search.split_eval() {
            SplitEvaluation::PaperSiblings => {
                let cur = engine.versus_ids(current_id, sibling_ids)?;
                let ch = engine.children_versus_siblings_ids(&candidate, sibling_ids)?;
                (cur, ch)
            }
            SplitEvaluation::Holistic => {
                engine.holistic_values_ids(sibling_ids, current_id, &candidate)?
            }
        };

        if !self
            .search
            .criterion()
            .objective
            .is_better(children_val, current_val)
        {
            return Ok(());
        }

        let attr = candidate.attr;
        let children = tree.node(node_id).partition.split(engine.space(), attr);
        debug_assert!(children.len() >= 2);
        debug_assert_eq!(children.len(), candidate.child_ids.len());
        let child_codes: Vec<u32> = children
            .iter()
            .map(|c| c.path.last().expect("split appends a step").code)
            .collect();
        let remaining: Vec<usize> = avail.iter().copied().filter(|&a| a != attr).collect();
        let ids = tree.split_node(node_id, attr, children);
        stats.splits_performed += 1;

        // Clean-subtree skip: when no mutation touched any row of this
        // node (so none of its children either) and the previous run split
        // it identically, every value the recursion below would compare is
        // a pure function of bit-unchanged histogram contents — each
        // child's accept decision only consults the group itself and its
        // own descendants. The previous subtrees therefore replay
        // verbatim; copy them instead.
        let prev_children = Self::match_prev(replay.prev, prev_id, attr, &child_codes);
        if let Some(pc) = prev_children.as_ref() {
            if engine.subtree_clean(&tree.node(node_id).partition.path) {
                self.copy_group(tree, &ids, replay, stats, pc);
                return Ok(());
            }
        }

        for (i, id) in ids.iter().enumerate() {
            let new_sibling_ids: Vec<u32> = candidate
                .child_ids
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &c)| c)
                .collect();
            self.delta_rec(
                engine,
                tree,
                *id,
                candidate.child_ids[i],
                &new_sibling_ids,
                &remaining,
                depth + 1,
                stats,
                replay,
                prev_children.as_ref().map(|pc| pc[i]),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::{Emd, EmdBackendKind};
    use crate::fairness::{Aggregator, FairnessCriterion, Objective};
    use crate::space::ProtectedAttribute;

    fn churn_space(n: usize) -> RankingSpace {
        let genders: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "F" } else { "M" }).collect();
        let regions: Vec<String> = (0..n).map(|i| format!("r{}", i % 3)).collect();
        let region_refs: Vec<&str> = regions.iter().map(String::as_str).collect();
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let base = 0.1 + (i % 7) as f64 * 0.1;
                if i % 2 == 0 {
                    base * 0.6
                } else {
                    base
                }
            })
            .collect();
        RankingSpace::new(
            vec![
                ProtectedAttribute::from_values("gender", &genders),
                ProtectedAttribute::from_values("region", &region_refs),
            ],
            scores,
        )
        .unwrap()
    }

    fn assert_outcomes_bitwise_equal(delta: &QuantifyOutcome, full: &QuantifyOutcome) {
        assert_eq!(delta.unfairness.to_bits(), full.unfairness.to_bits());
        assert_eq!(delta.partitions, full.partitions);
        assert_eq!(delta.tree, full.tree);
        assert_eq!(delta.stats.nodes_evaluated, full.stats.nodes_evaluated);
        assert_eq!(delta.stats.splits_performed, full.stats.splits_performed);
        assert_eq!(delta.stats.candidate_splits, full.stats.candidate_splits);
    }

    #[test]
    fn first_requantify_matches_plain_quantify() {
        let space = churn_space(60);
        let search = Quantify::default();
        let mut engine = DeltaEngine::new(space.clone(), search.clone()).unwrap();
        let delta = engine.requantify().unwrap();
        let full = search.run_space(&space).unwrap();
        assert_outcomes_bitwise_equal(&delta, &full);
        // A from-scratch build predates nothing.
        assert_eq!(delta.stats.delta_reused_histograms, 0);
        assert_eq!(delta.stats.delta_invalidated_emds, 0);
    }

    #[test]
    fn zero_churn_rerun_is_pure_reuse() {
        let space = churn_space(60);
        let mut engine = DeltaEngine::new(space.clone(), Quantify::default()).unwrap();
        let first = engine.requantify().unwrap();
        let report = engine.apply(&SpaceDelta::new()).unwrap();
        assert_eq!(report, DeltaReport::default());
        let second = engine.requantify().unwrap();
        assert_outcomes_bitwise_equal(&second, &first);
        // No mutations → every consulted histogram predates the run and
        // not a single histogram or EMD is recomputed.
        assert!(second.stats.delta_reused_histograms > 0);
        assert_eq!(second.stats.histograms_built, 0);
        assert_eq!(second.stats.emd_calls, 0);
    }

    #[test]
    fn churn_matches_full_recompute_across_backends() {
        for backend in [
            EmdBackendKind::OneD,
            EmdBackendKind::Transport,
            EmdBackendKind::Batched,
            EmdBackendKind::Kernel,
        ] {
            let criterion = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean)
                .with_emd(Emd::new(backend));
            let search = Quantify::new(criterion);
            let mut engine = DeltaEngine::new(churn_space(60), search.clone()).unwrap();
            engine.requantify().unwrap();
            let delta_ops = SpaceDelta::new()
                .rescore(4, 0.93)
                .insert(vec!["F", "r1"], 0.52)
                .remove(17)
                .rescore(0, 0.05);
            let report = engine.apply(&delta_ops).unwrap();
            assert_eq!(report.events, 4, "{backend:?}");
            assert!(report.histograms_rebuilt > 0, "{backend:?}");
            let delta = engine.requantify().unwrap();
            let full = search.run_space(engine.space()).unwrap();
            assert_outcomes_bitwise_equal(&delta, &full);
            assert!(
                delta.stats.emd_calls <= full.stats.emd_calls,
                "{backend:?}: delta recomputed {} EMDs, full {}",
                delta.stats.emd_calls,
                full.stats.emd_calls
            );
            assert!(delta.stats.delta_reused_histograms > 0, "{backend:?}");
            assert_eq!(
                delta.stats.delta_invalidated_emds, report.emd_entries_dropped,
                "{backend:?}"
            );
        }
    }

    #[test]
    fn sustained_churn_stays_bitwise_identical() {
        let search = Quantify::default().with_min_partition_size(2);
        let mut engine = DeltaEngine::new(churn_space(48), search.clone()).unwrap();
        engine.requantify().unwrap();
        for round in 0..6u32 {
            let delta_ops = SpaceDelta::new()
                .rescore(round, 0.05 + round as f64 * 0.13)
                .insert(vec!["M", "r2"], 0.3 + round as f64 * 0.07)
                .remove(2 * round);
            engine.apply(&delta_ops).unwrap();
            let delta = engine.requantify().unwrap();
            let full = search.run_space(engine.space()).unwrap();
            assert_outcomes_bitwise_equal(&delta, &full);
            assert_eq!(engine.generation(), round + 1);
        }
    }

    #[test]
    fn new_attribute_value_falls_back_and_self_heals() {
        let search = Quantify::default();
        let mut engine = DeltaEngine::new(churn_space(30), search.clone()).unwrap();
        engine.requantify().unwrap();
        // "r3" is a brand-new region label: its child edge exists in no
        // cache, so the affected nodes must fall back to real scans.
        engine
            .apply(&SpaceDelta::new().insert(vec!["F", "r3"], 0.77))
            .unwrap();
        let delta = engine.requantify().unwrap();
        let full = search.run_space(engine.space()).unwrap();
        assert_outcomes_bitwise_equal(&delta, &full);
        // The fallback re-recorded: the next zero-churn run reuses fully.
        let again = engine.requantify().unwrap();
        assert_outcomes_bitwise_equal(&again, &delta);
        assert_eq!(again.stats.histograms_built, 0);
    }

    #[test]
    fn depth_zero_replays_the_trivial_branch() {
        let space = churn_space(20);
        let search = Quantify::default().with_max_depth(0);
        let mut engine = DeltaEngine::new(space.clone(), search.clone()).unwrap();
        let delta = engine.requantify().unwrap();
        let full = search.run_space(&space).unwrap();
        assert_eq!(delta.unfairness.to_bits(), full.unfairness.to_bits());
        assert_eq!(delta.partitions, full.partitions);
        assert_eq!(delta.stats, full.stats);
    }

    #[test]
    fn apply_before_first_run_mutates_the_space_only() {
        let mut engine = DeltaEngine::new(churn_space(20), Quantify::default()).unwrap();
        let report = engine
            .apply(&SpaceDelta::new().insert(vec!["F", "r0"], 0.4).remove(0))
            .unwrap();
        assert_eq!(report.events, 2);
        assert_eq!(report.histograms_rebuilt, 0);
        assert_eq!(report.emd_entries_dropped, 0);
        assert_eq!(engine.space().num_individuals(), 20);
        let outcome = engine.requantify().unwrap();
        let full = Quantify::default().run_space(engine.space()).unwrap();
        assert_outcomes_bitwise_equal(&outcome, &full);
    }

    #[test]
    fn failed_op_keeps_space_and_caches_consistent() {
        let search = Quantify::default();
        let mut engine = DeltaEngine::new(churn_space(24), search.clone()).unwrap();
        engine.requantify().unwrap();
        // Second op targets a row far out of bounds: the first op stays
        // applied, the engine remains usable and exact.
        let bad = SpaceDelta::new().rescore(1, 0.99).remove(10_000);
        assert!(engine.apply(&bad).is_err());
        let delta = engine.requantify().unwrap();
        let full = search.run_space(engine.space()).unwrap();
        assert_outcomes_bitwise_equal(&delta, &full);
        assert_eq!(engine.space().scores()[1], 0.99);
    }

    #[test]
    fn empty_space_is_rejected_at_construction() {
        // A space can never become empty through the mutation API: removal
        // of the last row is refused, and `RankingSpace::new` already
        // rejects zero rows — so `DeltaEngine::new`'s own guard is a
        // belt-and-braces invariant rather than a reachable path.
        let mut one = RankingSpace::new(
            vec![ProtectedAttribute::from_values("g", &["a"])],
            vec![0.5],
        )
        .unwrap();
        assert!(matches!(one.remove_row(0), Err(CoreError::EmptyInput)));
        assert!(matches!(
            RankingSpace::new(vec![], vec![]),
            Err(CoreError::EmptyInput)
        ));
        // And a one-row space is perfectly serviceable.
        let engine = DeltaEngine::new(one, Quantify::default());
        assert!(engine.is_ok());
    }
}
