//! Cooperative cancellation for long-running searches.
//!
//! The serving tier hands every request a [`RunBudget`]: an optional wall
//! clock deadline plus any number of shared [`CancelToken`]s (one per
//! request for client disconnects, one per server for shutdown). Search
//! loops poll the budget through a [`BudgetChecker`], which amortizes the
//! atomic load / clock read over [`BudgetChecker::STRIDE`] evaluations so
//! the hot path pays one decrement-and-branch per tick.
//!
//! Cancellation is *cooperative*: nothing is interrupted mid-operation.
//! A cancelled search unwinds with [`crate::CoreError::Cancelled`]
//! carrying the [`crate::quantify::SearchStats`] accumulated so far, so
//! callers can report how much work a deadline cut short.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cancelled. The first cause to fire wins and sticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The per-request deadline elapsed.
    Deadline,
    /// The client went away; nobody is waiting for the answer.
    Disconnected,
    /// The server is shutting down and draining in-flight work.
    Shutdown,
}

impl CancelReason {
    const CODE_DEADLINE: u8 = 1;
    const CODE_DISCONNECTED: u8 = 2;
    const CODE_SHUTDOWN: u8 = 3;

    fn code(self) -> u8 {
        match self {
            CancelReason::Deadline => Self::CODE_DEADLINE,
            CancelReason::Disconnected => Self::CODE_DISCONNECTED,
            CancelReason::Shutdown => Self::CODE_SHUTDOWN,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            Self::CODE_DEADLINE => Some(CancelReason::Deadline),
            Self::CODE_DISCONNECTED => Some(CancelReason::Disconnected),
            Self::CODE_SHUTDOWN => Some(CancelReason::Shutdown),
            _ => None,
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Deadline => write!(f, "deadline exceeded"),
            CancelReason::Disconnected => write!(f, "client disconnected"),
            CancelReason::Shutdown => write!(f, "server shutting down"),
        }
    }
}

/// A shared flag that flips once, from "live" to "cancelled for a reason".
///
/// Clones observe the same underlying state. The first `cancel` call wins;
/// later calls with a different reason are ignored so the reported cause
/// is the one that actually aborted the work.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A live (uncancelled) token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flip the token. The first reason to land is the one observers see.
    pub fn cancel(&self, reason: CancelReason) {
        let _ = self
            .state
            .compare_exchange(0, reason.code(), Ordering::AcqRel, Ordering::Acquire);
    }

    /// `Some(reason)` once cancelled, `None` while live.
    pub fn cancelled(&self) -> Option<CancelReason> {
        CancelReason::from_code(self.state.load(Ordering::Acquire))
    }
}

/// The cancellation envelope for one unit of work: a deadline plus the
/// tokens that may abort it. Cheap to clone; clones share the tokens.
///
/// The default budget is unlimited and checks reduce to a constant branch.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    deadline: Option<Instant>,
    tokens: Vec<CancelToken>,
}

impl RunBudget {
    /// A budget that never cancels.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Attach an absolute deadline (keeps the earlier one if already set).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(existing) => existing.min(deadline),
            None => deadline,
        });
        self
    }

    /// Attach a deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attach a cancellation token; any attached token can abort the run.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.tokens.push(token);
        self
    }

    /// True when no deadline and no token can ever fire.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.tokens.is_empty()
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Poll the budget once. Explicit tokens win over the deadline so the
    /// reported reason matches the actual cause when both have fired.
    pub fn check(&self) -> Result<(), CancelReason> {
        for token in &self.tokens {
            if let Some(reason) = token.cancelled() {
                return Err(reason);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(CancelReason::Deadline);
            }
        }
        Ok(())
    }

    /// A strided checker for hot loops.
    pub fn checker(&self) -> BudgetChecker {
        BudgetChecker::new(self.clone())
    }
}

/// Amortizes [`RunBudget::check`] over [`Self::STRIDE`] ticks. One tick is
/// a u32 decrement and branch; the atomic loads and `Instant::now()` run
/// once per stride, keeping cancellation off the kernel profile.
#[derive(Debug, Clone)]
pub struct BudgetChecker {
    budget: RunBudget,
    unlimited: bool,
    countdown: u32,
}

impl BudgetChecker {
    /// Evaluations between real budget polls.
    pub const STRIDE: u32 = 256;

    fn new(budget: RunBudget) -> Self {
        let unlimited = budget.is_unlimited();
        Self {
            budget,
            unlimited,
            countdown: Self::STRIDE,
        }
    }

    /// Record one unit of work; polls the budget every [`Self::STRIDE`] ticks.
    #[inline]
    pub fn tick(&mut self) -> Result<(), CancelReason> {
        if self.unlimited {
            return Ok(());
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = Self::STRIDE;
            return self.budget.check();
        }
        Ok(())
    }

    /// Record `n` units of work at once (batch evaluation paths).
    #[inline]
    pub fn tick_n(&mut self, n: usize) -> Result<(), CancelReason> {
        if self.unlimited {
            return Ok(());
        }
        let n = u32::try_from(n).unwrap_or(u32::MAX);
        if let Some(rest) = self.countdown.checked_sub(n) {
            if rest > 0 {
                self.countdown = rest;
                return Ok(());
            }
        }
        self.countdown = Self::STRIDE;
        self.budget.check()
    }

    /// Poll the budget immediately, ignoring the stride.
    pub fn check_now(&self) -> Result<(), CancelReason> {
        if self.unlimited {
            return Ok(());
        }
        self.budget.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fires() {
        let budget = RunBudget::unlimited();
        assert!(budget.is_unlimited());
        assert_eq!(budget.check(), Ok(()));
        let mut checker = budget.checker();
        for _ in 0..10_000 {
            assert_eq!(checker.tick(), Ok(()));
        }
    }

    #[test]
    fn first_cancel_reason_sticks() {
        let token = CancelToken::new();
        assert_eq!(token.cancelled(), None);
        token.cancel(CancelReason::Disconnected);
        token.cancel(CancelReason::Shutdown);
        assert_eq!(token.cancelled(), Some(CancelReason::Disconnected));
    }

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel(CancelReason::Shutdown);
        assert_eq!(clone.cancelled(), Some(CancelReason::Shutdown));
    }

    #[test]
    fn expired_deadline_fires() {
        let budget = RunBudget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(budget.check(), Err(CancelReason::Deadline));
    }

    #[test]
    fn earlier_deadline_wins() {
        let near = Instant::now() + Duration::from_millis(5);
        let far = near + Duration::from_secs(60);
        let budget = RunBudget::unlimited().with_deadline(far).with_deadline(near);
        assert_eq!(budget.deadline(), Some(near));
        let budget = RunBudget::unlimited().with_deadline(near).with_deadline(far);
        assert_eq!(budget.deadline(), Some(near));
    }

    #[test]
    fn token_beats_deadline_in_reported_reason() {
        let token = CancelToken::new();
        token.cancel(CancelReason::Shutdown);
        let budget = RunBudget::unlimited()
            .with_deadline(Instant::now() - Duration::from_millis(1))
            .with_token(token);
        assert_eq!(budget.check(), Err(CancelReason::Shutdown));
    }

    #[test]
    fn strided_checker_detects_cancellation_within_a_stride() {
        let token = CancelToken::new();
        let budget = RunBudget::unlimited().with_token(token.clone());
        let mut checker = budget.checker();
        token.cancel(CancelReason::Disconnected);
        let mut fired = None;
        for i in 0..(BudgetChecker::STRIDE * 2) {
            if let Err(reason) = checker.tick() {
                fired = Some((i, reason));
                break;
            }
        }
        let (ticks, reason) = fired.expect("checker fires within two strides");
        assert!(ticks < BudgetChecker::STRIDE);
        assert_eq!(reason, CancelReason::Disconnected);
    }

    #[test]
    fn tick_n_covers_large_batches() {
        let token = CancelToken::new();
        let budget = RunBudget::unlimited().with_token(token.clone());
        let mut checker = budget.checker();
        token.cancel(CancelReason::Deadline);
        // A single batch larger than the stride must poll.
        assert_eq!(
            checker.tick_n(BudgetChecker::STRIDE as usize * 4),
            Err(CancelReason::Deadline)
        );
    }

    #[test]
    fn check_now_ignores_stride() {
        let token = CancelToken::new();
        let budget = RunBudget::unlimited().with_token(token.clone());
        let checker = budget.checker();
        assert_eq!(checker.check_now(), Ok(()));
        token.cancel(CancelReason::Shutdown);
        assert_eq!(checker.check_now(), Err(CancelReason::Shutdown));
    }
}
