//! Fast deterministic EMD unit tests (fixed seeds), complementing the
//! root proptest suite: backend agreement between the 1-D closed form and
//! the transportation solver on random mass vectors, plus the metric
//! axioms (identity, symmetry, triangle inequality) the unfairness
//! aggregation relies on.

use fairank_core::emd::{emd_1d, transport_emd, Emd, EmdBackendKind};
use fairank_core::histogram::{Histogram, HistogramSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random probability vector of `bins` non-negative entries summing to 1.
fn random_mass(rng: &mut StdRng, bins: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..bins).map(|_| rng.gen::<f64>()).collect();
    let sum: f64 = v.iter().sum();
    for x in &mut v {
        *x /= sum;
    }
    v
}

/// `|i - j|` ground distances for `n` bins, row-major.
fn abs_cost(n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            c[i * n + j] = (i as f64 - j as f64).abs();
        }
    }
    c
}

#[test]
fn closed_form_matches_transport_solver_on_random_mass_vectors() {
    let mut rng = StdRng::seed_from_u64(0xEDB7_2019);
    for bins in [2usize, 3, 7, 16, 33] {
        let cost = abs_cost(bins);
        for _ in 0..50 {
            let a = random_mass(&mut rng, bins);
            let b = random_mass(&mut rng, bins);
            let cdf = fairank_core::emd::one_d::emd_1d_mass(&a, &b, 1.0);
            let plan = transport_emd(&a, &b, &cost, bins).expect("solvable");
            assert!(
                (plan.cost - cdf).abs() < 1e-8,
                "bins={bins}: transport {} vs closed form {cdf}",
                plan.cost
            );
        }
    }
}

#[test]
fn identity_of_indiscernibles_at_fixed_seeds() {
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..100 {
        let a = random_mass(&mut rng, 12);
        let d = fairank_core::emd::one_d::emd_1d_mass(&a, &a, 0.1);
        assert!(d.abs() < 1e-12, "self-distance {d}");
    }
}

#[test]
fn symmetry_at_fixed_seeds() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..100 {
        let a = random_mass(&mut rng, 10);
        let b = random_mass(&mut rng, 10);
        let ab = fairank_core::emd::one_d::emd_1d_mass(&a, &b, 0.1);
        let ba = fairank_core::emd::one_d::emd_1d_mass(&b, &a, 0.1);
        assert!(ab >= 0.0);
        assert!((ab - ba).abs() < 1e-12, "{ab} vs {ba}");
    }
}

#[test]
fn triangle_inequality_at_fixed_seeds() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..100 {
        let a = random_mass(&mut rng, 8);
        let b = random_mass(&mut rng, 8);
        let c = random_mass(&mut rng, 8);
        let ab = fairank_core::emd::one_d::emd_1d_mass(&a, &b, 1.0);
        let bc = fairank_core::emd::one_d::emd_1d_mass(&b, &c, 1.0);
        let ac = fairank_core::emd::one_d::emd_1d_mass(&a, &c, 1.0);
        assert!(ac <= ab + bc + 1e-9, "{ac} > {ab} + {bc}");
    }
}

#[test]
fn histogram_backends_agree_and_stay_bounded() {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = HistogramSpec::unit(10).expect("valid spec");
    let one_d_backend = Emd::new(EmdBackendKind::OneD);
    let transport_backend = Emd::new(EmdBackendKind::Transport);
    let batched_backend = Emd::new(EmdBackendKind::Batched);
    for _ in 0..25 {
        let na = rng.gen_range(1usize..60);
        let nb = rng.gen_range(1usize..60);
        let ha = Histogram::from_scores(spec, (0..na).map(|_| rng.gen::<f64>()));
        let hb = Histogram::from_scores(spec, (0..nb).map(|_| rng.gen::<f64>()));
        let d1 = one_d_backend.distance(&ha, &hb).expect("computable");
        let d2 = transport_backend.distance(&ha, &hb).expect("computable");
        let d3 = batched_backend.distance(&ha, &hb).expect("computable");
        assert!((d1 - d2).abs() < 1e-8, "{d1} vs {d2}");
        assert_eq!(d1.to_bits(), d3.to_bits(), "{d1} vs batched {d3}");
        assert!((0.0..=1.0 + 1e-12).contains(&d1));
        assert!((emd_1d(&ha, &hb) - d1).abs() < 1e-12);
    }
}

#[test]
fn known_closed_form_values() {
    // All mass one bin apart: EMD is exactly one bin width.
    let a = [1.0, 0.0];
    let b = [0.0, 1.0];
    assert!((fairank_core::emd::one_d::emd_1d_mass(&a, &b, 0.5) - 0.5).abs() < 1e-15);
    // Half the mass moves two bins at width 0.25: 0.5 * 2 * 0.25.
    let a = [1.0, 0.0, 0.0];
    let b = [0.5, 0.0, 0.5];
    assert!((fairank_core::emd::one_d::emd_1d_mass(&a, &b, 0.25) - 0.25).abs() < 1e-15);
}
