//! Criterion benches for the anonymization substrate (experiment E5's cost
//! side): Mondrian and Datafly across population sizes and k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairank_anonymize::{datafly, mondrian, DataflyConfig, MondrianConfig};
use fairank_data::synth::biased_crowdsourcing_spec;
use fairank_data::Dataset;

const QIS: [&str; 5] = ["gender", "country", "birth_decade", "language", "ethnicity"];

fn population(n: usize) -> Dataset {
    biased_crowdsourcing_spec(n, 42).generate().expect("generates")
}

fn bench_mondrian(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymize/mondrian");
    group.sample_size(10);
    for n in [200usize, 1_000, 5_000] {
        let ds = population(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |bencher, ds| {
            bencher.iter(|| mondrian(ds, &QIS, MondrianConfig { k: 5 }).expect("anonymizes"))
        });
    }
    group.finish();
}

fn bench_datafly(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymize/datafly");
    group.sample_size(10);
    for k in [2usize, 10] {
        let ds = population(1_000);
        group.bench_with_input(BenchmarkId::from_parameter(k), &ds, |bencher, ds| {
            bencher.iter(|| {
                datafly(
                    ds,
                    &QIS,
                    &[],
                    DataflyConfig {
                        k,
                        max_suppression: 0.05,
                    },
                )
                .expect("anonymizes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mondrian, bench_datafly);
criterion_main!(benches);
