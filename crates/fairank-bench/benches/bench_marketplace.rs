//! Criterion benches for marketplace operations: ranking a job, observing
//! under transparency settings, and a full audit crawl (experiment E9's
//! cost side).

use criterion::{criterion_group, criterion_main, Criterion};
use fairank_core::fairness::FairnessCriterion;
use fairank_marketplace::crawler::crawl_marketplace;
use fairank_marketplace::scenario::taskrabbit_like;
use fairank_marketplace::Transparency;

fn bench_marketplace(c: &mut Criterion) {
    let market = taskrabbit_like(1_000, 42).expect("builds");
    c.bench_function("marketplace/rank_one_job", |bencher| {
        bencher.iter(|| market.ranking_for("wood-panels").expect("ranks"))
    });
    c.bench_function("marketplace/observe_full", |bencher| {
        bencher.iter(|| {
            market
                .observe("wood-panels", &Transparency::full())
                .expect("observes")
        })
    });
    c.bench_function("marketplace/observe_blackbox_k5", |bencher| {
        bencher.iter(|| {
            market
                .observe("wood-panels", &Transparency::blackbox(5))
                .expect("observes")
        })
    });

    let small = taskrabbit_like(300, 42).expect("builds");
    let mut group = c.benchmark_group("marketplace/crawl");
    group.sample_size(10);
    group.bench_function("full_300_workers", |bencher| {
        bencher.iter(|| {
            crawl_marketplace(&small, &Transparency::full(), &FairnessCriterion::default())
                .expect("crawls")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_marketplace);
criterion_main!(benches);
