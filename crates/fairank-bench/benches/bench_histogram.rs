//! Criterion benches for histogram construction (the inner loop of every
//! split evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fairank_core::histogram::{Histogram, HistogramSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    let spec = HistogramSpec::unit(10).expect("valid spec");
    for n in [100usize, 10_000, 1_000_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..=1.0)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("from_scores", n), &n, |bencher, _| {
            bencher.iter(|| Histogram::from_scores(spec, scores.iter().copied()))
        });
    }
    // Row-subset construction (what the quantifier actually calls).
    let mut rng = StdRng::seed_from_u64(9);
    let scores: Vec<f64> = (0..100_000).map(|_| rng.gen_range(0.0..=1.0)).collect();
    let rows: Vec<u32> = (0..100_000).step_by(3).collect();
    group.bench_function("from_rows_third", |bencher| {
        bencher.iter(|| Histogram::from_rows(spec, &scores, &rows))
    });
    group.finish();
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
