//! Criterion benches for the EMD backends (experiment E11's timing side):
//! 1-D closed form vs transportation solver across bin counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairank_core::emd::{Emd, EmdBackendKind};
use fairank_core::histogram::{Histogram, HistogramSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hist_pair(bins: usize, seed: u64) -> (Histogram, Histogram) {
    let spec = HistogramSpec::unit(bins).expect("valid spec");
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Histogram::from_scores(spec, (0..500).map(|_| rng.gen_range(0.0..=1.0)));
    let b = Histogram::from_scores(spec, (0..500).map(|_| rng.gen_range(0.0..=1.0)));
    (a, b)
}

fn bench_emd(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd");
    for bins in [5usize, 10, 50, 200] {
        let (a, b) = hist_pair(bins, 42);
        let one_d = Emd::new(EmdBackendKind::OneD);
        group.bench_with_input(BenchmarkId::new("one_d", bins), &bins, |bencher, _| {
            bencher.iter(|| one_d.distance(&a, &b).expect("computable"))
        });
        // The SoA kernel's payoff is batch folds: all C(k, 2) pairs of a
        // histogram set in one structure-of-arrays pass.
        let hists: Vec<Histogram> = (0..16)
            .map(|seed| hist_pair(bins, seed).0)
            .collect();
        let kernel = Emd::new(EmdBackendKind::Kernel);
        group.bench_with_input(
            BenchmarkId::new("kernel_pairwise16", bins),
            &bins,
            |bencher, _| bencher.iter(|| kernel.pairwise(&hists).expect("computable")),
        );
        let batched = Emd::new(EmdBackendKind::Batched);
        group.bench_with_input(
            BenchmarkId::new("batched_pairwise16", bins),
            &bins,
            |bencher, _| bencher.iter(|| batched.pairwise(&hists).expect("computable")),
        );
        // The transport solver is polynomial in bins; cap to keep runs short.
        if bins <= 50 {
            let transport = Emd::new(EmdBackendKind::Transport);
            group.bench_with_input(
                BenchmarkId::new("transport", bins),
                &bins,
                |bencher, _| bencher.iter(|| transport.distance(&a, &b).expect("computable")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_emd);
criterion_main!(benches);
