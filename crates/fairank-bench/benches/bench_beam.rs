//! Criterion benches for beam search (experiment E13's timing side):
//! latency vs beam width, against the greedy baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairank_bench::synthetic_space;
use fairank_core::beam::BeamSearch;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;

fn bench_beam(c: &mut Criterion) {
    let mut group = c.benchmark_group("beam");
    group.sample_size(10);
    let space = synthetic_space(200, 3, 3, 0.3, 42);
    let greedy = Quantify::new(FairnessCriterion::default());
    group.bench_function("greedy_baseline", |bencher| {
        bencher.iter(|| greedy.run_space(&space).expect("runs"))
    });
    for width in [1usize, 4, 16] {
        let beam = BeamSearch::new(FairnessCriterion::default(), width);
        group.bench_with_input(BenchmarkId::new("width", width), &width, |bencher, _| {
            bencher.iter(|| beam.run_space(&space).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_beam);
criterion_main!(benches);
