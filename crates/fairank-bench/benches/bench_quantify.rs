//! Criterion benches for Algorithm 1 (`QUANTIFY`) — the interactivity
//! claim (experiment E4) as a tracked benchmark: latency vs population
//! size and vs protected-attribute count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fairank_bench::synthetic_space;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;

fn bench_population_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantify/population");
    group.sample_size(20);
    let quantify = Quantify::new(FairnessCriterion::default());
    for n in [100usize, 1_000, 10_000] {
        let space = synthetic_space(n, 4, 3, 0.3, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| quantify.run_space(&space).expect("runs"))
        });
    }
    group.finish();
}

fn bench_attribute_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantify/attributes");
    group.sample_size(20);
    let quantify = Quantify::new(FairnessCriterion::default());
    for attrs in [2usize, 4, 6, 8] {
        let space = synthetic_space(2_000, attrs, 3, 0.3, 7);
        group.bench_with_input(BenchmarkId::from_parameter(attrs), &attrs, |bencher, _| {
            bencher.iter(|| quantify.run_space(&space).expect("runs"))
        });
    }
    group.finish();
}

/// The split engine against the naive evaluation on the BENCH_quantify
/// reference configuration (10k individuals, 8 attributes) — the tracked
/// head-to-head behind the `BENCH_quantify.json` emitter.
fn bench_engine_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantify/engine-vs-naive");
    group.sample_size(10);
    let space = synthetic_space(10_000, 8, 3, 0.3, 7);
    let engine = Quantify::new(FairnessCriterion::default());
    let naive = Quantify::new(FairnessCriterion::default()).with_naive_evaluation();
    group.bench_function("engine", |bencher| {
        bencher.iter(|| engine.run_space(&space).expect("runs"))
    });
    group.bench_function("naive", |bencher| {
        bencher.iter(|| naive.run_space(&space).expect("runs"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_population_scaling,
    bench_attribute_scaling,
    bench_engine_vs_naive
);
criterion_main!(benches);
