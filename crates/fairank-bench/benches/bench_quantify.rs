//! Criterion benches for Algorithm 1 (`QUANTIFY`) — the interactivity
//! claim (experiment E4) as a tracked benchmark: latency vs population
//! size and vs protected-attribute count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fairank_bench::synthetic_space;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;

fn bench_population_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantify/population");
    group.sample_size(20);
    let quantify = Quantify::new(FairnessCriterion::default());
    for n in [100usize, 1_000, 10_000] {
        let space = synthetic_space(n, 4, 3, 0.3, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| quantify.run_space(&space).expect("runs"))
        });
    }
    group.finish();
}

fn bench_attribute_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantify/attributes");
    group.sample_size(20);
    let quantify = Quantify::new(FairnessCriterion::default());
    for attrs in [2usize, 4, 6, 8] {
        let space = synthetic_space(2_000, attrs, 3, 0.3, 7);
        group.bench_with_input(BenchmarkId::from_parameter(attrs), &attrs, |bencher, _| {
            bencher.iter(|| quantify.run_space(&space).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_population_scaling, bench_attribute_scaling);
criterion_main!(benches);
