//! Criterion benches for pairwise-EMD aggregation — the O(k²) step of
//! unfairness evaluation as the partition count k grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairank_core::emd::Emd;
use fairank_core::histogram::{Histogram, HistogramSpec};
use fairank_core::pairwise::{pairwise_distances, DistanceMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hists(k: usize) -> Vec<Histogram> {
    let spec = HistogramSpec::unit(10).expect("valid spec");
    let mut rng = StdRng::seed_from_u64(42);
    (0..k)
        .map(|_| Histogram::from_scores(spec, (0..100).map(|_| rng.gen_range(0.0..=1.0))))
        .collect()
}

fn bench_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise");
    for k in [4usize, 16, 64, 128] {
        let hs = hists(k);
        let emd = Emd::default();
        group.bench_with_input(BenchmarkId::new("distances", k), &k, |bencher, _| {
            bencher.iter(|| pairwise_distances(&hs, &emd).expect("computable"))
        });
        group.bench_with_input(BenchmarkId::new("matrix", k), &k, |bencher, _| {
            bencher.iter(|| DistanceMatrix::compute(&hs, &emd).expect("computable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairwise);
criterion_main!(benches);
