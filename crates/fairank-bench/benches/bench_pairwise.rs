//! Criterion benches for pairwise-EMD aggregation — the O(k²) step of
//! unfairness evaluation as the partition count k grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairank_core::emd::Emd;
use fairank_core::histogram::{Histogram, HistogramSpec};
use fairank_core::pairwise::{pairwise_distances, DistanceMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hists(k: usize) -> Vec<Histogram> {
    let spec = HistogramSpec::unit(10).expect("valid spec");
    let mut rng = StdRng::seed_from_u64(42);
    (0..k)
        .map(|_| Histogram::from_scores(spec, (0..100).map(|_| rng.gen_range(0.0..=1.0))))
        .collect()
}

fn bench_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise");
    for k in [4usize, 16, 64, 128] {
        let hs = hists(k);
        let emd = Emd::default();
        group.bench_with_input(BenchmarkId::new("distances", k), &k, |bencher, _| {
            bencher.iter(|| pairwise_distances(&hs, &emd).expect("computable"))
        });
        group.bench_with_input(BenchmarkId::new("matrix", k), &k, |bencher, _| {
            bencher.iter(|| DistanceMatrix::compute(&hs, &emd).expect("computable"))
        });
    }
    group.finish();
}

/// Repeated unfairness evaluation of the same partitioning: the naive
/// criterion rebuilds every histogram and EMD each time, while the split
/// engine serves everything from its caches after the first pass — the
/// access pattern of the beam/exhaustive searches and of interactive
/// re-quantification.
fn bench_unfairness_memo(c: &mut Criterion) {
    use fairank_bench::synthetic_space;
    use fairank_core::engine::SplitEngine;
    use fairank_core::fairness::FairnessCriterion;
    use fairank_core::partition::Partition;

    let mut group = c.benchmark_group("pairwise/unfairness");
    let space = synthetic_space(5_000, 1, 16, 0.3, 7);
    let partitions = Partition::root(&space).split(&space, 0);
    let criterion = FairnessCriterion::default();
    group.bench_function("naive", |bencher| {
        bencher.iter(|| {
            criterion
                .unfairness(&partitions, space.scores())
                .expect("computable")
        })
    });
    let mut engine = SplitEngine::new(&space, criterion);
    group.bench_function("engine-cached", |bencher| {
        bencher.iter(|| engine.unfairness(&partitions).expect("computable"))
    });
    group.finish();
}

criterion_group!(benches, bench_pairwise, bench_unfairness_memo);
criterion_main!(benches);
