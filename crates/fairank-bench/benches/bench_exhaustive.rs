//! Criterion benches for the exhaustive baseline — the cost side of
//! experiment E3 (greedy vs exact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairank_bench::synthetic_space;
use fairank_core::exhaustive::ExhaustiveSearch;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;

fn bench_exact_vs_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive");
    group.sample_size(10);
    for (attrs, card) in [(2usize, 2u32), (2, 3), (3, 2)] {
        let space = synthetic_space(150, attrs, card, 0.3, 42);
        let label = format!("{attrs}attrs_{card}vals");
        let exact = ExhaustiveSearch::new(FairnessCriterion::default()).without_dedupe();
        group.bench_with_input(
            BenchmarkId::new("exact", &label),
            &space,
            |bencher, space| bencher.iter(|| exact.run_space(space).expect("within budget")),
        );
        let greedy = Quantify::new(FairnessCriterion::default());
        group.bench_with_input(
            BenchmarkId::new("greedy", &label),
            &space,
            |bencher, space| bencher.iter(|| greedy.run_space(space).expect("runs")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_greedy);
criterion_main!(benches);
