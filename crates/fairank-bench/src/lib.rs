//! # fairank-bench
//!
//! The experiment harness: shared workload builders and table printing for
//! the `exp_*` binaries (one per paper artifact / derived experiment; see
//! DESIGN.md §5 and EXPERIMENTS.md) and the Criterion micro-benchmarks in
//! `benches/`.
//!
//! Run every experiment with:
//! ```text
//! for b in exp_table1 exp_figure2 exp_heuristic_vs_exhaustive exp_scalability \
//!          exp_transparency_data exp_transparency_function exp_aggregators \
//!          exp_job_owner_sweep exp_auditor exp_bins_ablation exp_emd_backends \
//!          exp_end_user; do cargo run -q --release -p fairank-bench --bin $b; done
//! ```

use fairank_core::space::{ProtectedAttribute, RankingSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Prints an experiment header in a uniform style.
pub fn header(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints one aligned table row from string cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// [`synthetic_space`] with per-attribute cardinalities — the realistic
/// marketplace shape where one wide attribute (region, task category)
/// coexists with narrow demographic ones. The score gap of `bias` attaches
/// to value 0 of attribute 0, as in the uniform builder.
pub fn synthetic_space_mixed(n: usize, cards: &[u32], bias: f64, seed: u64) -> RankingSpace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attributes = Vec::with_capacity(cards.len());
    let mut codes0 = Vec::new();
    for (a, &card) in cards.iter().enumerate() {
        let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..card)).collect();
        if a == 0 {
            codes0 = codes.clone();
        }
        attributes.push(ProtectedAttribute {
            name: format!("a{a}"),
            codes,
            labels: (0..card).map(|c| format!("v{c}")).collect(),
        });
    }
    let scores: Vec<f64> = (0..n)
        .map(|i| {
            let base: f64 = rng.gen_range(0.0..1.0 - bias);
            if codes0[i] == 0 {
                base
            } else {
                (base + bias).min(1.0)
            }
        })
        .collect();
    RankingSpace::new(attributes, scores).expect("synthetic space is valid")
}

/// A synthetic ranking space with controlled shape: `n` individuals,
/// `attrs` protected attributes of `cardinality` values each, and a score
/// gap of `bias` attached to value 0 of attribute 0 (so there is always a
/// planted most-unfair split to find).
pub fn synthetic_space(
    n: usize,
    attrs: usize,
    cardinality: u32,
    bias: f64,
    seed: u64,
) -> RankingSpace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attributes = Vec::with_capacity(attrs);
    let mut codes0 = Vec::new();
    for a in 0..attrs {
        let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..cardinality)).collect();
        if a == 0 {
            codes0 = codes.clone();
        }
        attributes.push(ProtectedAttribute {
            name: format!("a{a}"),
            codes,
            labels: (0..cardinality).map(|c| format!("v{c}")).collect(),
        });
    }
    let scores: Vec<f64> = (0..n)
        .map(|i| {
            let base: f64 = rng.gen_range(0.0..1.0 - bias);
            if codes0[i] == 0 {
                base
            } else {
                (base + bias).min(1.0)
            }
        })
        .collect();
    RankingSpace::new(attributes, scores).expect("synthetic space is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_space_shape() {
        let s = synthetic_space(100, 3, 4, 0.3, 1);
        assert_eq!(s.num_individuals(), 100);
        assert_eq!(s.attributes().len(), 3);
        assert_eq!(s.attributes()[1].cardinality(), 4);
    }

    #[test]
    fn synthetic_space_is_deterministic() {
        let a = synthetic_space(50, 2, 3, 0.2, 9);
        let b = synthetic_space(50, 2, 3, 0.2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn planted_bias_separates_attribute_zero() {
        let s = synthetic_space(400, 2, 2, 0.5, 4);
        let attr0 = &s.attributes()[0];
        let (mut sum0, mut n0, mut sum1, mut n1) = (0.0, 0, 0.0, 0);
        for (i, &c) in attr0.codes.iter().enumerate() {
            if c == 0 {
                sum0 += s.scores()[i];
                n0 += 1;
            } else {
                sum1 += s.scores()[i];
                n1 += 1;
            }
        }
        let gap = sum1 / n1 as f64 - sum0 / n0 as f64;
        assert!(gap > 0.3, "gap = {gap}");
    }
}
