//! E5 — data transparency: fairness quantification on k-anonymized
//! attributes (the paper's ARX integration), sweeping k for both Mondrian
//! and Datafly, with information-loss metrics alongside the fairness
//! signal.

use fairank_bench::{header, row};
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;
use fairank_core::scoring::{LinearScoring, ScoreSource};
use fairank_anonymize::loss::{average_class_ratio, discernibility};
use fairank_anonymize::{datafly, mondrian, DataflyConfig, MondrianConfig};
use fairank_data::synth::biased_crowdsourcing_spec;

const QIS: [&str; 5] = ["gender", "country", "birth_decade", "language", "ethnicity"];

fn main() {
    header("E5", "fairness under k-anonymized data (ARX substitute)");
    let dataset = biased_crowdsourcing_spec(600, 42).generate().expect("generates");
    let scoring = LinearScoring::builder()
        .weight("rating", 0.7)
        .weight("language_test", 0.3)
        .build(&dataset)
        .expect("skills exist");
    let source = ScoreSource::Function(scoring);
    let quantify = Quantify::new(FairnessCriterion::default());

    let baseline = quantify.run(&dataset, &source).expect("runs");
    println!(
        "baseline (raw attributes): unfairness {:.4}, {} partitions\n",
        baseline.unfairness,
        baseline.partitions.len()
    );

    let widths = [9, 4, 12, 7, 10, 12, 9];
    row(
        &[
            "method".into(),
            "k".into(),
            "unfairness".into(),
            "parts".into(),
            "rows".into(),
            "discern.".into(),
            "C_avg".into(),
        ],
        &widths,
    );
    for &k in &[2usize, 5, 10, 25, 50] {
        let anon = mondrian(&dataset, &QIS, MondrianConfig { k })
            .expect("anonymizes")
            .dataset;
        let outcome = quantify.run(&anon, &source).expect("runs");
        row(
            &[
                "mondrian".into(),
                format!("{k}"),
                format!("{:.4}", outcome.unfairness),
                format!("{}", outcome.partitions.len()),
                format!("{}", anon.num_rows()),
                format!("{}", discernibility(&anon, &QIS, 0).expect("computable")),
                format!("{:.2}", average_class_ratio(&anon, &QIS, k).expect("computable")),
            ],
            &widths,
        );
    }
    println!();
    for &k in &[2usize, 5, 10] {
        let out = datafly(
            &dataset,
            &QIS,
            &[],
            DataflyConfig {
                k,
                max_suppression: 0.05,
            },
        )
        .expect("anonymizes");
        let outcome = quantify.run(&out.dataset, &source).expect("runs");
        row(
            &[
                "datafly".into(),
                format!("{k}"),
                format!("{:.4}", outcome.unfairness),
                format!("{}", outcome.partitions.len()),
                format!("{}", out.dataset.num_rows()),
                format!(
                    "{}",
                    discernibility(&out.dataset, &QIS, out.suppressed).expect("computable")
                ),
                format!(
                    "{:.2}",
                    average_class_ratio(&out.dataset, &QIS, k).expect("computable")
                ),
            ],
            &widths,
        );
    }
    println!(
        "\nRESULT: unfairness stays detectable under anonymization but the \
         partitioning coarsens with k — the interplay between data \
         transparency and fairness quantification the demo explores."
    );
}
