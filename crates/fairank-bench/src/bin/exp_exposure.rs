//! E15 — extension: exposure disparity vs EMD unfairness.
//!
//! The paper cites fairness-of-exposure work (Singh & Joachims; Biega et
//! al.) as alternative fairness notions its generic framework could host.
//! For every job of the TaskRabbit-like marketplace and every single
//! protected attribute, this experiment computes the EMD between the
//! attribute's group score histograms *and* the position-discounted
//! exposure disparity of the same groups, then compares the worst-attribute
//! values per job. Like-for-like partitionings make the two notions
//! directly comparable (the adaptive most-unfair partitioning fragments
//! into tiny groups whose mean exposure is noisy).

use fairank_bench::{header, row};
use fairank_core::exposure::{exposure_disparity, exposures_from_scores};
use fairank_core::fairness::{Aggregator, FairnessCriterion};
use fairank_core::partition::Partition;
use fairank_core::scoring::ScoreSource;
use fairank_marketplace::scenario::taskrabbit_like;

fn main() {
    header(
        "E15",
        "EMD unfairness vs exposure disparity (worst single attribute per job)",
    );
    let market = taskrabbit_like(400, 42).expect("builds");
    let criterion = FairnessCriterion::default();

    let widths = [16, 12, 14, 14, 14];
    row(
        &[
            "job".into(),
            "EMD u".into(),
            "worst attr".into(),
            "exposure gap".into(),
            "worst attr".into(),
        ],
        &widths,
    );
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for job in market.jobs() {
        let source = ScoreSource::Function(job.scoring.clone());
        let space = market.workers().to_space(&source).expect("space builds");
        let scores = space.scores();
        let exposure = exposures_from_scores(scores).expect("valid ranking");
        let root = Partition::root(&space);

        let mut worst_emd: (f64, String) = (0.0, "-".into());
        let mut worst_exp: (f64, String) = (0.0, "-".into());
        for (idx, attr) in space.attributes().iter().enumerate() {
            let parts = root.split(&space, idx);
            if parts.len() < 2 {
                continue;
            }
            let u = criterion.unfairness(&parts, scores).expect("computable");
            if u > worst_emd.0 {
                worst_emd = (u, attr.name.clone());
            }
            let gap = exposure_disparity(&parts, &exposure, Aggregator::Mean);
            if gap > worst_exp.0 {
                worst_exp = (gap, attr.name.clone());
            }
        }
        pairs.push((worst_emd.0, worst_exp.0));
        row(
            &[
                job.id.clone(),
                format!("{:.4}", worst_emd.0),
                worst_emd.1,
                format!("{:.4}", worst_exp.0),
                worst_exp.1,
            ],
            &widths,
        );
    }

    // Spearman rank correlation between the per-job worst values.
    let rank = |values: &[f64]| -> Vec<f64> {
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
        let mut ranks = vec![0.0; values.len()];
        for (r, &i) in order.iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let (us, gaps): (Vec<f64>, Vec<f64>) = pairs.iter().copied().unzip();
    let (ru, rg) = (rank(&us), rank(&gaps));
    let n = ru.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let cov: f64 = ru
        .iter()
        .zip(&rg)
        .map(|(a, b)| (a - mean) * (b - mean))
        .sum();
    let var: f64 = ru.iter().map(|a| (a - mean).powi(2)).sum();
    let spearman = if var > 0.0 { cov / var } else { 1.0 };
    println!("\nSpearman rank correlation (worst EMD vs worst exposure gap): {spearman:.3}");
    println!(
        "RESULT: on matched (single-attribute) partitionings the two notions \
         usually indict the same attribute and correlate positively across \
         jobs, while measuring different harms — score-distribution gaps vs \
         who actually gets seen. On the *adaptive* most-unfair partitioning \
         they diverge (tiny groups make mean exposure noisy), which is \
         itself a reason FaiRank-style tools should report both."
    );
}
