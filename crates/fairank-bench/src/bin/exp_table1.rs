//! E1 — Table 1: reproduce the published example dataset and its `f(w)`
//! score column exactly.
//!
//! The paper prints 10 individuals with protected attributes, observed
//! skills, and the scores of a function `f`. Solving the published rows
//! recovers `f = 0.3 · language_test + 0.7 · rating`; this binary prints
//! the full table and verifies every score to 1e-9.

use fairank_bench::header;
use fairank_core::scoring::ScoreSource;
use fairank_data::paper;

fn main() {
    header("E1 / Table 1", "example dataset and scoring function");
    let dataset = paper::table1_dataset();
    println!("{}", dataset.render_head(10));

    let scores = ScoreSource::Function(paper::table1_scoring())
        .resolve(&dataset)
        .expect("scoring resolves");

    println!("{:<6} {:>10} {:>10} {:>9}", "id", "computed", "published", "|delta|");
    let mut max_delta = 0.0f64;
    for (i, (got, want)) in scores.iter().zip(paper::TABLE1_FW).enumerate() {
        let delta = (got - want).abs();
        max_delta = max_delta.max(delta);
        println!("w{:<5} {:>10.3} {:>10.3} {:>9.1e}", i + 1, got, want, delta);
    }
    println!("\nmax |computed − published| = {max_delta:.2e}");
    assert!(max_delta < 1e-9, "Table 1 reproduction failed");
    println!("RESULT: exact reproduction (f = 0.3·language_test + 0.7·rating)");
}
