//! E6 — process transparency: when the scoring function is hidden,
//! histograms are built over ranks. Compares score- vs rank-based
//! quantification on the same population: unfairness values, first split
//! attribute agreement, and partition counts.

use fairank_bench::{header, row};
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;
use fairank_core::scoring::{scores_to_ranking, LinearScoring, ScoreSource};
use fairank_data::synth::biased_crowdsourcing_spec;

fn main() {
    header("E6", "score-based vs rank-based histograms (function opacity)");
    let widths = [7, 14, 14, 12, 12];
    row(
        &[
            "seed".into(),
            "u (scores)".into(),
            "u (ranks)".into(),
            "split same".into(),
            "parts s/r".into(),
        ],
        &widths,
    );
    let quantify = Quantify::new(FairnessCriterion::default());
    let mut agreements = 0usize;
    const RUNS: usize = 8;
    for seed in 0..RUNS as u64 {
        let dataset = biased_crowdsourcing_spec(400, seed).generate().expect("generates");
        let scoring = LinearScoring::builder()
            .weight("rating", 1.0)
            .build(&dataset)
            .expect("rating exists");
        let source = ScoreSource::Function(scoring);
        let transparent = quantify.run(&dataset, &source).expect("runs");
        let scores = source.resolve(&dataset).expect("resolves");
        let ranking = ScoreSource::Ranking(scores_to_ranking(&scores));
        let opaque = quantify.run(&dataset, &ranking).expect("runs");

        let space = dataset.to_space(&source).expect("space");
        let split_name = |o: &fairank_core::quantify::QuantifyOutcome| {
            o.tree
                .node(o.tree.root())
                .split_attr
                .and_then(|a| space.attribute(a))
                .map(|a| a.name.clone())
                .unwrap_or_else(|| "-".into())
        };
        let same = split_name(&transparent) == split_name(&opaque);
        agreements += usize::from(same);
        row(
            &[
                format!("{seed}"),
                format!("{:.4}", transparent.unfairness),
                format!("{:.4}", opaque.unfairness),
                format!("{same}"),
                format!("{}/{}", transparent.partitions.len(), opaque.partitions.len()),
            ],
            &widths,
        );
    }
    println!(
        "\nfirst-split agreement: {agreements}/{RUNS} runs\n\
         RESULT: rank histograms rescale unfairness (uniform rank mass vs \
         skewed score mass) but identify the same biased attribute in most \
         runs — quantification survives function opacity."
    );
}
