//! E4 — §1 claim: "interactive response time".
//!
//! Measures QUANTIFY wall time while sweeping the population size and the
//! number of protected attributes. The paper's interactivity claim holds
//! if latencies stay in the milliseconds at demo scale (hundreds to tens of
//! thousands of individuals).

use std::time::Instant;

use fairank_bench::{header, row, synthetic_space};
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;

fn timed_quantify(n: usize, attrs: usize, card: u32) -> (f64, usize) {
    let space = synthetic_space(n, attrs, card, 0.3, 7);
    let quantify = Quantify::new(FairnessCriterion::default());
    // Warm once, then take the best of 3 (interactive latency, not
    // throughput).
    quantify.run_space(&space).expect("runs");
    let mut best = f64::INFINITY;
    let mut partitions = 0;
    for _ in 0..3 {
        let t = Instant::now();
        let outcome = quantify.run_space(&space).expect("runs");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        partitions = outcome.partitions.len();
    }
    (best, partitions)
}

fn main() {
    header("E4", "QUANTIFY latency vs population size and attribute count");
    let widths = [8, 6, 6, 12, 10];
    row(
        &[
            "n".into(),
            "attrs".into(),
            "card".into(),
            "latency ms".into(),
            "parts".into(),
        ],
        &widths,
    );
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let (ms, parts) = timed_quantify(n, 4, 3);
        row(
            &[
                format!("{n}"),
                "4".into(),
                "3".into(),
                format!("{ms:.2}"),
                format!("{parts}"),
            ],
            &widths,
        );
    }
    println!();
    for &attrs in &[2usize, 4, 6, 8] {
        let (ms, parts) = timed_quantify(5_000, attrs, 3);
        row(
            &[
                "5000".into(),
                format!("{attrs}"),
                "3".into(),
                format!("{ms:.2}"),
                format!("{parts}"),
            ],
            &widths,
        );
    }
    println!(
        "\nRESULT: latency grows roughly linearly in n and with the split \
         fan-out in attrs; demo-scale inputs stay interactive (≪ 1 s)."
    );
}
