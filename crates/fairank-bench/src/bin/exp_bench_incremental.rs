//! BENCH — incremental delta re-quantify vs. full recompute.
//!
//! Streams segment-local churn rounds through a [`DeltaEngine`] on the
//! tracked 10k / 8-attribute reference shape (one wide region-like
//! attribute of cardinality 12 plus seven narrow demographic ones, the
//! same mixed profile real marketplaces show), times each delta
//! re-quantify against a from-scratch `Quantify` over the identical
//! mutated space, verifies the two agree bit-for-bit every round under
//! every EMD backend, and emits `BENCH_incremental.json` with p50/p99
//! latencies and the delta-vs-full speedup so the trajectory is
//! comparable across PRs.
//!
//! The churn model mirrors the marketplace stream subsystem
//! (`fairank-marketplace::stream`): each round, 1% of the catalog churns
//! inside one randomly chosen audited segment — a burst of rating
//! feedback (the stream's boost/decay drift), donor-cloned arrivals, and
//! departures, population held constant. Bursts cluster by segment in a
//! live marketplace (one task category's ratings land together), which is
//! exactly the locality the dirty-path propagation is designed for; the
//! differential suite separately pins bitwise identity under adversarial
//! *uniform* churn.
//!
//! Usage: `exp_bench_incremental [--smoke] [--out PATH]`
//!
//! `--smoke` (or `FAIRANK_BENCH_SMOKE=1`) shrinks the shape and round
//! count so CI can run the emitter in seconds and upload the JSON as an
//! artifact. The absolute in-binary floor (tracked backend must stay
//! ≥3× full recompute) is deliberately conservative so machine noise
//! never trips it; the committed baseline records the real ≥5× number
//! and CI's relative gate catches regressions against it (on the p50
//! speedup — the p99 ratio is a tail-vs-tail quotient and swings ±40%
//! run to run, too wide for a tight relative gate).
//!
//! The ratio scales with how much surviving structure each round reuses:
//! coarser audits (higher `min_partition_size`, fewer segments to
//! rebuild) widen it, finer ones narrow it — at min_partition 250 on
//! this shape (30 segments) the delta path still wins by ~4.5–5×.

use std::time::Instant;

use fairank_bench::{header, row, synthetic_space_mixed};
use fairank_core::emd::{Emd, EmdBackendKind};
use fairank_core::fairness::FairnessCriterion;
use fairank_core::incremental::DeltaEngine;
use fairank_core::partition::Partition;
use fairank_core::quantify::Quantify;
use fairank_core::space::{RankingSpace, SpaceDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One backend's churn trajectory.
#[derive(Debug, Serialize)]
struct BenchRecord {
    backend: String,
    /// The headline claim is made on this record (the default backend);
    /// the others pin bitwise identity and document their own ratios.
    tracked: bool,
    n: u64,
    attrs: u64,
    /// Per-attribute cardinalities of the mixed reference shape.
    cardinalities: Vec<u64>,
    min_partition_size: u64,
    rounds: u64,
    /// Mutation ops per round (half rating-drift rescores, a quarter
    /// arrivals, a quarter departures — population stays constant).
    churn_per_round: u64,
    delta_p50_us: f64,
    delta_p99_us: f64,
    full_p50_us: f64,
    full_p99_us: f64,
    /// `full_p50_us / delta_p50_us`.
    speedup_p50: f64,
    /// `full_p99_us / delta_p99_us` — the gated number.
    speedup_p99: f64,
    /// Summed over all rounds.
    reused_histograms: u64,
    invalidated_emds: u64,
}

/// The emitted report.
#[derive(Debug, Serialize)]
struct BenchReport {
    experiment: String,
    smoke: bool,
    records: Vec<BenchRecord>,
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One segment-local churn batch: all ops target members of one randomly
/// chosen partition of the latest audit. Rescores follow the stream
/// subsystem's feedback drift (boost toward 1 on a "hire", slight decay
/// otherwise); arrivals clone a random member's profile with jittered
/// score; departures remove members. Population stays constant.
fn churn_batch(
    rng: &mut StdRng,
    space: &RankingSpace,
    segments: &[Partition],
    ops: usize,
) -> SpaceDelta {
    let segment = &segments[rng.gen_range(0..segments.len())];
    let members = &segment.rows;
    let scores = space.scores();
    let attrs = space.attributes();
    let mut delta = SpaceDelta::new();
    for _ in 0..ops / 2 {
        let role = members[rng.gen_range(0..members.len())];
        let old = scores[role as usize];
        let new = if rng.gen_bool(0.5) {
            (old + 0.05 * (1.0 - old)).clamp(0.0, 1.0)
        } else {
            (old * 0.98).clamp(0.0, 1.0)
        };
        delta = delta.rescore(role, new);
    }
    for _ in 0..ops / 4 {
        let donor = members[rng.gen_range(0..members.len())] as usize;
        let labels: Vec<String> = attrs
            .iter()
            .map(|a| a.labels[a.codes[donor] as usize].clone())
            .collect();
        let jitter: f64 = rng.gen_range(-0.05f64..0.05);
        delta = delta.insert(labels, (scores[donor] + jitter).clamp(0.0, 1.0));
        // The arrival above keeps the departure from ever emptying the
        // segment; indices into `members` stay valid because the batch
        // applies removals against the grown space.
        delta = delta.remove(members[rng.gen_range(0..members.len())]);
    }
    delta
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("FAIRANK_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_incremental.json")
        .to_string();

    // (n, cardinalities, min partition size, churn rounds)
    let (n, cards, min_part, rounds) = if smoke {
        (600, vec![4u32, 3, 3, 2], 5, 6)
    } else {
        (10_000, vec![12u32, 3, 3, 3, 3, 3, 3, 3], 300, 300)
    };
    let churn = (n / 100).max(4); // 1% of rows per round

    header(
        "BENCH",
        "incremental delta re-quantify vs. full recompute (emits BENCH_incremental.json)",
    );
    println!(
        "shape: n={n} cards={cards:?} min_partition={min_part} \
         rounds={rounds} churn/round={churn} (segment-local, stream-model drift)"
    );
    let widths = [10, 12, 12, 12, 12, 9, 9];
    row(
        &[
            "backend".into(),
            "delta p50".into(),
            "delta p99".into(),
            "full p50".into(),
            "full p99".into(),
            "x p50".into(),
            "x p99".into(),
        ],
        &widths,
    );

    let mut records = Vec::new();
    for backend in EmdBackendKind::all() {
        let criterion = FairnessCriterion::default().with_emd(Emd::new(backend));
        let search = Quantify::new(criterion).with_min_partition_size(min_part);
        let space = synthetic_space_mixed(n, &cards, 0.3, 7);
        let mut engine = DeltaEngine::new(space, search.clone()).expect("space is non-empty");
        let mut outcome = engine.requantify().expect("warm build succeeds");

        // Identical churn sequence for every backend: same seed, and the
        // spaces evolve identically (the partitioning is bit-identical
        // across backends only in structure-relevant decisions for this
        // planted shape), so latencies are comparable.
        let mut rng = StdRng::seed_from_u64(11);
        let mut delta_us = Vec::with_capacity(rounds);
        let mut full_us = Vec::with_capacity(rounds);
        let (mut reused, mut invalidated) = (0u64, 0u64);
        for _ in 0..rounds {
            let batch = churn_batch(&mut rng, engine.space(), &outcome.partitions, churn);
            engine.apply(&batch).expect("churn batch applies");

            let t = Instant::now();
            outcome = engine.requantify().expect("delta re-quantify succeeds");
            delta_us.push(t.elapsed().as_secs_f64() * 1e6);

            let t = Instant::now();
            let full = search.run_space(engine.space()).expect("full recompute succeeds");
            full_us.push(t.elapsed().as_secs_f64() * 1e6);

            assert_eq!(
                outcome.unfairness.to_bits(),
                full.unfairness.to_bits(),
                "{backend:?}: delta and full recompute must agree bit-for-bit"
            );
            assert_eq!(outcome.partitions, full.partitions, "{backend:?}");
            assert!(
                outcome.stats.emd_calls <= full.stats.emd_calls,
                "{backend:?}: delta evaluated {} EMDs, full {}",
                outcome.stats.emd_calls,
                full.stats.emd_calls
            );
            reused += outcome.stats.delta_reused_histograms as u64;
            invalidated += outcome.stats.delta_invalidated_emds as u64;
        }

        let rec = BenchRecord {
            backend: backend.name().to_string(),
            tracked: backend == EmdBackendKind::default(),
            n: n as u64,
            attrs: cards.len() as u64,
            cardinalities: cards.iter().map(|&c| c as u64).collect(),
            min_partition_size: min_part as u64,
            rounds: rounds as u64,
            churn_per_round: churn as u64,
            delta_p50_us: percentile(&delta_us, 50.0),
            delta_p99_us: percentile(&delta_us, 99.0),
            full_p50_us: percentile(&full_us, 50.0),
            full_p99_us: percentile(&full_us, 99.0),
            speedup_p50: percentile(&full_us, 50.0) / percentile(&delta_us, 50.0),
            speedup_p99: percentile(&full_us, 99.0) / percentile(&delta_us, 99.0),
            reused_histograms: reused,
            invalidated_emds: invalidated,
        };
        row(
            &[
                rec.backend.clone(),
                format!("{:.0} µs", rec.delta_p50_us),
                format!("{:.0} µs", rec.delta_p99_us),
                format!("{:.0} µs", rec.full_p50_us),
                format!("{:.0} µs", rec.full_p99_us),
                format!("{:.1}x", rec.speedup_p50),
                format!("{:.1}x", rec.speedup_p99),
            ],
            &widths,
        );
        records.push(rec);
    }

    if !smoke {
        let tracked = records
            .iter()
            .find(|r| r.tracked)
            .expect("the default backend is always benched");
        assert!(
            tracked.speedup_p99 >= 3.0 && tracked.speedup_p50 >= 3.0,
            "{}: delta re-quantify is only {:.2}x (p50) / {:.2}x (p99) faster than \
             full — below the conservative 3x floor the tracked shape must never \
             drop under (committed baseline demonstrates the 5x target)",
            tracked.backend,
            tracked.speedup_p50,
            tracked.speedup_p99
        );
    }

    let report = BenchReport {
        experiment: "bench_incremental".to_string(),
        smoke,
        records,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("report is writable");
    println!(
        "\nRESULT: every round bit-identical to a full recompute under all \
         four backends; delta re-quantify reuses the surviving caches. \
         Wrote {out_path}."
    );
}
