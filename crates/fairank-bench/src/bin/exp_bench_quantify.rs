//! BENCH — the QUANTIFY perf trajectory, machine-readable.
//!
//! Runs the split-engine and naive evaluations head-to-head on the tracked
//! reference configurations (population × attribute sweeps around the
//! 10k / 8-attribute point), verifies they agree bit-for-bit, and emits
//! `BENCH_quantify.json` with wall-clock times and `SearchStats` work
//! counters so the perf trajectory is comparable across PRs.
//!
//! Usage: `exp_bench_quantify [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks the configurations so CI can run the emitter in
//! seconds and upload the JSON as an artifact.

use std::time::Instant;

use fairank_bench::{header, row, synthetic_space};
use fairank_core::emd::{Emd, EmdBackendKind};
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::{Quantify, QuantifyOutcome};
use fairank_core::space::RankingSpace;
use serde::Serialize;

/// One (configuration, evaluation mode) measurement.
#[derive(Debug, Serialize)]
struct BenchRecord {
    n: u64,
    attrs: u64,
    cardinality: u64,
    /// `"engine"` (default backend), `"kernel"`, or `"naive"`.
    mode: String,
    /// Best-of-3 wall-clock milliseconds.
    wall_ms: f64,
    partitions: u64,
    unfairness: f64,
    nodes_evaluated: u64,
    candidate_splits: u64,
    splits_performed: u64,
    histograms_built: u64,
    emd_calls: u64,
    emd_cache_hits: u64,
    pairwise_batches: u64,
}

/// The emitted report.
#[derive(Debug, Serialize)]
struct BenchReport {
    experiment: String,
    smoke: bool,
    records: Vec<BenchRecord>,
}

fn measure(quantify: &Quantify, space: &RankingSpace) -> (f64, QuantifyOutcome) {
    // Warm once, then best-of-3: this tracks interactive latency.
    let mut outcome = quantify.run_space(space).expect("quantify runs");
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        outcome = quantify.run_space(space).expect("quantify runs");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, outcome)
}

fn record(n: usize, attrs: usize, card: u32, mode: &str, ms: f64, o: &QuantifyOutcome) -> BenchRecord {
    BenchRecord {
        n: n as u64,
        attrs: attrs as u64,
        cardinality: card as u64,
        mode: mode.to_string(),
        wall_ms: ms,
        partitions: o.partitions.len() as u64,
        unfairness: o.unfairness,
        nodes_evaluated: o.stats.nodes_evaluated as u64,
        candidate_splits: o.stats.candidate_splits as u64,
        splits_performed: o.stats.splits_performed as u64,
        histograms_built: o.stats.histograms_built as u64,
        emd_calls: o.stats.emd_calls as u64,
        emd_cache_hits: o.stats.emd_cache_hits as u64,
        pairwise_batches: o.stats.pairwise_batches as u64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_quantify.json")
        .to_string();

    let configs: &[(usize, usize, u32)] = if smoke {
        &[(200, 3, 3), (500, 4, 3)]
    } else {
        &[(1_000, 4, 3), (10_000, 4, 3), (10_000, 8, 3)]
    };

    header(
        "BENCH",
        "QUANTIFY split engine vs. naive evaluation (emits BENCH_quantify.json)",
    );
    let widths = [8, 6, 8, 12, 12, 11, 11, 11];
    row(
        &[
            "n".into(),
            "attrs".into(),
            "mode".into(),
            "wall ms".into(),
            "histograms".into(),
            "EMD calls".into(),
            "cache hits".into(),
            "unfairness".into(),
        ],
        &widths,
    );

    let engine = Quantify::new(FairnessCriterion::default());
    let kernel = Quantify::new(
        FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Kernel)),
    );
    let naive = Quantify::new(FairnessCriterion::default()).with_naive_evaluation();
    let mut records = Vec::new();
    for &(n, attrs, card) in configs {
        let space = synthetic_space(n, attrs, card, 0.3, 7);
        let (engine_ms, engine_out) = measure(&engine, &space);
        let (kernel_ms, kernel_out) = measure(&kernel, &space);
        let (naive_ms, naive_out) = measure(&naive, &space);
        assert_eq!(
            engine_out.unfairness, naive_out.unfairness,
            "engine and naive evaluations must agree bit-for-bit"
        );
        assert_eq!(
            engine_out.unfairness, kernel_out.unfairness,
            "the kernel backend must agree bit-for-bit with the default engine"
        );
        assert_eq!(engine_out.partitions, naive_out.partitions);
        assert_eq!(engine_out.partitions, kernel_out.partitions);
        for (mode, ms, o) in [
            ("engine", engine_ms, &engine_out),
            ("kernel", kernel_ms, &kernel_out),
            ("naive", naive_ms, &naive_out),
        ] {
            row(
                &[
                    format!("{n}"),
                    format!("{attrs}"),
                    mode.into(),
                    format!("{ms:.2}"),
                    format!("{}", o.stats.histograms_built),
                    format!("{}", o.stats.emd_calls),
                    format!("{}", o.stats.emd_cache_hits),
                    format!("{:.4}", o.unfairness),
                ],
                &widths,
            );
            records.push(record(n, attrs, card, mode, ms, o));
        }
    }

    let report = BenchReport {
        experiment: "bench_quantify".to_string(),
        smoke,
        records,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("report is writable");
    println!(
        "\nRESULT: identical search results; the engine spends a fraction of \
         the naive histogram/EMD work. Wrote {out_path}."
    );
}
