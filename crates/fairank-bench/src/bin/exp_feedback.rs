//! E14 — extension: ranking feedback dynamics.
//!
//! Simulates the hire-and-rate loop on the biased rating-only job of the
//! TaskRabbit-like marketplace: each round the top-k ranked workers are
//! hired and their ratings drift upward. Prints the series a
//! fairness-over-time figure would plot: adaptive unfairness, the fixed
//! gender gap, mean rating and rating concentration (Gini).

use fairank_bench::{header, row};
use fairank_core::fairness::FairnessCriterion;
use fairank_marketplace::dynamics::{simulate_feedback, FeedbackConfig};
use fairank_marketplace::scenario::taskrabbit_like;

fn main() {
    header("E14", "ranking feedback loop: unfairness amplification");
    let market = taskrabbit_like(300, 42).expect("builds");
    let outcome = simulate_feedback(
        &market,
        "rated-anything",
        "rating",
        "gender",
        &FairnessCriterion::default(),
        FeedbackConfig {
            rounds: 16,
            top_k: 30,
            boost: 0.10,
            decay: 0.02,
            ..Default::default()
        },
    )
    .expect("simulates");

    let widths = [6, 12, 12, 12, 10];
    row(
        &[
            "round".into(),
            "unfairness".into(),
            "gender gap".into(),
            "mean rating".into(),
            "gini".into(),
        ],
        &widths,
    );
    for r in &outcome.rounds {
        row(
            &[
                format!("{}", r.round),
                format!("{:.4}", r.unfairness),
                format!("{:.4}", r.tracked_gap),
                format!("{:.4}", r.mean_rating),
                format!("{:.4}", r.rating_gini),
            ],
            &widths,
        );
    }
    let first = &outcome.rounds[0];
    let last = outcome.rounds.last().expect("non-empty");
    println!(
        "\nRESULT: the rich-get-richer loop widens the injected gender gap \
         ({:.4} → {:.4}, {:+.0}%) and concentrates rating mass (gini {:.3} → \
         {:.3}) — repeated ranking amplifies the bias FaiRank quantifies, \
         which is why continuous auditing (the AUDITOR scenario) matters.",
        first.tracked_gap,
        last.tracked_gap,
        (last.tracked_gap / first.tracked_gap - 1.0) * 100.0,
        first.rating_gini,
        last.rating_gini,
    );
}
