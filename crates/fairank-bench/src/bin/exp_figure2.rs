//! E2 — Figure 2: the example partitioning {Male-English, Male-Indian,
//! Male-Other, Female}, its per-partition histograms, the pairwise EMD
//! matrix and the average pairwise unfairness; then what QUANTIFY finds on
//! the same input.

use fairank_bench::header;
use fairank_core::emd::Emd;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::histogram::HistogramSpec;
use fairank_core::pairwise::DistanceMatrix;
use fairank_core::quantify::Quantify;
use fairank_data::paper;

fn main() {
    header("E2 / Figure 2", "example partitioning and its unfairness");
    let space = paper::table1_space().expect("table 1 space");

    // Figure 2 draws 5-bin histograms; show both 5 (paper) and the default.
    for bins in [5, 10] {
        let criterion = FairnessCriterion::default()
            .with_hist(HistogramSpec::unit(bins).expect("valid spec"));
        let parts = paper::figure2_partitioning(&space);
        println!("--- {bins}-bin histograms ---");
        let hists: Vec<_> = parts
            .iter()
            .map(|p| criterion.histogram(p, space.scores()))
            .collect();
        for (p, h) in parts.iter().zip(&hists) {
            println!(
                "{:<44} n={}  {:?}",
                p.label(&space),
                p.len(),
                h.counts()
            );
        }
        let m = DistanceMatrix::compute(&hists, &Emd::default()).expect("computable");
        println!("pairwise EMDs: {:?}",
            m.distances().iter().map(|d| (d * 1000.0).round() / 1000.0).collect::<Vec<_>>());
        let u = criterion.unfairness(&parts, space.scores()).expect("computable");
        println!("unfairness(Figure 2) = {u:.4}\n");
    }

    let criterion = FairnessCriterion::default();
    let outcome = Quantify::new(criterion).run_space(&space).expect("runs");
    println!(
        "QUANTIFY (most-unfair, mean): {} partitions, unfairness = {:.4}",
        outcome.partitions.len(),
        outcome.unfairness
    );
    let figure2 = paper::figure2_unfairness(&criterion).expect("computable");
    println!(
        "RESULT: greedy optimum {:.4} ≥ Figure 2 partitioning {:.4} — \
         the published example is a feasible (non-optimal) point of the search space",
        outcome.unfairness, figure2
    );
}
