//! E12 — END-USER scenario: a group's standing across every job of a
//! marketplace ("see how well the marketplace is treating that group and
//! make an informed decision of whether to target that job or not").

use fairank_bench::header;
use fairank_core::fairness::FairnessCriterion;
use fairank_data::filter::Filter;
use fairank_marketplace::scenario::taskrabbit_like;
use fairank_session::report::end_user_report;

fn main() {
    header("E12", "end-user cross-job view for three demographic groups");
    let market = taskrabbit_like(400, 42).expect("builds");
    let criterion = FairnessCriterion::default();

    for group_expr in [
        "gender=Female",
        "ethnicity=African-American",
        "gender=Male & ethnicity=White",
    ] {
        let group = Filter::parse(group_expr).expect("parses");
        let report = end_user_report(&market, &group, &criterion).expect("reports");
        print!("{}", report.render());
        let best = &report.rows[0];
        let worst = report.rows.last().expect("non-empty");
        println!(
            "→ target {:?} ({:.0}th pct), avoid {:?} ({:.0}th pct)\n",
            best.title,
            best.group_mean_percentile * 100.0,
            worst.title,
            worst.group_mean_percentile * 100.0
        );
    }
    println!(
        "RESULT: penalized groups sit below the 50th percentile on the \
         rating-heavy jobs and closer to parity on skill-specific ones; the \
         advantaged group shows the mirror image — the informed-decision \
         outcome the scenario demonstrates."
    );
}
