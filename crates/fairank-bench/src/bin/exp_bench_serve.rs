//! BENCH — event-loop serving tier under concurrent-connection load.
//!
//! Three claims of the readiness-based server are measured and gated:
//!
//! 1. **Connection scale** — one event-loop thread (plus the dispatcher
//!    pool) sustains ≥1k *simultaneously open, actively used* client
//!    connections without per-connection threads, with bounded p99
//!    request latency.
//! 2. **Reply integrity** — across the whole load run, zero malformed
//!    reply lines and zero dropped replies: every request gets exactly
//!    one well-formed terminal reply.
//! 3. **Wire equivalence** — a scripted session (commands, a quantify,
//!    plain and streamed scenario grids) answers bit-identically on the
//!    event loop and on the legacy thread-per-connection baseline, once
//!    wall-clock fields are normalized.
//!
//! Usage: `exp_bench_serve [--smoke] [--out PATH]`
//!
//! `--smoke` (or `FAIRANK_BENCH_SMOKE=1`) shrinks the connection count so
//! CI can run the emitter in seconds and upload the JSON as an artifact.
//! The 1k-connection floor and the latency bound are asserted only at the
//! full shape; integrity and equivalence are deterministic and asserted
//! at both shapes. The committed `BENCH_serve.json` records the real
//! numbers and CI's relative gate catches regressions against it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use fairank_bench::{header, row};
use fairank_service::{Request, Server, ServerConfig, ServerHandle};
use serde::value::Value;
use serde::Serialize;

/// The emitted measurements.
#[derive(Debug, Serialize)]
struct BenchReport {
    experiment: String,
    smoke: bool,
    /// Simultaneously open client connections during the load phase.
    connections: u64,
    /// Request rounds over every connection (after one warmup round).
    rounds: u64,
    /// Total requests sent during the measured load phase.
    requests_total: u64,
    /// Worker threads and event-loop dispatcher threads serving the load.
    workers: u64,
    dispatchers: u64,
    /// Measured load-phase throughput, replies per second.
    throughput_rps: f64,
    /// Request latency percentiles over the load phase, milliseconds.
    /// Requests are pipelined per client thread, so tail latencies
    /// include queue wait — the operationally honest number.
    latency_p50_ms: f64,
    latency_p99_ms: f64,
    latency_max_ms: f64,
    /// Reply lines that failed to parse as the wire envelope (gated: 0).
    malformed_replies: u64,
    /// Requests that never got a reply line back (gated: 0).
    dropped_replies: u64,
    /// Scripted requests compared against the threaded baseline, and how
    /// many normalized reply lines differed (gated: 0).
    equivalence_requests: u64,
    equivalence_mismatches: u64,
    /// Same-script round-trip wall-clock on each serving tier, µs.
    script_eventloop_us: f64,
    script_threaded_us: f64,
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn start_server(threaded: bool, workers: usize, dispatchers: usize) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            dispatchers,
            threaded,
            // Deterministic equivalence runs: no cross-run cache hits.
            cell_cache_cap: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn server")
}

/// One open client connection with a line-buffered reader.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(handle: &ServerHandle) -> Conn {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("set client nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set client read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one reply line. `Ok(None)` = EOF / timeout (a dropped reply).
    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line),
        }
    }
}

/// Per-thread tallies from the load phase.
#[derive(Default)]
struct LoadTally {
    latencies_ms: Vec<f64>,
    malformed: u64,
    dropped: u64,
}

/// Drives `conns` connections for `rounds` pipelined request rounds:
/// each round writes one request on every connection, then drains one
/// reply per connection, recording send-to-read latency.
fn drive(conns: &mut [Conn], rounds: usize, payload: &str) -> LoadTally {
    let mut tally = LoadTally::default();
    let mut sent: Vec<Option<Instant>> = vec![None; conns.len()];
    for _ in 0..rounds {
        for (conn, slot) in conns.iter_mut().zip(sent.iter_mut()) {
            *slot = conn.send(payload).ok().map(|()| Instant::now());
        }
        for (conn, slot) in conns.iter_mut().zip(sent.iter_mut()) {
            let Some(at) = slot.take() else {
                tally.dropped += 1;
                continue;
            };
            match conn.read_line() {
                Some(line) => {
                    tally
                        .latencies_ms
                        .push(at.elapsed().as_secs_f64() * 1e3);
                    if serde_json::from_str::<fairank_service::Reply>(line.trim()).is_err() {
                        tally.malformed += 1;
                    }
                }
                None => tally.dropped += 1,
            }
        }
    }
    tally
}

/// Zeroes every wall-clock field in a reply's JSON tree so two runs of
/// the same deterministic request compare bit-for-bit.
fn normalize(value: &mut Value) {
    match value {
        Value::Map(entries) => {
            for (key, nested) in entries.iter_mut() {
                if key == "elapsed_us" || key == "total_elapsed_us" {
                    *nested = Value::U64(0);
                } else {
                    normalize(nested);
                }
            }
        }
        Value::Seq(items) => {
            for nested in items.iter_mut() {
                normalize(nested);
            }
        }
        _ => {}
    }
}

/// Whether a reply line is a mid-stream chunk frame.
fn is_chunk(value: &Value) -> bool {
    value
        .as_map()
        .is_some_and(|entries| entries.iter().any(|(key, _)| key == "chunk"))
}

/// The scripted session both serving tiers must answer identically.
fn equivalence_script() -> Vec<Request> {
    let s = "equiv";
    vec![
        Request::new("help"),
        Request::in_session(s, "generate pop biased n=120 seed=9"),
        Request::in_session(s, "define f rating*0.7+language_test*0.3"),
        Request::in_session(s, "quantify pop f"),
        Request::in_session(s, "panels"),
        Request::in_session(s, "scenario grid pop f aggs=mean,max"),
        Request::in_session(s, "scenario grid pop f aggs=mean,max").with_stream(),
        Request::in_session(s, "datasets"),
    ]
}

/// Runs the script against one server and returns the normalized reply
/// lines per request (streamed chunk lines sorted — cells complete in
/// pool order, which is not part of the wire contract) plus wall-clock.
fn run_script(handle: &ServerHandle) -> (Vec<Vec<String>>, f64) {
    let mut conn = Conn::open(handle);
    let mut replies = Vec::new();
    let t = Instant::now();
    for request in equivalence_script() {
        let line = serde_json::to_string(&request).expect("serialize request");
        conn.send(&line).expect("send script request");
        let mut lines = Vec::new();
        loop {
            let reply = conn.read_line().expect("script reply");
            let mut value: Value =
                serde_json::parse_value_str(reply.trim()).expect("script reply parses");
            normalize(&mut value);
            let terminal = !is_chunk(&value);
            lines.push(serde_json::value_to_string(&value));
            if terminal {
                break;
            }
        }
        // Terminal reply last, chunks before it in deterministic order.
        let terminal = lines.pop().expect("at least the terminal line");
        lines.sort();
        lines.push(terminal);
        replies.push(lines);
    }
    (replies, t.elapsed().as_secs_f64() * 1e6)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("FAIRANK_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json")
        .to_string();

    // (connections, client threads, measured rounds)
    let (connections, client_threads, rounds) = if smoke {
        (64, 4, 5)
    } else {
        (1_000, 8, 10)
    };
    let workers = 4;
    let dispatchers = workers + 2;

    header(
        "BENCH",
        "event-loop serving tier: connection scale, reply integrity, wire equivalence (emits BENCH_serve.json)",
    );
    println!(
        "shape: {connections} connections x {rounds} rounds over {client_threads} client threads, {workers} workers"
    );

    // ---- load phase: the event loop under concurrent connections ----
    let handle = start_server(false, workers, dispatchers);
    let per_thread = connections / client_threads;
    let mut groups: Vec<Vec<Conn>> = (0..client_threads)
        .map(|_| (0..per_thread).map(|_| Conn::open(&handle)).collect())
        .collect();

    // Warmup round (connection registration, allocator warm paths).
    for group in &mut groups {
        drive(group, 1, "{\"line\": \"help\"}");
    }

    let t = Instant::now();
    let tallies: Vec<LoadTally> = std::thread::scope(|scope| {
        let threads: Vec<_> = groups
            .iter_mut()
            .map(|group| scope.spawn(move || drive(group, rounds, "{\"line\": \"help\"}")))
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });
    let load_elapsed = t.elapsed().as_secs_f64();
    drop(groups);

    let requests_total = (per_thread * client_threads * rounds) as u64;
    let latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_ms.iter().copied())
        .collect();
    let malformed: u64 = tallies.iter().map(|t| t.malformed).sum();
    let dropped: u64 = tallies.iter().map(|t| t.dropped).sum();
    let throughput = latencies.len() as f64 / load_elapsed;
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let max = latencies.iter().copied().fold(0.0f64, f64::max);

    // ---- equivalence phase: event loop vs threaded baseline ----
    let (eventloop_replies, script_eventloop_us) = run_script(&handle);
    handle.stop();
    let baseline = start_server(true, workers, dispatchers);
    let (threaded_replies, script_threaded_us) = run_script(&baseline);
    baseline.stop();

    let equivalence_requests = eventloop_replies.len() as u64;
    let mut mismatches = 0u64;
    for (i, (ev, th)) in eventloop_replies.iter().zip(&threaded_replies).enumerate() {
        if ev != th {
            mismatches += 1;
            eprintln!("request #{i}: event-loop and threaded replies differ");
            eprintln!("  event loop: {ev:?}");
            eprintln!("  threaded:   {th:?}");
        }
    }

    let widths = [22, 14, 14, 14];
    row(
        &[
            "metric".into(),
            "value".into(),
            "".into(),
            "".into(),
        ],
        &widths,
    );
    row(
        &[
            "throughput".into(),
            format!("{throughput:.0} req/s"),
            format!("({requests_total} requests)"),
            format!("({connections} conns)"),
        ],
        &widths,
    );
    row(
        &[
            "latency p50/p99/max".into(),
            format!("{p50:.2} ms"),
            format!("{p99:.2} ms"),
            format!("{max:.2} ms"),
        ],
        &widths,
    );
    row(
        &[
            "integrity".into(),
            format!("{malformed} malformed"),
            format!("{dropped} dropped"),
            "".into(),
        ],
        &widths,
    );
    row(
        &[
            "wire equivalence".into(),
            format!("{mismatches} mismatches"),
            format!("({equivalence_requests} requests)"),
            "".into(),
        ],
        &widths,
    );

    // Integrity and equivalence are deterministic — gate at both shapes.
    assert_eq!(malformed, 0, "malformed reply lines under load");
    assert_eq!(dropped, 0, "dropped replies under load");
    assert_eq!(
        mismatches, 0,
        "event-loop replies must be bit-identical to the threaded baseline"
    );
    if !smoke {
        assert!(
            connections >= 1_000,
            "full shape must exercise >= 1k concurrent connections"
        );
        // Requests are pipelined per round, so a reply's latency includes
        // waiting behind its round's queue — the bound is a whole-round
        // ceiling, generous enough for a shared single-core runner while
        // still catching an event loop that degrades to per-connection
        // rescans (quadratic wakeups blow straight through it).
        assert!(
            p99 < 5_000.0,
            "p99 request latency {p99:.0} ms exceeds the 5 s bound at \
             {connections} connections"
        );
    }

    let report = BenchReport {
        experiment: "serve".into(),
        smoke,
        connections: connections as u64,
        rounds: rounds as u64,
        requests_total,
        workers: workers as u64,
        dispatchers: dispatchers as u64,
        throughput_rps: throughput,
        latency_p50_ms: p50,
        latency_p99_ms: p99,
        latency_max_ms: max,
        malformed_replies: malformed,
        dropped_replies: dropped,
        equivalence_requests,
        equivalence_mismatches: mismatches,
        script_eventloop_us,
        script_threaded_us,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    println!("\nwrote {out_path}");
}
