//! E7 — §1 feature 4: "generic — quantify different notions of fairness".
//!
//! Runs every aggregator × objective combination on a fixed biased
//! population, showing how the chosen formulation changes the optimal
//! partitioning and its value.

use fairank_bench::{header, row, synthetic_space};
use fairank_core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank_core::quantify::Quantify;

fn main() {
    header("E7", "fairness formulations: aggregator × objective sweep");
    let space = synthetic_space(500, 3, 3, 0.3, 42);
    let widths = [12, 14, 12, 7, 7];
    row(
        &[
            "aggregator".into(),
            "objective".into(),
            "value".into(),
            "parts".into(),
            "depth".into(),
        ],
        &widths,
    );
    for aggregator in Aggregator::all() {
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            let criterion = FairnessCriterion::new(objective, aggregator);
            let outcome = Quantify::new(criterion).run_space(&space).expect("runs");
            row(
                &[
                    aggregator.name().into(),
                    objective.name().into(),
                    format!("{:.4}", outcome.unfairness),
                    format!("{}", outcome.partitions.len()),
                    format!("{}", outcome.tree.max_depth()),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nRESULT: the same dataset yields different extremal partitionings \
         per formulation (mean rewards global spread, max chases one extreme \
         pair, variance/stddev reward asymmetry) — FaiRank's genericity \
         feature."
    );
}
