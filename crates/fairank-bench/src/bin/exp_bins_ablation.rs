//! E10 — ablation: histogram bin-count sensitivity.
//!
//! The paper fixes "equal bins over the range of f" but not the count
//! (Figure 2 draws 5). This sweep shows how the quantified unfairness and
//! the discovered partitioning respond to the bin count.

use fairank_bench::{header, row, synthetic_space};
use fairank_core::fairness::FairnessCriterion;
use fairank_core::histogram::HistogramSpec;
use fairank_core::quantify::Quantify;
use fairank_data::paper;

fn main() {
    header("E10", "histogram bin-count ablation");
    let widths = [6, 16, 9, 16, 9];
    row(
        &[
            "bins".into(),
            "u (table1)".into(),
            "parts".into(),
            "u (synthetic)".into(),
            "parts".into(),
        ],
        &widths,
    );
    let table1 = paper::table1_space().expect("space");
    let synth = synthetic_space(500, 3, 3, 0.3, 42);
    for &bins in &[2usize, 3, 5, 10, 20, 50] {
        let criterion = FairnessCriterion::default()
            .with_hist(HistogramSpec::unit(bins).expect("valid"));
        let q = Quantify::new(criterion);
        let t = q.run_space(&table1).expect("runs");
        let s = q.run_space(&synth).expect("runs");
        row(
            &[
                format!("{bins}"),
                format!("{:.4}", t.unfairness),
                format!("{}", t.partitions.len()),
                format!("{:.4}", s.unfairness),
                format!("{}", s.partitions.len()),
            ],
            &widths,
        );
    }
    println!(
        "\nRESULT: unfairness values shift with resolution (coarse bins hide \
         within-bin gaps; fine bins fragment mass) but stabilize around \
         10–20 bins, justifying the library default of 10."
    );
}
