//! E8 — JOB OWNER scenario: unfairness as a function of scoring-function
//! weights. Sweeps the weight of the bias-carrying rating attribute on the
//! wood-panels job of the TaskRabbit-like marketplace, printing the
//! series a fairness-vs-weight figure would plot.

use fairank_bench::{header, row};
use fairank_core::fairness::FairnessCriterion;
use fairank_marketplace::scenario::taskrabbit_like;
use fairank_session::report::job_owner_sweep;

fn main() {
    header("E8", "job-owner weight sweep: unfairness vs rating weight");
    let market = taskrabbit_like(400, 42).expect("builds");
    let job = market.job("wood-panels").expect("job exists");
    let weights: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let report = job_owner_sweep(
        market.workers(),
        &job.scoring,
        "rating",
        &weights,
        &FairnessCriterion::default(),
    )
    .expect("sweeps");

    let widths = [12, 12, 7, 10];
    row(
        &[
            "rating w".into(),
            "unfairness".into(),
            "parts".into(),
            "fairest".into(),
        ],
        &widths,
    );
    for (i, r) in report.rows.iter().enumerate() {
        row(
            &[
                r.label.clone(),
                format!("{:.4}", r.unfairness),
                format!("{}", r.partitions),
                if i == report.fairest { "◀".into() } else { "".into() },
            ],
            &widths,
        );
    }
    let fairest = &report.rows[report.fairest];
    let worst = report
        .rows
        .iter()
        .max_by(|a, b| a.unfairness.partial_cmp(&b.unfairness).expect("finite"))
        .expect("non-empty");
    println!(
        "\nRESULT: unfairness responds monotonically-ish to the biased \
         attribute's weight; the owner can cut worst-case unfairness from \
         {:.4} ({}) to {:.4} ({}) by re-weighting — the scenario's 'choose \
         the fairest function' outcome.",
        worst.unfairness, worst.label, fairest.unfairness, fairest.label
    );
}
