//! BENCH — content-addressed dataset store + memoized plan-cell cache.
//!
//! Two claims of the caching subsystem are measured and gated on the
//! tracked 10k / 8-attribute reference shape (one wide region-like
//! attribute of cardinality 12 plus seven narrow demographic ones):
//!
//! 1. **Warm-hit speedup** — a scenario grid whose cells are all resident
//!    in the cell cache answers ≥10× faster than the cold run that
//!    computed them, and every served cell is verified bit-identical to
//!    the cold outcome before the clock is trusted.
//! 2. **Shared-storage memory** — 8 sessions loading the same dataset
//!    through one `DatasetStore` hold it once: resident store bytes stay
//!    under 2× what a single session needs (the un-deduplicated cost
//!    would be 8×).
//!
//! Usage: `exp_bench_cache [--smoke] [--out PATH]`
//!
//! `--smoke` (or `FAIRANK_BENCH_SMOKE=1`) shrinks the shape so CI can run
//! the emitter in seconds and upload the JSON as an artifact. The
//! in-binary floors are asserted only at the full shape (smoke timings
//! are microseconds-scale and machine-noisy); the memory ratio is
//! deterministic and asserted at both shapes. The committed
//! `BENCH_cache.json` records the real numbers and CI's relative gate
//! catches regressions against it.

use std::sync::Arc;
use std::time::Instant;

use fairank_bench::{header, row};
use fairank_core::emd::EmdBackendKind;
use fairank_core::fairness::{Aggregator, Objective};
use fairank_core::plan::SearchStrategy;
use fairank_data::schema::AttributeRole;
use fairank_data::Dataset;
use fairank_session::command::{apply, Command};
use fairank_session::plan::{
    self, CriterionGrid, Perspective, ScenarioOutcome, ScenarioReport, ScenarioSpec,
};
use fairank_session::{CellCache, DatasetStore, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// The emitted measurements.
#[derive(Debug, Serialize)]
struct BenchReport {
    experiment: String,
    smoke: bool,
    n: u64,
    attrs: u64,
    /// Per-attribute cardinalities of the mixed reference shape.
    cardinalities: Vec<u64>,
    min_partition_size: u64,
    /// Grid cells per scenario run (functions × criteria).
    cells: u64,
    /// Wall-clock of the populating run (every cell computed).
    cold_us: f64,
    /// Median wall-clock of a fully cache-served rerun.
    warm_p50_us: f64,
    /// `cold_us / warm_p50_us` — the gated number.
    warm_speedup: f64,
    /// Cell-cache counters after cold + warm runs.
    cache_hits: u64,
    cache_misses: u64,
    /// Resident dataset bytes with one session attached.
    single_session_bytes: u64,
    /// Resident store bytes with 8 sessions sharing the dataset.
    shared_bytes_8_sessions: u64,
    /// What 8 private copies would cost (8 × one session's bytes).
    unshared_bytes_8_sessions: u64,
    /// `shared_bytes_8_sessions / single_session_bytes` — the gated ratio.
    mem_ratio_8_sessions: f64,
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The reference dataset as session-loadable columns: protected
/// categoricals `a0..` with the tracked cardinalities, plus an observed
/// `score` with the planted 0.3 gap on value 0 of attribute 0 (the same
/// distribution `synthetic_space_mixed` plants, expressed as a dataset).
fn reference_dataset(n: usize, cards: &[u32], seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = Dataset::builder();
    let mut codes0 = Vec::new();
    for (a, &card) in cards.iter().enumerate() {
        let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..card)).collect();
        if a == 0 {
            codes0 = codes.clone();
        }
        let values: Vec<String> = codes.iter().map(|c| format!("v{c}")).collect();
        builder = builder.categorical(format!("a{a}"), AttributeRole::Protected, &values);
    }
    let bias = 0.3;
    let scores: Vec<f64> = (0..n)
        .map(|i| {
            let base: f64 = rng.gen_range(0.0..1.0 - bias);
            if codes0[i] == 0 {
                base
            } else {
                (base + bias).min(1.0)
            }
        })
        .collect();
    builder
        .float("score", AttributeRole::Observed, scores)
        .build()
        .expect("reference dataset is valid")
}

/// A session holding the reference dataset (interned through `store`) and
/// the scoring function the grid ranks by.
fn seeded_session(store: &Arc<DatasetStore>, dataset: &Dataset) -> Session {
    let mut session = Session::with_store(Arc::clone(store));
    session.add_dataset("pop", dataset.clone()).expect("dataset registers");
    apply(&mut session, Command::parse("define f score*1.0").unwrap())
        .expect("scoring function registers");
    session
}

/// The benched grid: 2 objectives × all four EMD backends = 8 cells.
fn grid_spec(min_partition: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(Perspective::Grid {
        datasets: vec!["pop".into()],
        functions: vec!["f".into()],
        filter: None,
    });
    spec.strategy = Some(SearchStrategy::Quantify {
        max_depth: None,
        min_partition,
    });
    spec.criteria = Some(CriterionGrid {
        objectives: vec![Objective::MostUnfair, Objective::LeastUnfair],
        aggregators: vec![Aggregator::Mean],
        bins: vec![10],
        emds: vec![
            EmdBackendKind::OneD,
            EmdBackendKind::Transport,
            EmdBackendKind::Batched,
            EmdBackendKind::Kernel,
        ],
    });
    spec
}

/// Runs the grid on a fresh session with every cell routed through the
/// cache, returning the report and the elapsed wall-clock.
fn run_grid(
    store: &Arc<DatasetStore>,
    dataset: &Dataset,
    spec: &ScenarioSpec,
    cache: &CellCache,
) -> (ScenarioReport, f64) {
    let mut session = seeded_session(store, dataset);
    let t = Instant::now();
    let report = plan::compile(&session, spec)
        .expect("grid compiles")
        .execute_with(|cells| {
            cells
                .into_iter()
                .map(|cell| cell.execute_cached(cache))
                .collect()
        })
        .finish(Some(&mut session))
        .expect("grid runs");
    (report, t.elapsed().as_secs_f64() * 1e6)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("FAIRANK_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_cache.json")
        .to_string();

    // (n, cardinalities, min partition size, warm reps)
    let (n, cards, min_part, reps) = if smoke {
        (600, vec![4u32, 3, 3, 2], 5, 3)
    } else {
        (10_000, vec![12u32, 3, 3, 3, 3, 3, 3, 3], 300, 5)
    };

    header(
        "BENCH",
        "cross-session cell cache: cold vs warm scenario grid (emits BENCH_cache.json)",
    );
    println!("shape: n={n} cards={cards:?} min_partition={min_part} warm reps={reps}");

    let dataset = reference_dataset(n, &cards, 7);
    let store = Arc::new(DatasetStore::new());
    let cache = CellCache::new(CellCache::DEFAULT_CAP);
    let spec = grid_spec(min_part);

    // Cold: every cell computed and published.
    let (cold_report, cold_us) = run_grid(&store, &dataset, &spec, &cache);
    let cells = cold_report.cells.len() as u64;
    assert!(
        cold_report.cells.iter().all(|c| c.cache_misses == 1),
        "cold run must compute every cell"
    );

    // Warm: reruns served entirely from the cache, each verified
    // bit-identical to the cold outcome before its timing counts.
    let mut warm_us = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (warm_report, us) = run_grid(&store, &dataset, &spec, &cache);
        assert!(
            warm_report.cells.iter().all(|c| c.cache_hits == 1),
            "warm run must be served entirely from cache"
        );
        let (ScenarioOutcome::Grid(cold_rows), ScenarioOutcome::Grid(warm_rows)) =
            (&cold_report.outcome, &warm_report.outcome)
        else {
            unreachable!("grid specs reduce to grid outcomes");
        };
        for (c, w) in cold_rows.iter().zip(warm_rows) {
            assert_eq!(
                c.unfairness.to_bits(),
                w.unfairness.to_bits(),
                "{}: cached outcome must be bit-identical to the cold compute",
                c.config
            );
            assert_eq!(c.partitions, w.partitions, "{}", c.config);
        }
        warm_us.push(us);
    }
    let warm_p50 = percentile(&warm_us, 50.0);
    let warm_speedup = cold_us / warm_p50;

    // Memory: 8 sessions interning the same dataset share one allocation.
    let single = seeded_session(&store, &dataset);
    let single_bytes = store.stats().bytes as u64;
    let per_copy = single
        .dataset_handle("pop")
        .expect("dataset registered")
        .heap_bytes() as u64;
    let fleet: Vec<Session> =
        (0..8).map(|_| seeded_session(&store, &dataset)).collect();
    let shared_bytes = store.stats().bytes as u64;
    drop(fleet);
    drop(single);
    let unshared_bytes = 8 * per_copy;
    let mem_ratio = shared_bytes as f64 / single_bytes.max(1) as f64;

    let widths = [16, 14, 14, 10, 12];
    row(
        &[
            "metric".into(),
            "cold".into(),
            "warm p50".into(),
            "ratio".into(),
            "".into(),
        ],
        &widths,
    );
    row(
        &[
            "grid wall-clock".into(),
            format!("{cold_us:.0} µs"),
            format!("{warm_p50:.0} µs"),
            format!("{warm_speedup:.1}x"),
            format!("({cells} cells)"),
        ],
        &widths,
    );
    row(
        &[
            "store bytes".into(),
            format!("{unshared_bytes} (8 copies)"),
            format!("{shared_bytes} (shared)"),
            format!("{mem_ratio:.2}x"),
            "(vs 1 session)".into(),
        ],
        &widths,
    );

    // The memory dedup is deterministic — gate it at both shapes.
    assert!(
        mem_ratio < 2.0,
        "8 sessions sharing one dataset hold {mem_ratio:.2}x the bytes of one \
         session — the store failed to deduplicate (must stay under 2x)"
    );
    if !smoke {
        assert!(
            warm_speedup >= 10.0,
            "warm cache-served grid is only {warm_speedup:.1}x faster than the \
             cold compute — below the 10x floor the tracked shape must never \
             drop under"
        );
    }

    let stats = cache.stats();
    let report = BenchReport {
        experiment: "bench_cache".to_string(),
        smoke,
        n: n as u64,
        attrs: cards.len() as u64,
        cardinalities: cards.iter().map(|&c| c as u64).collect(),
        min_partition_size: min_part as u64,
        cells,
        cold_us,
        warm_p50_us: warm_p50,
        warm_speedup,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        single_session_bytes: single_bytes,
        shared_bytes_8_sessions: shared_bytes,
        unshared_bytes_8_sessions: unshared_bytes,
        mem_ratio_8_sessions: mem_ratio,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("report is writable");
    println!(
        "\nRESULT: warm cache-served grid {warm_speedup:.1}x faster than cold; \
         8 sessions share the dataset at {mem_ratio:.2}x one session's bytes. \
         Wrote {out_path}."
    );
}
