//! E13 — extension: beam search between the greedy heuristic and the
//! exhaustive search.
//!
//! Algorithm 1 is the width-agnostic greedy end of a spectrum; the
//! exhaustive enumeration is the other end. Beam search with width B
//! interpolates: this experiment sweeps B and reports solution quality
//! (fraction of the exhaustive optimum) and latency, alongside the paper's
//! greedy and its holistic ablation.

use std::time::Instant;

use fairank_bench::{header, row, synthetic_space};
use fairank_core::beam::BeamSearch;
use fairank_core::exhaustive::ExhaustiveSearch;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::{Quantify, SplitEvaluation};

fn main() {
    header("E13", "beam search: quality/latency between greedy and exact");
    let criterion = FairnessCriterion::default();
    let space = synthetic_space(200, 3, 3, 0.35, 42);

    let exact = ExhaustiveSearch::new(criterion)
        .without_dedupe()
        .run_space(&space)
        .expect("within budget");
    println!(
        "exhaustive optimum: {:.4} ({} trees)\n",
        exact.best_value, exact.trees_enumerated
    );

    let widths = [14, 10, 8, 8, 12];
    row(
        &[
            "method".into(),
            "value".into(),
            "ratio".into(),
            "parts".into(),
            "time µs".into(),
        ],
        &widths,
    );
    let ratio = |u: f64| u / exact.best_value;

    let t = Instant::now();
    let paper = Quantify::new(criterion).run_space(&space).expect("runs");
    row(
        &[
            "greedy-paper".into(),
            format!("{:.4}", paper.unfairness),
            format!("{:.3}", ratio(paper.unfairness)),
            format!("{}", paper.partitions.len()),
            format!("{}", t.elapsed().as_micros()),
        ],
        &widths,
    );

    let t = Instant::now();
    let holistic = Quantify::new(criterion)
        .with_split_evaluation(SplitEvaluation::Holistic)
        .run_space(&space)
        .expect("runs");
    row(
        &[
            "greedy-holist".into(),
            format!("{:.4}", holistic.unfairness),
            format!("{:.3}", ratio(holistic.unfairness)),
            format!("{}", holistic.partitions.len()),
            format!("{}", t.elapsed().as_micros()),
        ],
        &widths,
    );

    for width in [1usize, 2, 4, 8, 16, 64] {
        let t = Instant::now();
        let beam = BeamSearch::new(criterion, width)
            .run_space(&space)
            .expect("runs");
        row(
            &[
                format!("beam-{width}"),
                format!("{:.4}", beam.unfairness),
                format!("{:.3}", ratio(beam.unfairness)),
                format!("{}", beam.partitions.len()),
                format!("{}", t.elapsed().as_micros()),
            ],
            &widths,
        );
    }
    println!(
        "\nRESULT: widening the beam buys back the greedy optimality gap \
         smoothly; small widths already dominate the paper's split test at \
         interactive latencies — a practical upgrade path for FaiRank's \
         engine."
    );
}
