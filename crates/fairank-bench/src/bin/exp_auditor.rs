//! E9 — AUDITOR scenario: the marketplace-wide fairness table, under full
//! transparency and under the blackbox setting (ranking-only over
//! k-anonymized profiles).

use fairank_bench::header;
use fairank_core::fairness::FairnessCriterion;
use fairank_marketplace::scenario::{qapa_like, taskrabbit_like};
use fairank_marketplace::Transparency;
use fairank_session::report::auditor_report;

fn main() {
    header("E9", "auditor reports over two simulated marketplaces");
    let criterion = FairnessCriterion::default();

    for (name, market) in [
        ("taskrabbit-like", taskrabbit_like(400, 42).expect("builds")),
        ("qapa-like", qapa_like(400, 42).expect("builds")),
    ] {
        println!("--- {name}, full transparency ---");
        let full =
            auditor_report(&market, &Transparency::full(), &criterion, 2, 20).expect("audits");
        print!("{}", full.render());

        println!("--- {name}, blackbox (k=10, ranking-only) ---");
        let blackbox = auditor_report(&market, &Transparency::blackbox(10), &criterion, 2, 20)
            .expect("audits");
        print!("{}", blackbox.render());
        println!();
    }
    println!(
        "RESULT: the audit ranks jobs by quantified unfairness and names the \
         most/least favored demographics; the injected rating bias (women, \
         African-American workers / Maghreb-Afrique origin) is recovered \
         from data alone, and degrades gracefully under blackbox observation."
    );
}
