//! E3 — §3.2 claim: the greedy heuristic approximates the exponential
//! exhaustive search at a fraction of the cost.
//!
//! Sweeps the number of protected attributes and their cardinality on a
//! bias-planted population, reporting: the exhaustive optimum, the greedy
//! value under the paper's split test and under the holistic ablation
//! (child–child distances included in the decision), approximation ratios,
//! tree counts, and wall times.

use std::time::Instant;

use fairank_bench::{header, row, synthetic_space};
use fairank_core::exhaustive::ExhaustiveSearch;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::{Quantify, SplitEvaluation};

fn main() {
    header(
        "E3",
        "heuristic (Algorithm 1) vs exhaustive search — quality and cost",
    );
    let widths = [6, 6, 10, 10, 8, 10, 8, 9, 12, 11];
    row(
        &[
            "attrs".into(),
            "card".into(),
            "exact u".into(),
            "paper u".into(),
            "ratio".into(),
            "holist u".into(),
            "ratio".into(),
            "trees".into(),
            "exact ms".into(),
            "greedy µs".into(),
        ],
        &widths,
    );
    let criterion = FairnessCriterion::default();
    let n = 200;
    let mut paper_ratios = Vec::new();
    let mut holistic_ratios = Vec::new();
    for &(attrs, card) in &[(2usize, 2u32), (2, 3), (3, 2), (3, 3), (4, 2), (2, 4)] {
        let space = synthetic_space(n, attrs, card, 0.35, 42);

        let t0 = Instant::now();
        let exact = ExhaustiveSearch::new(criterion)
            .with_budget(20_000_000)
            .without_dedupe()
            .run_space(&space)
            .expect("within budget");
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let paper = Quantify::new(criterion).run_space(&space).expect("runs");
        let greedy_us = t1.elapsed().as_secs_f64() * 1e6;

        let holistic = Quantify::new(criterion)
            .with_split_evaluation(SplitEvaluation::Holistic)
            .run_space(&space)
            .expect("runs");

        let ratio = |u: f64| if exact.best_value > 0.0 { u / exact.best_value } else { 1.0 };
        assert!(
            paper.unfairness <= exact.best_value + 1e-9
                && holistic.unfairness <= exact.best_value + 1e-9,
            "greedy cannot beat the exact optimum"
        );
        paper_ratios.push(ratio(paper.unfairness));
        holistic_ratios.push(ratio(holistic.unfairness));
        row(
            &[
                format!("{attrs}"),
                format!("{card}"),
                format!("{:.4}", exact.best_value),
                format!("{:.4}", paper.unfairness),
                format!("{:.3}", ratio(paper.unfairness)),
                format!("{:.4}", holistic.unfairness),
                format!("{:.3}", ratio(holistic.unfairness)),
                format!("{}", exact.trees_enumerated),
                format!("{exact_ms:.1}"),
                format!("{greedy_us:.0}"),
            ],
            &widths,
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean approximation ratio: paper split test {:.3}, holistic {:.3}",
        mean(&paper_ratios),
        mean(&holistic_ratios)
    );
    println!(
        "RESULT: the greedy search runs 3–5 orders of magnitude faster while \
         the tree count explodes combinatorially — the paper's 'efficient \
         heuristic … within reasonable time' claim. The local split test \
         pays for that speed with a real optimality gap on adversarial \
         synthetic data (ratios above); the holistic ablation shows how much \
         of the gap the sibling-only comparison of Algorithm 1 line 8 is \
         responsible for."
    );
}
