//! E11 — ablation: EMD backend agreement and cost.
//!
//! The 1-D closed form (CDF difference) must agree with the general
//! transportation solver on uniform ground distances; the solver
//! additionally supports thresholded distances (Pele & Werman's EMD-hat
//! family, the paper's reference \[8\]). This binary verifies agreement on
//! random histograms and reports the speed gap.

use std::time::Instant;

use fairank_bench::{header, row};
use fairank_core::emd::{Emd, EmdBackendKind};
use fairank_core::histogram::{Histogram, HistogramSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_hist(rng: &mut StdRng, spec: HistogramSpec, n: usize) -> Histogram {
    Histogram::from_scores(spec, (0..n).map(|_| rng.gen_range(0.0..=1.0)))
}

fn main() {
    header("E11", "EMD backends: agreement and cost per bin count");
    let widths = [6, 12, 14, 14, 10];
    row(
        &[
            "bins".into(),
            "max |Δ|".into(),
            "1d ns/call".into(),
            "transport ns".into(),
            "speedup".into(),
        ],
        &widths,
    );
    let mut rng = StdRng::seed_from_u64(42);
    for &bins in &[5usize, 10, 20, 50, 100] {
        let spec = HistogramSpec::unit(bins).expect("valid");
        let pairs: Vec<(Histogram, Histogram)> = (0..50)
            .map(|_| {
                (
                    random_hist(&mut rng, spec, 200),
                    random_hist(&mut rng, spec, 200),
                )
            })
            .collect();

        let one_d = Emd::new(EmdBackendKind::OneD);
        let transport = Emd::new(EmdBackendKind::Transport);
        let batched = Emd::new(EmdBackendKind::Batched);
        let kernel = Emd::new(EmdBackendKind::Kernel);

        let mut max_delta = 0.0f64;
        for (a, b) in &pairs {
            let d1 = one_d.distance(a, b).expect("computable");
            let d2 = transport.distance(a, b).expect("computable");
            let d3 = batched.distance(a, b).expect("computable");
            let d4 = kernel.distance(a, b).expect("computable");
            max_delta = max_delta.max((d1 - d2).abs());
            assert_eq!(
                d1.to_bits(),
                d3.to_bits(),
                "batched backend must be bit-identical to the 1-D closed form"
            );
            assert_eq!(
                d1.to_bits(),
                d4.to_bits(),
                "kernel backend must be bit-identical to the 1-D closed form"
            );
        }

        let t0 = Instant::now();
        for (a, b) in &pairs {
            std::hint::black_box(one_d.distance(a, b).expect("computable"));
        }
        let ns_1d = t0.elapsed().as_nanos() as f64 / pairs.len() as f64;

        let t1 = Instant::now();
        for (a, b) in &pairs {
            std::hint::black_box(transport.distance(a, b).expect("computable"));
        }
        let ns_tr = t1.elapsed().as_nanos() as f64 / pairs.len() as f64;

        assert!(max_delta < 1e-8, "backends disagree: {max_delta}");
        row(
            &[
                format!("{bins}"),
                format!("{max_delta:.1e}"),
                format!("{ns_1d:.0}"),
                format!("{ns_tr:.0}"),
                format!("{:.0}x", ns_tr / ns_1d),
            ],
            &widths,
        );
    }
    println!(
        "\nRESULT: exact agreement (≤1e-8) everywhere; the closed form is \
         orders of magnitude cheaper, which is what makes the interactive \
         search affordable. The transport solver remains available for \
         non-uniform ground distances."
    );
}
