//! Pins the point of the scenario-plan redesign: a multi-cell grid fanned
//! across a ≥4-worker pool beats the same grid run on a single worker in
//! wall-clock, while producing bit-identical results. (Before the plan
//! layer, a grid request occupied exactly one pool slot no matter how many
//! workers the server had.)

use std::time::{Duration, Instant};

use fairank_core::emd::EmdBackendKind;
use fairank_core::fairness::{Aggregator, Objective};
use fairank_data::synth;
use fairank_service::WorkerPool;
use fairank_session::plan::{
    compile, CriterionGrid, Perspective, ScenarioOutcome, ScenarioReport, ScenarioSpec,
};
use fairank_session::Session;

fn session() -> Session {
    let mut s = Session::new();
    let dataset = synth::biased_crowdsourcing_spec(4_000, 11)
        .generate()
        .expect("synthetic population");
    s.add_dataset("pop", dataset).expect("fresh session");
    s.add_function(
        "f",
        fairank_core::scoring::LinearScoring::builder()
            .weight("rating", 0.7)
            .weight("language_test", 0.3)
            .build_unchecked()
            .expect("static scoring"),
    )
    .expect("fresh session");
    s
}

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        perspective: Perspective::Grid {
            datasets: vec!["pop".into()],
            functions: vec!["f".into()],
            filter: None,
        },
        strategy: None,
        criteria: Some(CriterionGrid {
            objectives: vec![Objective::MostUnfair],
            aggregators: vec![
                Aggregator::Mean,
                Aggregator::Max,
                Aggregator::Min,
                Aggregator::Variance,
            ],
            bins: vec![10, 14],
            emds: vec![EmdBackendKind::OneD],
        }),
    }
}

/// Runs the spec's cells through a pool of `workers`, returning the report
/// and the wall-clock of the execution.
fn run_on_pool(workers: usize) -> (ScenarioReport, Duration) {
    let mut s = session();
    let plan = compile(&s, &spec()).expect("compile grid");
    assert_eq!(plan.cell_count(), 8, "the grid is 1×1×4×2 cells");
    let pool = WorkerPool::new(workers, workers * 2);
    let start = Instant::now();
    let report = plan
        .run_with(&mut s, |cells| {
            pool.run_batch(
                cells
                    .into_iter()
                    .map(|cell| move || cell.execute())
                    .collect(),
            )
            .into_iter()
            .map(|result| result.expect("cells do not panic"))
            .collect()
        })
        .expect("grid runs");
    (report, start.elapsed())
}

#[test]
fn multi_worker_grid_beats_single_worker_wall_clock() {
    // Warm up allocators/caches so neither measurement pays first-run
    // costs.
    let _ = run_on_pool(2);

    let (serial_report, serial) = run_on_pool(1);
    let (parallel_report, parallel) = run_on_pool(4);

    // Same cells, same results, regardless of worker count.
    let (ScenarioOutcome::Grid(serial_rows), ScenarioOutcome::Grid(parallel_rows)) =
        (&serial_report.outcome, &parallel_report.outcome)
    else {
        panic!("expected grid outcomes");
    };
    assert_eq!(serial_rows.len(), 8);
    for (a, b) in serial_rows.iter().zip(parallel_rows) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.unfairness, b.unfairness, "cell {} diverged", a.config);
        assert_eq!(a.partitions, b.partitions);
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 2 {
        eprintln!(
            "plan_parallel: host has a single core; speedup assertion skipped \
             (serial {serial:?}, parallel {parallel:?})"
        );
        return;
    }
    // With ≥2 cores and 4 workers, the 8-cell fan-out must beat one worker
    // outright. The bar is deliberately lenient (any speedup at all) so
    // the test stays robust on loaded CI hosts; real hosts see ~min(4,
    // cores)×.
    assert!(
        parallel < serial,
        "4-worker grid ({parallel:?}) is not faster than 1-worker ({serial:?})"
    );
}
