//! Pins the split engine's work reduction on `bench_quantify`'s reference
//! configurations: identical search results with at least a 2× cut in
//! histograms built and EMDs computed (the acceptance bar the
//! `BENCH_quantify.json` emitter tracks over time).

use fairank_bench::synthetic_space;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;

#[test]
fn engine_halves_histogram_and_emd_work_on_reference_configs() {
    for (n, attrs) in [(10_000usize, 4usize), (10_000, 8)] {
        let space = synthetic_space(n, attrs, 3, 0.3, 7);
        let engine = Quantify::new(FairnessCriterion::default())
            .run_space(&space)
            .expect("engine run");
        let naive = Quantify::new(FairnessCriterion::default())
            .with_naive_evaluation()
            .run_space(&space)
            .expect("naive run");

        // Zero behavior change.
        assert_eq!(engine.unfairness, naive.unfairness, "n={n} attrs={attrs}");
        assert_eq!(engine.partitions, naive.partitions);
        assert_eq!(engine.tree, naive.tree);

        // ≥ 2× fewer histogram builds everywhere, strictly fewer EMD
        // computations, and a live memo.
        assert!(
            naive.stats.histograms_built >= 2 * engine.stats.histograms_built,
            "n={n} attrs={attrs}: histograms {} vs naive {}",
            engine.stats.histograms_built,
            naive.stats.histograms_built
        );
        assert!(
            engine.stats.emd_calls < naive.stats.emd_calls,
            "n={n} attrs={attrs}: EMD calls {} vs naive {}",
            engine.stats.emd_calls,
            naive.stats.emd_calls
        );
        assert!(engine.stats.emd_cache_hits > 0);

        // The acceptance configuration (10k / 8 attributes): its fine
        // partitioning makes content interning collapse the leaf pairwise
        // matrix — well beyond the required 2× EMD reduction (measured
        // ~60×: 5.07M naive EMDs vs ~84k engine EMDs).
        if attrs == 8 {
            assert!(
                naive.stats.emd_calls >= 2 * engine.stats.emd_calls,
                "EMD calls {} vs naive {}",
                engine.stats.emd_calls,
                naive.stats.emd_calls
            );
        }
    }
}
