//! Pins the small-input bypass: on spaces small enough for the engine's
//! compact caches (≤1k rows, few attributes), engine-backed quantify must
//! not regress against the naive evaluation — the ROADMAP's former soft
//! spot where hash-map overhead made the engine slightly slower.

use std::time::Duration;

use fairank_bench::synthetic_space;
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;

/// Min-of-N search time: `QuantifyOutcome::elapsed` covers the search
/// alone, and the minimum over many runs is a stable proxy for the true
/// cost under scheduler noise.
fn min_elapsed(quantify: &Quantify, space: &fairank_core::space::RankingSpace, runs: usize) -> Duration {
    (0..runs)
        .map(|_| quantify.run_space(space).expect("quantify runs").elapsed)
        .min()
        .expect("at least one run")
}

#[test]
fn small_space_engine_does_not_regress_vs_naive() {
    // Both reference shapes sit under the compact-cache thresholds:
    // the tiny interactive case and the upper edge of "small".
    for (n, attrs, runs) in [(200usize, 2usize, 120usize), (1_000, 4, 40)] {
        let space = synthetic_space(n, attrs, 3, 0.3, 11);
        let engine = Quantify::new(FairnessCriterion::default());
        let naive = Quantify::new(FairnessCriterion::default()).with_naive_evaluation();

        // Zero behavior change first — the bypass must be invisible.
        let engine_outcome = engine.run_space(&space).unwrap();
        let naive_outcome = naive.run_space(&space).unwrap();
        assert_eq!(engine_outcome.unfairness, naive_outcome.unfairness);
        assert_eq!(engine_outcome.partitions, naive_outcome.partitions);
        assert_eq!(engine_outcome.tree, naive_outcome.tree);

        // The regression bar: engine wall-clock within 1.5× of naive on
        // min-of-N (pre-bypass the engine could lose outright; with the
        // compact caches it should win, the slack only absorbs timer
        // noise on sub-millisecond searches). Timing on shared CI runners
        // is noisy even under min-of-N, so a systematic regression must
        // fail three independent attempts before the test does.
        let mut attempts = Vec::new();
        let passed = (0..3).any(|_| {
            let engine_min = min_elapsed(&engine, &space, runs);
            let naive_min = min_elapsed(&naive, &space, runs);
            attempts.push((engine_min, naive_min));
            engine_min <= naive_min * 3 / 2
        });
        assert!(
            passed,
            "n={n} attrs={attrs}: engine vs naive min-of-{runs} never within 1.5×: {attempts:?}"
        );
    }
}
