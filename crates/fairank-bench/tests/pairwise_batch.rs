//! Regression bench for the batched EMD backend: on the tracked
//! 10k-row / 8-attribute reference space, the closed-form batched backend
//! must resolve the search's pairwise aggregations with at least 4× fewer
//! memo/EMD evaluations (`emd_calls + emd_cache_hits`) than the per-pair
//! memo walk — with search results unchanged to the last bit. Emits
//! `BENCH_pairwise.json` (the committed baseline at the workspace root; CI
//! runs the smoke shape via `FAIRANK_BENCH_SMOKE=1` and uploads the JSON
//! as an artifact, like `BENCH_quantify.json`).
//!
//! Output path override: `BENCH_PAIRWISE_OUT=<path>` (relative paths
//! resolve against the workspace root).

use std::path::PathBuf;
use std::time::Instant;

use fairank_bench::synthetic_space;
use fairank_core::emd::{Emd, EmdBackendKind};
use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::{Quantify, QuantifyOutcome};
use serde::Serialize;

/// One (backend, QUANTIFY run) measurement.
#[derive(Debug, Serialize)]
struct BackendRecord {
    backend: String,
    wall_ms: f64,
    emd_calls: u64,
    emd_cache_hits: u64,
    /// `emd_calls + emd_cache_hits`: every pair-level resolution that went
    /// through the memo — the per-pair walk the batched backend replaces.
    pairwise_evaluations: u64,
    pairwise_batches: u64,
    unfairness: f64,
    partitions: u64,
}

/// The emitted report.
#[derive(Debug, Serialize)]
struct BenchReport {
    experiment: String,
    smoke: bool,
    n: u64,
    attrs: u64,
    cardinality: u64,
    /// Per-pair evaluations divided by batched evaluations (≥ 4 required).
    evaluation_reduction: f64,
    records: Vec<BackendRecord>,
}

fn evaluations(outcome: &QuantifyOutcome) -> u64 {
    (outcome.stats.emd_calls + outcome.stats.emd_cache_hits) as u64
}

fn out_path(smoke: bool) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    match std::env::var_os("BENCH_PAIRWISE_OUT") {
        Some(p) => {
            let p = PathBuf::from(p);
            if p.is_absolute() {
                p
            } else {
                root.join(p)
            }
        }
        None if smoke => root.join("BENCH_pairwise.smoke.json"),
        None => root.join("BENCH_pairwise.json"),
    }
}

#[test]
fn batched_backend_does_4x_fewer_pairwise_evaluations() {
    let smoke = std::env::var_os("FAIRANK_BENCH_SMOKE").is_some();
    // The smoke shape keeps the 8-attribute depth (that is what drives the
    // fine partitioning whose repeated leaf contents the batch dedups) and
    // shrinks the population so CI finishes in well under a second.
    let (n, attrs, card) = if smoke {
        (2_000usize, 8usize, 3u32)
    } else {
        (10_000, 8, 3)
    };
    let space = synthetic_space(n, attrs, card, 0.3, 7);

    let mut records = Vec::new();
    let mut outcomes = Vec::new();
    for kind in [
        EmdBackendKind::OneD,
        EmdBackendKind::Batched,
        EmdBackendKind::Kernel,
    ] {
        let quantify =
            Quantify::new(FairnessCriterion::default().with_emd(Emd::new(kind)));
        let start = Instant::now();
        let outcome = quantify.run_space(&space).expect("quantify runs");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        records.push(BackendRecord {
            backend: kind.name().to_string(),
            wall_ms,
            emd_calls: outcome.stats.emd_calls as u64,
            emd_cache_hits: outcome.stats.emd_cache_hits as u64,
            pairwise_evaluations: evaluations(&outcome),
            pairwise_batches: outcome.stats.pairwise_batches as u64,
            unfairness: outcome.unfairness,
            partitions: outcome.partitions.len() as u64,
        });
        outcomes.push(outcome);
    }
    let (per_pair, batched, kernel) = (&outcomes[0], &outcomes[1], &outcomes[2]);

    // Unchanged search results, to the last bit.
    for other in [batched, kernel] {
        assert_eq!(per_pair.unfairness.to_bits(), other.unfairness.to_bits());
        assert_eq!(per_pair.partitions, other.partitions);
        assert_eq!(per_pair.tree, other.tree);
    }
    // The SoA kernel folds the same distinct pairs the batched backend does.
    assert_eq!(batched.stats, kernel.stats);

    // The acceptance bar: ≥ 4× fewer memo/EMD evaluations.
    let walk = evaluations(per_pair);
    let batch = evaluations(batched);
    assert!(
        batch * 4 <= walk,
        "batched backend did {batch} pairwise evaluations vs {walk} for the \
         per-pair walk (need ≥ 4× fewer)"
    );
    assert!(batched.stats.pairwise_batches > 0);
    assert_eq!(per_pair.stats.pairwise_batches, 0);

    let report = BenchReport {
        experiment: "bench_pairwise".to_string(),
        smoke,
        n: n as u64,
        attrs: attrs as u64,
        cardinality: card as u64,
        evaluation_reduction: walk as f64 / batch.max(1) as f64,
        records,
    };
    let path = out_path(smoke);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).expect("report is writable");
    println!(
        "pairwise evaluations: per-pair {walk} vs batched {batch} \
         ({:.1}× reduction). Wrote {}.",
        walk as f64 / batch.max(1) as f64,
        path.display()
    );
}
