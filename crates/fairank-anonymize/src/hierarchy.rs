//! Value generalization hierarchies (VGHs).
//!
//! A hierarchy maps each base value of an attribute through successively
//! coarser levels: level 0 is the identity, the top level maps everything
//! to `*` (full suppression). ARX ships such hierarchies as CSV files; here
//! they are built programmatically — explicitly, from grouping maps, or
//! automatically for integers (widening intervals).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{AnonError, Result};

/// A generalization hierarchy for one attribute.
///
/// Internally: the distinct base values, and for each level a vector of
/// generalized labels aligned with the base values. Level 0 is always the
/// identity and the last level maps every value to `*`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    base: Vec<String>,
    /// `levels[l][i]` is the generalization of `base[i]` at level `l`.
    levels: Vec<Vec<String>>,
}

impl Hierarchy {
    /// Builds a hierarchy from explicit levels. `levels[0]` must equal the
    /// base values; a final all-`*` level is appended automatically if
    /// missing. Each level must be a (weak) coarsening of the previous one:
    /// two values mapped together stay together at higher levels.
    pub fn from_levels(base: Vec<String>, mut levels: Vec<Vec<String>>) -> Result<Self> {
        if base.is_empty() {
            return Err(AnonError::InvalidHierarchy("no base values".into()));
        }
        if levels.is_empty() || levels[0] != base {
            return Err(AnonError::InvalidHierarchy(
                "level 0 must be the identity over the base values".into(),
            ));
        }
        for (l, level) in levels.iter().enumerate() {
            if level.len() != base.len() {
                return Err(AnonError::InvalidHierarchy(format!(
                    "level {l} has {} labels for {} base values",
                    level.len(),
                    base.len()
                )));
            }
        }
        // Coarsening check.
        for w in levels.windows(2) {
            let (fine, coarse) = (&w[0], &w[1]);
            let mut mapping: BTreeMap<&str, &str> = BTreeMap::new();
            for (f, c) in fine.iter().zip(coarse) {
                match mapping.get(f.as_str()) {
                    Some(&existing) if existing != c.as_str() => {
                        return Err(AnonError::InvalidHierarchy(format!(
                            "values generalized to {f:?} split apart at the next level \
                             ({existing:?} vs {c:?})"
                        )));
                    }
                    _ => {
                        mapping.insert(f, c);
                    }
                }
            }
        }
        let top_is_star = levels
            .last()
            .is_some_and(|l| l.iter().all(|v| v == "*"));
        if !top_is_star {
            levels.push(vec!["*".to_string(); base.len()]);
        }
        Ok(Hierarchy { base, levels })
    }

    /// Builds a two-step hierarchy (base → groups → `*`) from a grouping
    /// map; unlisted values keep themselves at level 1.
    pub fn from_groups<S: AsRef<str>>(
        base: Vec<String>,
        groups: &[(S, S)], // (base value, group label)
    ) -> Result<Self> {
        let level1: Vec<String> = base
            .iter()
            .map(|v| {
                groups
                    .iter()
                    .find(|(b, _)| b.as_ref() == v)
                    .map(|(_, g)| g.as_ref().to_string())
                    .unwrap_or_else(|| v.clone())
            })
            .collect();
        Hierarchy::from_levels(base.clone(), vec![base, level1])
    }

    /// Builds an interval hierarchy for integers: level 1 buckets of
    /// `base_width`, each further level doubling the width, until one
    /// interval covers everything (then `*`).
    pub fn for_integers(values: &[i64], base_width: i64) -> Result<Self> {
        if values.is_empty() {
            return Err(AnonError::InvalidHierarchy("no values".into()));
        }
        if base_width <= 0 {
            return Err(AnonError::InvalidHierarchy(
                "base width must be positive".into(),
            ));
        }
        let mut distinct: Vec<i64> = values.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let base: Vec<String> = distinct.iter().map(|v| v.to_string()).collect();
        let min = distinct[0];
        let max = *distinct.last().expect("non-empty");
        let mut levels = vec![base.clone()];
        let mut width = base_width;
        loop {
            let level: Vec<String> = distinct
                .iter()
                .map(|&v| {
                    let lo = (v - min).div_euclid(width) * width + min;
                    format!("[{},{})", lo, lo + width)
                })
                .collect();
            let one_bucket = level.iter().all(|l| l == &level[0]);
            levels.push(level);
            if one_bucket || width > max - min {
                break;
            }
            width *= 2;
        }
        Hierarchy::from_levels(base, levels)
    }

    /// The distinct base values this hierarchy covers.
    pub fn base_values(&self) -> &[String] {
        &self.base
    }

    /// Number of levels, including identity (0) and suppression (top).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The generalization of `value` at `level`; `None` if the value is not
    /// covered or the level is out of range.
    pub fn generalize(&self, value: &str, level: usize) -> Option<&str> {
        let idx = self.base.iter().position(|b| b == value)?;
        self.levels.get(level).map(|l| l[idx].as_str())
    }

    /// Number of distinct labels at `level` (how much resolution remains).
    pub fn distinct_at(&self, level: usize) -> usize {
        let Some(level) = self.levels.get(level) else {
            return 0;
        };
        let mut labels: Vec<&str> = level.iter().map(String::as_str).collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn country_hierarchy() -> Hierarchy {
        Hierarchy::from_levels(
            vec!["France".into(), "Germany".into(), "India".into(), "Japan".into()],
            vec![
                vec!["France".into(), "Germany".into(), "India".into(), "Japan".into()],
                vec!["Europe".into(), "Europe".into(), "Asia".into(), "Asia".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn star_level_is_appended() {
        let h = country_hierarchy();
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.generalize("France", 0), Some("France"));
        assert_eq!(h.generalize("France", 1), Some("Europe"));
        assert_eq!(h.generalize("France", 2), Some("*"));
        assert_eq!(h.generalize("Mars", 0), None);
        assert_eq!(h.generalize("France", 9), None);
    }

    #[test]
    fn distinct_counts_shrink() {
        let h = country_hierarchy();
        assert_eq!(h.distinct_at(0), 4);
        assert_eq!(h.distinct_at(1), 2);
        assert_eq!(h.distinct_at(2), 1);
        assert_eq!(h.distinct_at(7), 0);
    }

    #[test]
    fn validation_rejects_identity_mismatch_and_ragged_levels() {
        let base = vec!["a".to_string(), "b".to_string()];
        assert!(Hierarchy::from_levels(base.clone(), vec![vec!["x".into(), "y".into()]]).is_err());
        assert!(Hierarchy::from_levels(
            base.clone(),
            vec![base.clone(), vec!["g".into()]]
        )
        .is_err());
        assert!(Hierarchy::from_levels(vec![], vec![]).is_err());
    }

    #[test]
    fn validation_rejects_non_coarsening() {
        // a,b merge at level 1 but split again at level 2.
        let base: Vec<String> = vec!["a".into(), "b".into()];
        let err = Hierarchy::from_levels(
            base.clone(),
            vec![
                base,
                vec!["g".into(), "g".into()],
                vec!["x".into(), "y".into()],
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("split apart"));
    }

    #[test]
    fn group_hierarchy_defaults_unlisted_values() {
        let h = Hierarchy::from_groups(
            vec!["en".into(), "fr".into(), "de".into()],
            &[("fr", "continental"), ("de", "continental")],
        )
        .unwrap();
        assert_eq!(h.generalize("en", 1), Some("en"));
        assert_eq!(h.generalize("fr", 1), Some("continental"));
    }

    #[test]
    fn integer_hierarchy_widens_until_star() {
        let years = [1963, 1976, 1982, 1992, 2004];
        let h = Hierarchy::for_integers(&years, 10).unwrap();
        // Level 1: decades anchored at the minimum (1963).
        assert_eq!(h.generalize("1963", 1), Some("[1963,1973)"));
        assert_eq!(h.generalize("1976", 1), Some("[1973,1983)"));
        assert_eq!(h.generalize("2004", 1), Some("[2003,2013)"));
        // Level 2: 20-year buckets.
        assert_eq!(h.generalize("1963", 2), Some("[1963,1983)"));
        // Top level is star.
        let top = h.num_levels() - 1;
        assert_eq!(h.generalize("1992", top), Some("*"));
        // Monotone resolution loss.
        for l in 1..h.num_levels() {
            assert!(h.distinct_at(l) <= h.distinct_at(l - 1));
        }
    }

    #[test]
    fn integer_hierarchy_validation() {
        assert!(Hierarchy::for_integers(&[], 10).is_err());
        assert!(Hierarchy::for_integers(&[1], 0).is_err());
        // Single value: level 1 already collapses to one bucket.
        let h = Hierarchy::for_integers(&[5], 10).unwrap();
        assert_eq!(h.generalize("5", 1), Some("[5,15)"));
    }

    #[test]
    fn serde_round_trip() {
        let h = country_hierarchy();
        let json = serde_json::to_string(&h).unwrap();
        let back: Hierarchy = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
