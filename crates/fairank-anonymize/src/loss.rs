//! Information-loss metrics for anonymized datasets.
//!
//! Experiment E5 reports the privacy/utility side of fairness-under-
//! anonymization: how much resolution each `k` costs. Three standard
//! metrics are provided:
//!
//! * **Precision** (Sweeney): `1 − avg(level / (levels − 1))` over the
//!   quasi-identifiers — 1.0 means untouched, 0.0 means fully suppressed.
//! * **Discernibility** (Bayardo & Agrawal): `Σ |EC|²` plus `n · suppressed`
//!   — lower is better, minimized by many small classes.
//! * **Average class size ratio** (`C_avg`): `(n / #classes) / k` — close
//!   to 1.0 means classes are as small as `k` allows.

use fairank_data::dataset::Dataset;

use crate::error::Result;
use crate::hierarchy::Hierarchy;
use crate::kanon::equivalence_classes;

/// Sweeney's precision metric for a full-domain generalization, given the
/// chosen `(hierarchy, level)` per quasi-identifier. Returns 1.0 for an
/// empty assignment list.
pub fn precision(assignments: &[(&Hierarchy, usize)]) -> f64 {
    if assignments.is_empty() {
        return 1.0;
    }
    let total: f64 = assignments
        .iter()
        .map(|(h, level)| {
            let max = (h.num_levels() - 1).max(1);
            *level as f64 / max as f64
        })
        .sum();
    1.0 - total / assignments.len() as f64
}

/// The discernibility metric: `Σ |EC|² + n · suppressed`.
pub fn discernibility(dataset: &Dataset, qis: &[&str], suppressed: usize) -> Result<u64> {
    let classes = equivalence_classes(dataset, qis)?;
    let n = (dataset.num_rows() + suppressed) as u64;
    let class_cost: u64 = classes.iter().map(|c| (c.len() * c.len()) as u64).sum();
    Ok(class_cost + n * suppressed as u64)
}

/// The normalized average equivalence class size, `(n / #classes) / k`.
/// Returns `f64::INFINITY` when no class exists.
pub fn average_class_ratio(dataset: &Dataset, qis: &[&str], k: usize) -> Result<f64> {
    let classes = equivalence_classes(dataset, qis)?;
    if classes.is_empty() || k == 0 {
        return Ok(f64::INFINITY);
    }
    Ok(dataset.num_rows() as f64 / classes.len() as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_data::schema::AttributeRole;

    fn dataset() -> Dataset {
        Dataset::builder()
            .categorical(
                "g",
                AttributeRole::Protected,
                &["a", "a", "b", "b", "b", "b"],
            )
            .float("s", AttributeRole::Observed, vec![0.5; 6])
            .build()
            .unwrap()
    }

    #[test]
    fn precision_extremes() {
        let h = Hierarchy::for_integers(&[1, 2, 3, 4, 5, 6, 7, 8], 2).unwrap();
        assert_eq!(precision(&[]), 1.0);
        assert_eq!(precision(&[(&h, 0)]), 1.0);
        let top = h.num_levels() - 1;
        assert!(precision(&[(&h, top)]).abs() < 1e-12);
        let mid = precision(&[(&h, 1)]);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn precision_averages_over_attributes() {
        let h = Hierarchy::from_levels(
            vec!["x".into(), "y".into()],
            vec![vec!["x".into(), "y".into()]],
        )
        .unwrap(); // 2 levels: identity, star
        let p = precision(&[(&h, 0), (&h, 1)]);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn discernibility_counts_squares() {
        let ds = dataset();
        // Classes: {a,a} and {b,b,b,b} → 4 + 16 = 20.
        assert_eq!(discernibility(&ds, &["g"], 0).unwrap(), 20);
        // Suppression penalty: n = 6 kept + 2 suppressed = 8 → +16.
        assert_eq!(discernibility(&ds, &["g"], 2).unwrap(), 20 + 16);
    }

    #[test]
    fn average_class_ratio_basics() {
        let ds = dataset();
        // 6 rows, 2 classes, k=2 → (6/2)/2 = 1.5.
        assert!((average_class_ratio(&ds, &["g"], 2).unwrap() - 1.5).abs() < 1e-12);
        assert!(average_class_ratio(&ds, &["g"], 0).unwrap().is_infinite());
    }
}
