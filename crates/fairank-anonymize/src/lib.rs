//! # fairank-anonymize
//!
//! Data-transparency substrate for FaiRank: a from-scratch substitute for
//! the ARX k-anonymization tool the paper integrates with ("We integrate
//! FaiRank with the k-anonymization ARX tool and explore fairness for
//! anonymized datasets", §1).
//!
//! FaiRank only consumes ARX's *output* — a dataset whose quasi-identifiers
//! have been generalized until every combination occurs at least `k` times.
//! This crate produces exactly that artifact with two classic algorithms:
//!
//! * [`datafly`](mod@datafly) — greedy full-domain generalization (Sweeney's Datafly):
//!   repeatedly generalize the quasi-identifier with the most distinct
//!   values, then suppress the few remaining outliers.
//! * [`mondrian`](mod@mondrian) — multidimensional median-cut partitioning (LeFevre et
//!   al.): recursively split the population on the widest attribute while
//!   every part keeps at least `k` members, then recode each class.
//!
//! Plus [`ldiv`] (l-diversity over a sensitive attribute) and [`loss`]
//! (information-loss metrics: precision, discernibility, average class
//! size) so experiments can report the privacy/utility side of the
//! fairness-under-anonymization trade-off (experiment E5).

pub mod datafly;
pub mod error;
pub mod hierarchy;
pub mod kanon;
pub mod lattice;
pub mod ldiv;
pub mod loss;
pub mod mondrian;

pub use datafly::{datafly, DataflyConfig};
pub use error::{AnonError, Result};
pub use hierarchy::Hierarchy;
pub use lattice::{incognito, IncognitoOutcome, Lattice};
pub use kanon::{apply_generalization, equivalence_classes, is_k_anonymous};
pub use mondrian::{mondrian, MondrianConfig};
