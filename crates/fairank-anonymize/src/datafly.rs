//! The Datafly algorithm: greedy full-domain generalization.
//!
//! Sweeney's Datafly reaches k-anonymity by repeatedly generalizing the
//! quasi-identifier with the most distinct remaining values by one
//! hierarchy level, until the number of rows violating k-anonymity is small
//! enough to suppress outright. It is the workhorse ARX-style algorithm the
//! FaiRank demo relies on for its data-transparency scenarios.

use fairank_data::dataset::Dataset;

use crate::error::{AnonError, Result};
use crate::hierarchy::Hierarchy;
use crate::kanon::{
    apply_generalization, check_qis, equivalence_classes, suppress_small_classes,
};

/// Configuration for [`datafly`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataflyConfig {
    /// The anonymity parameter: every remaining QI combination must occur
    /// at least this many times.
    pub k: usize,
    /// Maximum fraction of rows that may be suppressed instead of
    /// generalizing further (ARX's suppression limit; Datafly's original
    /// threshold is "fewer than k rows").
    pub max_suppression: f64,
}

impl Default for DataflyConfig {
    fn default() -> Self {
        DataflyConfig {
            k: 2,
            max_suppression: 0.02,
        }
    }
}

/// The result of a Datafly run.
#[derive(Debug, Clone)]
pub struct DataflyOutcome {
    /// The k-anonymous dataset (violating rows removed).
    pub dataset: Dataset,
    /// The generalization level chosen per quasi-identifier.
    pub levels: Vec<(String, usize)>,
    /// Number of suppressed rows.
    pub suppressed: usize,
}

/// Builds default hierarchies for the given QIs: widening intervals for
/// integer columns (base width 10), value → `*` for categoricals.
pub fn auto_hierarchies(dataset: &Dataset, qis: &[&str]) -> Result<Vec<(String, Hierarchy)>> {
    check_qis(dataset, qis)?;
    let mut out = Vec::with_capacity(qis.len());
    for &name in qis {
        let col = dataset.column(name).expect("validated");
        let hierarchy = if let Some(ints) = col.as_integer() {
            Hierarchy::for_integers(ints, 10)?
        } else {
            let (_, labels) = col.as_categorical().expect("non-float QI");
            Hierarchy::from_levels(labels.to_vec(), vec![labels.to_vec()])?
        };
        out.push((name.to_string(), hierarchy));
    }
    Ok(out)
}

/// Runs Datafly over `dataset` with the given quasi-identifiers and
/// hierarchies. Columns without a hierarchy get one from
/// [`auto_hierarchies`].
pub fn datafly(
    dataset: &Dataset,
    qis: &[&str],
    hierarchies: &[(String, Hierarchy)],
    config: DataflyConfig,
) -> Result<DataflyOutcome> {
    if config.k == 0 {
        return Err(AnonError::BadParameter("k must be at least 1".into()));
    }
    if config.k > dataset.num_rows() {
        return Err(AnonError::BadParameter(format!(
            "k = {} exceeds the population size {}",
            config.k,
            dataset.num_rows()
        )));
    }
    if !(0.0..=1.0).contains(&config.max_suppression) {
        return Err(AnonError::BadParameter(format!(
            "suppression limit {} is not a fraction",
            config.max_suppression
        )));
    }
    check_qis(dataset, qis)?;

    // Resolve hierarchies, falling back to automatic ones.
    let auto = auto_hierarchies(dataset, qis)?;
    let mut resolved: Vec<(&str, &Hierarchy)> = Vec::with_capacity(qis.len());
    for &name in qis {
        let h = hierarchies
            .iter()
            .find(|(n, _)| n == name)
            .or_else(|| auto.iter().find(|(n, _)| n == name))
            .map(|(_, h)| h)
            .expect("auto hierarchy exists for every QI");
        resolved.push((name, h));
    }

    let allowance = (config.max_suppression * dataset.num_rows() as f64).floor() as usize;
    let mut levels = vec![0usize; qis.len()];

    loop {
        let assignments: Vec<(&str, &Hierarchy, usize)> = resolved
            .iter()
            .zip(&levels)
            .map(|(&(n, h), &l)| (n, h, l))
            .collect();
        let current = apply_generalization(dataset, &assignments)?;
        let classes = equivalence_classes(&current, qis)?;
        let violating: usize = classes
            .iter()
            .filter(|c| c.len() < config.k)
            .map(Vec::len)
            .sum();
        if violating <= allowance {
            let (kept, suppressed) = suppress_small_classes(&current, qis, config.k)?;
            return Ok(DataflyOutcome {
                dataset: kept,
                levels: qis
                    .iter()
                    .zip(&levels)
                    .map(|(&n, &l)| (n.to_string(), l))
                    .collect(),
                suppressed,
            });
        }
        // Generalize the QI with the most distinct values that can still be
        // generalized.
        let next = (0..qis.len())
            .filter(|&i| levels[i] + 1 < resolved[i].1.num_levels())
            .max_by_key(|&i| {
                let col = &current.column(qis[i]).expect("QI exists").data;
                let mut distinct: Vec<String> =
                    (0..current.num_rows()).map(|r| col.render(r)).collect();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len()
            });
        match next {
            Some(i) => levels[i] += 1,
            None => {
                return Err(AnonError::Unsatisfiable(format!(
                    "{violating} rows still violate {}-anonymity at full generalization \
                     and the suppression allowance is {allowance}",
                    config.k
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kanon::is_k_anonymous;
    use fairank_data::schema::AttributeRole;

    fn dataset() -> Dataset {
        Dataset::builder()
            .categorical(
                "gender",
                AttributeRole::Protected,
                &["F", "F", "F", "M", "M", "M", "M", "F"],
            )
            .integer(
                "year",
                AttributeRole::Protected,
                vec![1990, 1991, 1992, 1976, 1977, 1978, 1990, 1976],
            )
            .float(
                "rating",
                AttributeRole::Observed,
                vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn reaches_k_anonymity() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let out = datafly(&ds, &qis, &[], DataflyConfig { k: 2, max_suppression: 0.2 })
            .unwrap();
        assert!(is_k_anonymous(&out.dataset, &qis, 2).unwrap());
        // Something had to generalize: raw data has singleton classes.
        let total_levels: usize = out.levels.iter().map(|(_, l)| l).sum();
        assert!(total_levels > 0 || out.suppressed > 0);
    }

    #[test]
    fn zero_suppression_forces_generalization() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let out = datafly(&ds, &qis, &[], DataflyConfig { k: 2, max_suppression: 0.0 })
            .unwrap();
        assert_eq!(out.suppressed, 0);
        assert_eq!(out.dataset.num_rows(), 8);
        assert!(is_k_anonymous(&out.dataset, &qis, 2).unwrap());
    }

    #[test]
    fn larger_k_generalizes_more() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let lo = datafly(&ds, &qis, &[], DataflyConfig { k: 2, max_suppression: 0.0 })
            .unwrap();
        let hi = datafly(&ds, &qis, &[], DataflyConfig { k: 4, max_suppression: 0.0 })
            .unwrap();
        let sum = |o: &DataflyOutcome| o.levels.iter().map(|(_, l)| *l).sum::<usize>();
        assert!(sum(&hi) >= sum(&lo));
        assert!(is_k_anonymous(&hi.dataset, &qis, 4).unwrap());
    }

    #[test]
    fn custom_hierarchy_is_respected() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let years: Vec<i64> = ds.column("year").unwrap().as_integer().unwrap().to_vec();
        let h = Hierarchy::for_integers(&years, 50).unwrap();
        let out = datafly(
            &ds,
            &qis,
            &[("year".to_string(), h)],
            DataflyConfig { k: 2, max_suppression: 0.0 },
        )
        .unwrap();
        // With 50-year buckets one level of year generalization suffices to
        // merge everything.
        let year_level = out.levels.iter().find(|(n, _)| n == "year").unwrap().1;
        assert!(year_level <= 2);
    }

    #[test]
    fn parameter_validation() {
        let ds = dataset();
        let qis = ["gender"];
        assert!(datafly(&ds, &qis, &[], DataflyConfig { k: 0, max_suppression: 0.0 }).is_err());
        assert!(
            datafly(&ds, &qis, &[], DataflyConfig { k: 99, max_suppression: 0.0 }).is_err()
        );
        assert!(datafly(
            &ds,
            &qis,
            &[],
            DataflyConfig { k: 2, max_suppression: 1.5 }
        )
        .is_err());
        assert!(datafly(&ds, &[], &[], DataflyConfig::default()).is_err());
    }

    #[test]
    fn observed_columns_survive() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let out = datafly(&ds, &qis, &[], DataflyConfig { k: 2, max_suppression: 0.0 })
            .unwrap();
        use fairank_core::scoring::ObservedTable;
        assert!(out.dataset.observed_column("rating").is_some());
    }

    #[test]
    fn auto_hierarchies_cover_qi_types() {
        let ds = dataset();
        let hs = auto_hierarchies(&ds, &["gender", "year"]).unwrap();
        assert_eq!(hs.len(), 2);
        // gender: identity + star.
        assert_eq!(hs[0].1.num_levels(), 2);
        // year: several interval levels.
        assert!(hs[1].1.num_levels() >= 3);
    }
}
