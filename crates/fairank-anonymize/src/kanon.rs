//! k-anonymity primitives: equivalence classes, checks, generalization
//! application.
//!
//! A dataset is *k-anonymous* with respect to a set of quasi-identifier
//! (QI) columns when every combination of QI values that occurs, occurs at
//! least `k` times — each individual hides in a crowd of at least `k`.

use std::collections::HashMap;

use fairank_data::column::ColumnData;
use fairank_data::dataset::Dataset;
use fairank_data::schema::AttributeRole;

use crate::error::{AnonError, Result};
use crate::hierarchy::Hierarchy;

/// Resolves the QI columns, rejecting unknown names and float columns.
pub(crate) fn check_qis<'a>(dataset: &'a Dataset, qis: &[&str]) -> Result<Vec<&'a ColumnData>> {
    if qis.is_empty() {
        return Err(AnonError::BadQuasiIdentifier(
            "no quasi-identifiers given".into(),
        ));
    }
    let mut out = Vec::with_capacity(qis.len());
    for &name in qis {
        let col = dataset
            .column(name)
            .ok_or_else(|| AnonError::BadQuasiIdentifier(format!("unknown column {name:?}")))?;
        if matches!(col.data, ColumnData::Float(_)) {
            return Err(AnonError::BadQuasiIdentifier(format!(
                "column {name:?} is fractional; discretize before anonymizing"
            )));
        }
        out.push(&col.data);
    }
    Ok(out)
}

/// Groups rows by their QI value combination. Classes come out in
/// first-appearance order; row order within a class is ascending.
pub fn equivalence_classes(dataset: &Dataset, qis: &[&str]) -> Result<Vec<Vec<u32>>> {
    let cols = check_qis(dataset, qis)?;
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut classes: Vec<Vec<u32>> = Vec::new();
    let mut key = String::new();
    for row in 0..dataset.num_rows() {
        key.clear();
        for col in &cols {
            key.push_str(&col.render(row));
            key.push('\u{1f}');
        }
        match index.get(key.as_str()) {
            Some(&ci) => classes[ci].push(row as u32),
            None => {
                index.insert(key.clone(), classes.len());
                classes.push(vec![row as u32]);
            }
        }
    }
    Ok(classes)
}

/// True when every equivalence class has at least `k` members.
pub fn is_k_anonymous(dataset: &Dataset, qis: &[&str], k: usize) -> Result<bool> {
    if k == 0 {
        return Err(AnonError::BadParameter("k must be at least 1".into()));
    }
    Ok(equivalence_classes(dataset, qis)?
        .iter()
        .all(|c| c.len() >= k))
}

/// The size of the smallest equivalence class (0 for an empty dataset).
pub fn min_class_size(dataset: &Dataset, qis: &[&str]) -> Result<usize> {
    Ok(equivalence_classes(dataset, qis)?
        .iter()
        .map(Vec::len)
        .min()
        .unwrap_or(0))
}

/// Applies generalization levels to the given QI columns, producing a new
/// dataset whose QI columns are categorical generalized labels. Columns not
/// listed are copied through unchanged. Roles are preserved.
pub fn apply_generalization(
    dataset: &Dataset,
    assignments: &[(&str, &Hierarchy, usize)],
) -> Result<Dataset> {
    // Validate first.
    for (name, hierarchy, level) in assignments {
        let col = dataset
            .column(name)
            .ok_or_else(|| AnonError::BadQuasiIdentifier(format!("unknown column {name:?}")))?;
        if *level >= hierarchy.num_levels() {
            return Err(AnonError::InvalidHierarchy(format!(
                "level {level} out of range for {name:?} ({} levels)",
                hierarchy.num_levels()
            )));
        }
        if matches!(col.data, ColumnData::Float(_)) {
            return Err(AnonError::BadQuasiIdentifier(format!(
                "column {name:?} is fractional"
            )));
        }
    }
    let mut builder = Dataset::builder();
    for (field, col) in dataset.schema().fields().iter().zip(dataset.columns()) {
        let assignment = assignments.iter().find(|(n, _, _)| *n == field.name);
        builder = match assignment {
            Some((_, hierarchy, level)) => {
                let mut values = Vec::with_capacity(dataset.num_rows());
                for row in 0..dataset.num_rows() {
                    let raw = col.data.render(row);
                    let gen_label = hierarchy.generalize(&raw, *level).ok_or_else(|| {
                        AnonError::InvalidHierarchy(format!(
                            "value {raw:?} of column {:?} is not covered by its hierarchy",
                            field.name
                        ))
                    })?;
                    values.push(gen_label.to_string());
                }
                builder.categorical(field.name.clone(), field.role, &values)
            }
            None => match &col.data {
                ColumnData::Categorical { codes, labels } => {
                    let values: Vec<&str> = codes
                        .iter()
                        .map(|&c| labels[c as usize].as_str())
                        .collect();
                    builder.categorical(field.name.clone(), field.role, &values)
                }
                ColumnData::Float(v) => builder.float(field.name.clone(), field.role, v.clone()),
                ColumnData::Integer(v) => {
                    builder.integer(field.name.clone(), field.role, v.clone())
                }
            },
        };
    }
    Ok(builder.build()?)
}

/// Removes the rows of every equivalence class smaller than `k`
/// (suppression). Returns the surviving dataset and the number of
/// suppressed rows.
pub fn suppress_small_classes(
    dataset: &Dataset,
    qis: &[&str],
    k: usize,
) -> Result<(Dataset, usize)> {
    let classes = equivalence_classes(dataset, qis)?;
    let mut keep: Vec<u32> = Vec::with_capacity(dataset.num_rows());
    let mut suppressed = 0usize;
    for class in &classes {
        if class.len() >= k {
            keep.extend_from_slice(class);
        } else {
            suppressed += class.len();
        }
    }
    keep.sort_unstable();
    let kept = if keep.is_empty() {
        // Produce an empty dataset with the same schema by selecting no rows.
        dataset.select_rows(&[])?
    } else {
        dataset.select_rows(&keep)?
    };
    Ok((kept, suppressed))
}

/// Convenience: does this dataset treat the column as a quasi-identifier
/// candidate (protected and non-float)?
pub fn default_quasi_identifiers(dataset: &Dataset) -> Vec<&str> {
    dataset
        .schema()
        .fields()
        .iter()
        .filter(|f| f.role == AttributeRole::Protected)
        .map(|f| f.name.as_str())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::builder()
            .categorical(
                "gender",
                AttributeRole::Protected,
                &["F", "F", "M", "M", "M", "F"],
            )
            .integer(
                "year",
                AttributeRole::Protected,
                vec![1990, 1990, 1976, 1976, 1990, 1990],
            )
            .float(
                "rating",
                AttributeRole::Observed,
                vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn classes_group_identical_qi_rows() {
        let ds = dataset();
        let classes = equivalence_classes(&ds, &["gender", "year"]).unwrap();
        // (F,1990): rows 0,1,5; (M,1976): rows 2,3; (M,1990): row 4.
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0], vec![0, 1, 5]);
        assert_eq!(classes[1], vec![2, 3]);
        assert_eq!(classes[2], vec![4]);
    }

    #[test]
    fn k_anonymity_check() {
        let ds = dataset();
        assert!(is_k_anonymous(&ds, &["gender", "year"], 1).unwrap());
        assert!(!is_k_anonymous(&ds, &["gender", "year"], 2).unwrap());
        assert!(is_k_anonymous(&ds, &["gender"], 3).unwrap());
        assert_eq!(min_class_size(&ds, &["gender", "year"]).unwrap(), 1);
        assert!(is_k_anonymous(&ds, &["gender"], 0).is_err());
    }

    #[test]
    fn qi_validation() {
        let ds = dataset();
        assert!(equivalence_classes(&ds, &[]).is_err());
        assert!(equivalence_classes(&ds, &["ghost"]).is_err());
        assert!(equivalence_classes(&ds, &["rating"]).is_err());
    }

    #[test]
    fn generalization_merges_classes() {
        let ds = dataset();
        let years: Vec<i64> = ds.column("year").unwrap().as_integer().unwrap().to_vec();
        let h = Hierarchy::for_integers(&years, 20).unwrap();
        let g = apply_generalization(&ds, &[("year", &h, 1)]).unwrap();
        // 1976 and 1990 both fall in [1976,1996).
        let col = g.column("year").unwrap();
        assert_eq!(col.data.render(0), "[1976,1996)");
        assert!(is_k_anonymous(&g, &["gender", "year"], 2).unwrap());
        // Unlisted columns survive untouched.
        assert_eq!(g.column("rating").unwrap().as_float().unwrap()[3], 0.4);
        // Role preserved.
        assert_eq!(
            g.schema().field("year").unwrap().role,
            AttributeRole::Protected
        );
    }

    #[test]
    fn generalization_level_bounds() {
        let ds = dataset();
        let years: Vec<i64> = ds.column("year").unwrap().as_integer().unwrap().to_vec();
        let h = Hierarchy::for_integers(&years, 20).unwrap();
        assert!(apply_generalization(&ds, &[("year", &h, 99)]).is_err());
        assert!(apply_generalization(&ds, &[("ghost", &h, 0)]).is_err());
        assert!(apply_generalization(&ds, &[("rating", &h, 0)]).is_err());
    }

    #[test]
    fn hierarchy_must_cover_all_values() {
        let ds = dataset();
        let h = Hierarchy::for_integers(&[1990], 10).unwrap();
        let err = apply_generalization(&ds, &[("year", &h, 1)]).unwrap_err();
        assert!(err.to_string().contains("not covered"));
    }

    #[test]
    fn suppression_removes_small_classes() {
        let ds = dataset();
        let (kept, suppressed) = suppress_small_classes(&ds, &["gender", "year"], 2).unwrap();
        assert_eq!(suppressed, 1); // row 4 (M,1990) was alone
        assert_eq!(kept.num_rows(), 5);
        assert!(is_k_anonymous(&kept, &["gender", "year"], 2).unwrap());
    }

    #[test]
    fn suppression_can_empty_the_dataset() {
        let ds = dataset();
        let (kept, suppressed) = suppress_small_classes(&ds, &["gender", "year"], 10).unwrap();
        assert_eq!(kept.num_rows(), 0);
        assert_eq!(suppressed, 6);
    }

    #[test]
    fn default_qis_are_the_protected_columns() {
        let ds = dataset();
        assert_eq!(default_quasi_identifiers(&ds), vec!["gender", "year"]);
    }
}
