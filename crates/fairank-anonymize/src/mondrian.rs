//! Mondrian multidimensional k-anonymization (LeFevre et al., ICDE 2006).
//!
//! Unlike full-domain generalization, Mondrian partitions the *population*:
//! it recursively median-splits on the quasi-identifier with the widest
//! spread, as long as both sides keep at least `k` rows, then recodes each
//! final class with range (integers) or set (categorical) labels. It
//! typically loses far less information than Datafly for the same `k` —
//! experiment E5 compares the fairness signal under both.

use fairank_data::column::ColumnData;
use fairank_data::dataset::Dataset;

use crate::error::{AnonError, Result};
use crate::kanon::check_qis;

/// Configuration for [`mondrian`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MondrianConfig {
    /// The anonymity parameter.
    pub k: usize,
}

/// The result of a Mondrian run.
#[derive(Debug, Clone)]
pub struct MondrianOutcome {
    /// The k-anonymous dataset (same rows, recoded QI columns).
    pub dataset: Dataset,
    /// Number of equivalence classes produced.
    pub classes: usize,
}

/// Per-row orderable view of one QI column: integers by value, categoricals
/// by the lexicographic rank of their label (deterministic).
struct OrderedQi<'a> {
    name: &'a str,
    /// Orderable key per row.
    keys: Vec<i64>,
    /// Renders a key back to a label fragment.
    data: &'a ColumnData,
}

impl<'a> OrderedQi<'a> {
    fn new(name: &'a str, data: &'a ColumnData) -> Self {
        let keys = match data {
            ColumnData::Integer(v) => v.clone(),
            ColumnData::Categorical { codes, labels } => {
                // Rank labels lexicographically so the median split is
                // meaningful and stable.
                let mut order: Vec<usize> = (0..labels.len()).collect();
                order.sort_by(|&a, &b| labels[a].cmp(&labels[b]));
                let mut rank = vec![0i64; labels.len()];
                for (r, &li) in order.iter().enumerate() {
                    rank[li] = r as i64;
                }
                codes.iter().map(|&c| rank[c as usize]).collect()
            }
            ColumnData::Float(_) => unreachable!("check_qis rejects floats"),
        };
        OrderedQi { name, keys, data }
    }

    /// Distinct key count among `rows`.
    fn width(&self, rows: &[u32]) -> usize {
        let mut vals: Vec<i64> = rows.iter().map(|&r| self.keys[r as usize]).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.len()
    }

    /// Recode label for a class of rows.
    fn class_label(&self, rows: &[u32]) -> String {
        match self.data {
            ColumnData::Integer(v) => {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for &r in rows {
                    lo = lo.min(v[r as usize]);
                    hi = hi.max(v[r as usize]);
                }
                if lo == hi {
                    lo.to_string()
                } else {
                    format!("[{lo},{hi}]")
                }
            }
            ColumnData::Categorical { codes, labels } => {
                let mut present: Vec<&str> =
                    rows.iter().map(|&r| labels[codes[r as usize] as usize].as_str()).collect();
                present.sort_unstable();
                present.dedup();
                if present.len() == 1 {
                    present[0].to_string()
                } else {
                    format!("{{{}}}", present.join(","))
                }
            }
            ColumnData::Float(_) => unreachable!(),
        }
    }
}

/// Runs Mondrian. The output keeps every row (no suppression) and recodes
/// the QI columns to class labels; all other columns pass through.
pub fn mondrian(dataset: &Dataset, qis: &[&str], config: MondrianConfig) -> Result<MondrianOutcome> {
    if config.k == 0 {
        return Err(AnonError::BadParameter("k must be at least 1".into()));
    }
    if config.k > dataset.num_rows() {
        return Err(AnonError::BadParameter(format!(
            "k = {} exceeds the population size {}",
            config.k,
            dataset.num_rows()
        )));
    }
    let cols = check_qis(dataset, qis)?;
    let ordered: Vec<OrderedQi> = qis
        .iter()
        .zip(&cols)
        .map(|(&n, &d)| OrderedQi::new(n, d))
        .collect();

    // Recursive median-cut.
    let mut classes: Vec<Vec<u32>> = Vec::new();
    let all_rows: Vec<u32> = (0..dataset.num_rows() as u32).collect();
    let mut stack = vec![all_rows];
    while let Some(rows) = stack.pop() {
        match best_split(&ordered, &rows, config.k) {
            Some((left, right)) => {
                stack.push(left);
                stack.push(right);
            }
            None => classes.push(rows),
        }
    }

    // Recode.
    let n = dataset.num_rows();
    let mut labels_per_qi: Vec<Vec<String>> = vec![vec![String::new(); n]; qis.len()];
    for class in &classes {
        for (qi_idx, qi) in ordered.iter().enumerate() {
            let label = qi.class_label(class);
            for &r in class {
                labels_per_qi[qi_idx][r as usize] = label.clone();
            }
        }
    }

    let mut builder = Dataset::builder();
    for (field, col) in dataset.schema().fields().iter().zip(dataset.columns()) {
        let qi_idx = ordered.iter().position(|q| q.name == field.name);
        builder = match qi_idx {
            Some(i) => builder.categorical(field.name.clone(), field.role, &labels_per_qi[i]),
            None => match &col.data {
                ColumnData::Categorical { codes, labels } => {
                    let values: Vec<&str> =
                        codes.iter().map(|&c| labels[c as usize].as_str()).collect();
                    builder.categorical(field.name.clone(), field.role, &values)
                }
                ColumnData::Float(v) => builder.float(field.name.clone(), field.role, v.clone()),
                ColumnData::Integer(v) => {
                    builder.integer(field.name.clone(), field.role, v.clone())
                }
            },
        };
    }
    Ok(MondrianOutcome {
        dataset: builder.build()?,
        classes: classes.len(),
    })
}

/// Finds the best allowable median split of `rows`: attributes in
/// decreasing width order; the split key is the median; rows strictly below
/// go left, the rest right. Returns `None` when no attribute yields two
/// sides of at least `k` rows.
fn best_split(qis: &[OrderedQi], rows: &[u32], k: usize) -> Option<(Vec<u32>, Vec<u32>)> {
    if rows.len() < 2 * k {
        return None;
    }
    let mut order: Vec<usize> = (0..qis.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(qis[i].width(rows)));
    for &qi_idx in &order {
        let qi = &qis[qi_idx];
        if qi.width(rows) < 2 {
            continue;
        }
        let mut keys: Vec<i64> = rows.iter().map(|&r| qi.keys[r as usize]).collect();
        keys.sort_unstable();
        let median = keys[keys.len() / 2];
        // Candidate thresholds: the median, nudged upward if the strict-less
        // split is lopsided (heavy ties).
        let mut candidates: Vec<i64> = vec![median];
        candidates.extend(keys.iter().copied().filter(|&v| v > median).min());
        for threshold in candidates {
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &r in rows {
                if qi.keys[r as usize] < threshold {
                    left.push(r);
                } else {
                    right.push(r);
                }
            }
            if left.len() >= k && right.len() >= k {
                return Some((left, right));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kanon::{equivalence_classes, is_k_anonymous};
    use fairank_data::schema::AttributeRole;

    fn dataset() -> Dataset {
        Dataset::builder()
            .categorical(
                "gender",
                AttributeRole::Protected,
                &["F", "F", "F", "F", "M", "M", "M", "M"],
            )
            .integer(
                "year",
                AttributeRole::Protected,
                vec![1960, 1970, 1980, 1990, 1961, 1971, 1981, 1991],
            )
            .float(
                "rating",
                AttributeRole::Observed,
                vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn output_is_k_anonymous_without_suppression() {
        let ds = dataset();
        let qis = ["gender", "year"];
        for k in [2, 3, 4] {
            let out = mondrian(&ds, &qis, MondrianConfig { k }).unwrap();
            assert_eq!(out.dataset.num_rows(), 8, "k={k}");
            assert!(is_k_anonymous(&out.dataset, &qis, k).unwrap(), "k={k}");
        }
    }

    #[test]
    fn classes_match_equivalence_classes() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let out = mondrian(&ds, &qis, MondrianConfig { k: 2 }).unwrap();
        let ecs = equivalence_classes(&out.dataset, &qis).unwrap();
        assert_eq!(ecs.len(), out.classes);
        assert!(ecs.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn k_equals_n_yields_one_class() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let out = mondrian(&ds, &qis, MondrianConfig { k: 8 }).unwrap();
        assert_eq!(out.classes, 1);
        // Everything recoded to the global ranges.
        let year = out.dataset.column("year").unwrap();
        assert_eq!(year.data.render(0), "[1960,1991]");
        let gender = out.dataset.column("gender").unwrap();
        assert_eq!(gender.data.render(0), "{F,M}");
    }

    #[test]
    fn small_k_preserves_more_detail_than_large_k() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let fine = mondrian(&ds, &qis, MondrianConfig { k: 2 }).unwrap();
        let coarse = mondrian(&ds, &qis, MondrianConfig { k: 4 }).unwrap();
        assert!(fine.classes >= coarse.classes);
    }

    #[test]
    fn single_value_classes_keep_plain_labels() {
        let ds = dataset();
        // With gender as the only QI, the median cut separates F from M and
        // each class keeps its plain label.
        let out = mondrian(&ds, &["gender"], MondrianConfig { k: 2 }).unwrap();
        assert_eq!(out.classes, 2);
        let gender = out.dataset.column("gender").unwrap();
        for r in 0..4 {
            assert_eq!(gender.data.render(r), "F");
        }
        for r in 4..8 {
            assert_eq!(gender.data.render(r), "M");
        }
    }

    #[test]
    fn parameter_validation() {
        let ds = dataset();
        assert!(mondrian(&ds, &["gender"], MondrianConfig { k: 0 }).is_err());
        assert!(mondrian(&ds, &["gender"], MondrianConfig { k: 9 }).is_err());
        assert!(mondrian(&ds, &[], MondrianConfig { k: 2 }).is_err());
        assert!(mondrian(&ds, &["rating"], MondrianConfig { k: 2 }).is_err());
    }

    #[test]
    fn non_qi_columns_pass_through() {
        let ds = dataset();
        let out = mondrian(&ds, &["year"], MondrianConfig { k: 2 }).unwrap();
        assert_eq!(
            out.dataset.column("rating").unwrap().as_float().unwrap(),
            ds.column("rating").unwrap().as_float().unwrap()
        );
        // gender untouched (not a QI here).
        assert_eq!(out.dataset.column("gender").unwrap().data.render(0), "F");
    }

    #[test]
    fn heavily_tied_data_still_splits() {
        // All but one row share one year; ties must not break the splitter.
        let ds = Dataset::builder()
            .integer(
                "year",
                AttributeRole::Protected,
                vec![1990, 1990, 1990, 1990, 1990, 2000, 2000, 2000],
            )
            .float("s", AttributeRole::Observed, vec![0.5; 8])
            .build()
            .unwrap();
        let out = mondrian(&ds, &["year"], MondrianConfig { k: 3 }).unwrap();
        assert!(is_k_anonymous(&out.dataset, &["year"], 3).unwrap());
        assert_eq!(out.classes, 2);
    }
}
