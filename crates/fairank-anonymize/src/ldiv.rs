//! Distinct l-diversity over a sensitive attribute.
//!
//! k-anonymity alone does not prevent attribute disclosure: if everyone in
//! an equivalence class shares the same sensitive value, the value leaks.
//! A dataset is (distinct) *l-diverse* when every equivalence class
//! contains at least `l` distinct values of the sensitive attribute.

use fairank_data::dataset::Dataset;

use crate::error::{AnonError, Result};
use crate::kanon::equivalence_classes;

/// The number of distinct sensitive values in the least diverse class
/// (`0` for an empty dataset).
pub fn min_diversity(dataset: &Dataset, qis: &[&str], sensitive: &str) -> Result<usize> {
    let col = dataset
        .column(sensitive)
        .ok_or_else(|| AnonError::BadQuasiIdentifier(format!("unknown column {sensitive:?}")))?;
    if qis.contains(&sensitive) {
        return Err(AnonError::BadParameter(format!(
            "sensitive attribute {sensitive:?} cannot also be a quasi-identifier"
        )));
    }
    let classes = equivalence_classes(dataset, qis)?;
    let mut min = usize::MAX;
    for class in &classes {
        let mut values: Vec<String> =
            class.iter().map(|&r| col.data.render(r as usize)).collect();
        values.sort_unstable();
        values.dedup();
        min = min.min(values.len());
    }
    if classes.is_empty() {
        return Ok(0);
    }
    Ok(min)
}

/// True when every equivalence class has at least `l` distinct sensitive
/// values.
pub fn is_l_diverse(dataset: &Dataset, qis: &[&str], sensitive: &str, l: usize) -> Result<bool> {
    if l == 0 {
        return Err(AnonError::BadParameter("l must be at least 1".into()));
    }
    Ok(min_diversity(dataset, qis, sensitive)? >= l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_data::schema::AttributeRole;

    fn dataset() -> Dataset {
        Dataset::builder()
            .categorical(
                "zip",
                AttributeRole::Protected,
                &["A", "A", "A", "B", "B", "B"],
            )
            .categorical(
                "disease",
                AttributeRole::Meta,
                &["flu", "cold", "flu", "flu", "flu", "flu"],
            )
            .float("s", AttributeRole::Observed, vec![0.1; 6])
            .build()
            .unwrap()
    }

    #[test]
    fn diversity_is_per_class_minimum() {
        let ds = dataset();
        // Class A: {flu, cold} → 2; class B: {flu} → 1.
        assert_eq!(min_diversity(&ds, &["zip"], "disease").unwrap(), 1);
        assert!(is_l_diverse(&ds, &["zip"], "disease", 1).unwrap());
        assert!(!is_l_diverse(&ds, &["zip"], "disease", 2).unwrap());
    }

    #[test]
    fn validation() {
        let ds = dataset();
        assert!(min_diversity(&ds, &["zip"], "ghost").is_err());
        assert!(min_diversity(&ds, &["zip"], "zip").is_err());
        assert!(is_l_diverse(&ds, &["zip"], "disease", 0).is_err());
    }

    #[test]
    fn numeric_sensitive_attributes_work() {
        let ds = dataset();
        // The float column can serve as the sensitive attribute: every class
        // has exactly one distinct value (all 0.1).
        assert_eq!(min_diversity(&ds, &["zip"], "s").unwrap(), 1);
    }
}
