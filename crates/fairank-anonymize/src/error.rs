//! Errors of the anonymization substrate.

use std::fmt;

use fairank_data::DataError;

/// Errors produced while anonymizing datasets.
#[derive(Debug)]
pub enum AnonError {
    /// A hierarchy was structurally invalid.
    InvalidHierarchy(String),
    /// A referenced quasi-identifier column does not exist or has the wrong
    /// type.
    BadQuasiIdentifier(String),
    /// `k` (or `l`) was zero or exceeded the population size.
    BadParameter(String),
    /// The algorithm could not reach k-anonymity within its limits (e.g.
    /// suppression budget exhausted at the top of the lattice).
    Unsatisfiable(String),
    /// An error bubbled up from the dataset substrate.
    Data(DataError),
}

impl fmt::Display for AnonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnonError::InvalidHierarchy(msg) => write!(f, "invalid hierarchy: {msg}"),
            AnonError::BadQuasiIdentifier(msg) => {
                write!(f, "bad quasi-identifier: {msg}")
            }
            AnonError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            AnonError::Unsatisfiable(msg) => {
                write!(f, "anonymity requirement unsatisfiable: {msg}")
            }
            AnonError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for AnonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnonError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for AnonError {
    fn from(e: DataError) -> Self {
        AnonError::Data(e)
    }
}

/// Convenience alias for this crate.
pub type Result<T> = std::result::Result<T, AnonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(AnonError::InvalidHierarchy("x".into())
            .to_string()
            .contains("hierarchy"));
        assert!(AnonError::BadQuasiIdentifier("y".into())
            .to_string()
            .contains("quasi"));
        assert!(AnonError::BadParameter("k=0".into())
            .to_string()
            .contains("k=0"));
        assert!(AnonError::Unsatisfiable("budget".into())
            .to_string()
            .contains("unsatisfiable"));
        let e: AnonError = DataError::UnknownColumn("c".into()).into();
        assert!(e.to_string().contains("data error"));
    }
}
