//! The full-domain generalization lattice and an Incognito-style optimal
//! search (LeFevre et al., SIGMOD 2005).
//!
//! A lattice node assigns one generalization level per quasi-identifier;
//! node `a` dominates `b` when it is at least as generalized on every
//! attribute. k-anonymity is *monotone* along that order: if a node is
//! k-anonymous, every node dominating it is too. The search walks the
//! lattice bottom-up by height, pruning everything above a satisfying node,
//! and returns the minimal (by precision loss) k-anonymous generalization —
//! the quality bar Datafly's greedy heuristic is compared against.

use std::collections::HashSet;

use fairank_data::dataset::Dataset;

use crate::error::{AnonError, Result};
use crate::hierarchy::Hierarchy;
use crate::kanon::{apply_generalization, is_k_anonymous};
use crate::loss::precision;

/// A node: one generalization level per quasi-identifier.
pub type LatticeNode = Vec<usize>;

/// The lattice over the given per-attribute level counts.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Number of levels per attribute (identity level included).
    pub levels: Vec<usize>,
}

impl Lattice {
    /// Builds the lattice shape for a set of hierarchies.
    pub fn for_hierarchies(hierarchies: &[(String, Hierarchy)]) -> Self {
        Lattice {
            levels: hierarchies.iter().map(|(_, h)| h.num_levels()).collect(),
        }
    }

    /// Total number of lattice nodes.
    pub fn size(&self) -> u64 {
        self.levels.iter().map(|&l| l as u64).product()
    }

    /// The height (sum of levels) of the tallest node.
    pub fn max_height(&self) -> usize {
        self.levels.iter().map(|&l| l - 1).sum()
    }

    /// All nodes at exactly `height` (sum of levels), in lexicographic
    /// order.
    pub fn nodes_at_height(&self, height: usize) -> Vec<LatticeNode> {
        let mut out = Vec::new();
        let mut node = vec![0usize; self.levels.len()];
        self.fill(&mut out, &mut node, 0, height);
        out
    }

    fn fill(
        &self,
        out: &mut Vec<LatticeNode>,
        node: &mut LatticeNode,
        idx: usize,
        remaining: usize,
    ) {
        if idx == self.levels.len() {
            if remaining == 0 {
                out.push(node.clone());
            }
            return;
        }
        let max_here = self.levels[idx] - 1;
        for level in 0..=max_here.min(remaining) {
            node[idx] = level;
            self.fill(out, node, idx + 1, remaining - level);
        }
        node[idx] = 0;
    }

    /// True when `a` dominates (is at least as generalized as) `b`.
    pub fn dominates(a: &LatticeNode, b: &LatticeNode) -> bool {
        a.iter().zip(b).all(|(x, y)| x >= y)
    }
}

/// The result of an Incognito search.
#[derive(Debug, Clone)]
pub struct IncognitoOutcome {
    /// The k-anonymous dataset under the optimal node.
    pub dataset: Dataset,
    /// The chosen generalization levels, aligned with the QI order.
    pub node: LatticeNode,
    /// Sweeney precision of the chosen node (1.0 = untouched).
    pub precision: f64,
    /// Lattice nodes actually evaluated (after monotonicity pruning).
    pub nodes_checked: usize,
}

/// Finds the minimal-height k-anonymous full-domain generalization,
/// breaking height ties by maximal precision. No suppression is applied —
/// if even full suppression of every QI cannot reach `k` (i.e. `k` exceeds
/// the population), an error is returned.
pub fn incognito(
    dataset: &Dataset,
    qis: &[&str],
    hierarchies: &[(String, Hierarchy)],
    k: usize,
) -> Result<IncognitoOutcome> {
    if k == 0 {
        return Err(AnonError::BadParameter("k must be at least 1".into()));
    }
    if k > dataset.num_rows() {
        return Err(AnonError::BadParameter(format!(
            "k = {k} exceeds the population size {}",
            dataset.num_rows()
        )));
    }
    // Resolve hierarchies in QI order.
    let mut resolved: Vec<(&str, &Hierarchy)> = Vec::with_capacity(qis.len());
    for &name in qis {
        let h = hierarchies
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
            .ok_or_else(|| {
                AnonError::InvalidHierarchy(format!("no hierarchy for QI {name:?}"))
            })?;
        resolved.push((name, h));
    }
    let lattice = Lattice {
        levels: resolved.iter().map(|(_, h)| h.num_levels()).collect(),
    };

    let mut dominated: HashSet<LatticeNode> = HashSet::new();
    let mut nodes_checked = 0usize;
    let mut best: Option<(LatticeNode, f64)> = None;

    'heights: for height in 0..=lattice.max_height() {
        for node in lattice.nodes_at_height(height) {
            if dominated.iter().any(|d| Lattice::dominates(&node, d)) {
                // A lower satisfying node exists below this one; by
                // monotonicity this node is also k-anonymous but cannot be
                // more precise — skip.
                continue;
            }
            nodes_checked += 1;
            let assignments: Vec<(&str, &Hierarchy, usize)> = resolved
                .iter()
                .zip(&node)
                .map(|(&(n, h), &l)| (n, h, l))
                .collect();
            let generalized = apply_generalization(dataset, &assignments)?;
            if is_k_anonymous(&generalized, qis, k)? {
                let prec_inputs: Vec<(&Hierarchy, usize)> = resolved
                    .iter()
                    .zip(&node)
                    .map(|(&(_, h), &l)| (h, l))
                    .collect();
                let prec = precision(&prec_inputs);
                let better = match &best {
                    None => true,
                    Some((_, p)) => prec > *p,
                };
                if better {
                    best = Some((node.clone(), prec));
                }
                dominated.insert(node);
            }
        }
        if best.is_some() {
            // All satisfying nodes of minimal height found; stop.
            break 'heights;
        }
    }

    let (node, prec) = best.ok_or_else(|| {
        AnonError::Unsatisfiable(format!(
            "no node of the generalization lattice is {k}-anonymous"
        ))
    })?;
    let assignments: Vec<(&str, &Hierarchy, usize)> = resolved
        .iter()
        .zip(&node)
        .map(|(&(n, h), &l)| (n, h, l))
        .collect();
    Ok(IncognitoOutcome {
        dataset: apply_generalization(dataset, &assignments)?,
        node,
        precision: prec,
        nodes_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datafly::{auto_hierarchies, datafly, DataflyConfig};
    use fairank_data::schema::AttributeRole;

    fn dataset() -> Dataset {
        Dataset::builder()
            .categorical(
                "gender",
                AttributeRole::Protected,
                &["F", "F", "F", "M", "M", "M", "M", "F"],
            )
            .integer(
                "year",
                AttributeRole::Protected,
                vec![1990, 1991, 1992, 1976, 1977, 1978, 1990, 1976],
            )
            .float(
                "rating",
                AttributeRole::Observed,
                vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn lattice_shape_and_heights() {
        let l = Lattice {
            levels: vec![2, 3],
        };
        assert_eq!(l.size(), 6);
        assert_eq!(l.max_height(), 3);
        assert_eq!(l.nodes_at_height(0), vec![vec![0, 0]]);
        let h1 = l.nodes_at_height(1);
        assert_eq!(h1.len(), 2); // (0,1), (1,0)
        assert!(h1.contains(&vec![0, 1]) && h1.contains(&vec![1, 0]));
        assert_eq!(l.nodes_at_height(3), vec![vec![1, 2]]);
    }

    #[test]
    fn dominance_order() {
        assert!(Lattice::dominates(&vec![1, 2], &vec![1, 1]));
        assert!(Lattice::dominates(&vec![1, 1], &vec![1, 1]));
        assert!(!Lattice::dominates(&vec![0, 2], &vec![1, 0]));
    }

    #[test]
    fn incognito_finds_k_anonymous_node() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let hs = auto_hierarchies(&ds, &qis).unwrap();
        let out = incognito(&ds, &qis, &hs, 2).unwrap();
        assert!(is_k_anonymous(&out.dataset, &qis, 2).unwrap());
        assert!(out.precision > 0.0);
        assert!(out.nodes_checked > 0);
    }

    #[test]
    fn incognito_is_at_least_as_precise_as_datafly() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let hs = auto_hierarchies(&ds, &qis).unwrap();
        for k in [2usize, 3, 4] {
            let optimal = incognito(&ds, &qis, &hs, k).unwrap();
            let greedy = datafly(
                &ds,
                &qis,
                &hs,
                DataflyConfig {
                    k,
                    max_suppression: 0.0,
                },
            )
            .unwrap();
            let greedy_prec_inputs: Vec<(&Hierarchy, usize)> = qis
                .iter()
                .map(|&q| {
                    let h = &hs.iter().find(|(n, _)| n == q).unwrap().1;
                    let l = greedy.levels.iter().find(|(n, _)| n == q).unwrap().1;
                    (h, l)
                })
                .collect();
            let greedy_prec = precision(&greedy_prec_inputs);
            assert!(
                optimal.precision >= greedy_prec - 1e-12,
                "k={k}: incognito {} < datafly {}",
                optimal.precision,
                greedy_prec
            );
        }
    }

    #[test]
    fn identity_node_wins_when_already_anonymous() {
        let ds = Dataset::builder()
            .categorical("g", AttributeRole::Protected, &["a", "a", "b", "b"])
            .float("s", AttributeRole::Observed, vec![0.5; 4])
            .build()
            .unwrap();
        let hs = auto_hierarchies(&ds, &["g"]).unwrap();
        let out = incognito(&ds, &["g"], &hs, 2).unwrap();
        assert_eq!(out.node, vec![0]);
        assert_eq!(out.precision, 1.0);
    }

    #[test]
    fn parameter_validation() {
        let ds = dataset();
        let qis = ["gender", "year"];
        let hs = auto_hierarchies(&ds, &qis).unwrap();
        assert!(incognito(&ds, &qis, &hs, 0).is_err());
        assert!(incognito(&ds, &qis, &hs, 99).is_err());
        assert!(incognito(&ds, &["gender"], &[], 2).is_err()); // no hierarchy
    }

    #[test]
    fn top_node_always_satisfies_k_up_to_population() {
        // Even pathological data is k-anonymous at full suppression.
        let ds = Dataset::builder()
            .categorical(
                "id",
                AttributeRole::Protected,
                &["a", "b", "c", "d", "e"],
            )
            .float("s", AttributeRole::Observed, vec![0.5; 5])
            .build()
            .unwrap();
        let hs = auto_hierarchies(&ds, &["id"]).unwrap();
        let out = incognito(&ds, &["id"], &hs, 5).unwrap();
        assert!(is_k_anonymous(&out.dataset, &["id"], 5).unwrap());
        // Everything collapsed to '*'.
        assert_eq!(out.dataset.column("id").unwrap().data.render(0), "*");
    }
}
