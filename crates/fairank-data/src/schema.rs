//! Attribute schema: names, roles and types.

use serde::{Deserialize, Serialize};

/// How FaiRank treats an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeRole {
    /// Inherent property of the individual (gender, age, ethnicity, …);
    /// partitionings are built over these.
    Protected,
    /// Skill/performance attribute (reputation, language test, …); scoring
    /// functions are defined over these.
    Observed,
    /// Carried along but ignored by fairness analysis (identifiers, notes).
    Meta,
}

impl AttributeRole {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            AttributeRole::Protected => "protected",
            AttributeRole::Observed => "observed",
            AttributeRole::Meta => "meta",
        }
    }

    /// Parses a role name, case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "protected" => Some(AttributeRole::Protected),
            "observed" => Some(AttributeRole::Observed),
            "meta" => Some(AttributeRole::Meta),
            _ => None,
        }
    }
}

/// Physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Dictionary-encoded strings.
    Categorical,
    /// 64-bit floats.
    Float,
    /// 64-bit signed integers.
    Integer,
}

/// One field of a dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Column name.
    pub name: String,
    /// Role in the fairness analysis.
    pub role: AttributeRole,
    /// Physical type.
    pub dtype: DataType,
}

/// The ordered list of fields of a dataset.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<FieldDef>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Appends a field (caller must have checked for duplicates).
    pub(crate) fn push(&mut self, field: FieldDef) {
        self.fields.push(field);
    }

    /// All fields in column order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field definition by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Names of all fields with the given role.
    pub fn names_with_role(&self, role: AttributeRole) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.role == role)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_names_round_trip() {
        for role in [
            AttributeRole::Protected,
            AttributeRole::Observed,
            AttributeRole::Meta,
        ] {
            assert_eq!(AttributeRole::parse(role.name()), Some(role));
        }
        assert_eq!(AttributeRole::parse("PROTECTED"), Some(AttributeRole::Protected));
        assert_eq!(AttributeRole::parse("bogus"), None);
    }

    #[test]
    fn schema_lookup() {
        let mut s = Schema::new();
        s.push(FieldDef {
            name: "gender".into(),
            role: AttributeRole::Protected,
            dtype: DataType::Categorical,
        });
        s.push(FieldDef {
            name: "rating".into(),
            role: AttributeRole::Observed,
            dtype: DataType::Float,
        });
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("rating"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.field("gender").unwrap().dtype, DataType::Categorical);
        assert_eq!(s.names_with_role(AttributeRole::Protected), vec!["gender"]);
        assert_eq!(s.names_with_role(AttributeRole::Meta), Vec::<&str>::new());
    }
}
