//! Bias injection for synthetic populations.
//!
//! Hannak et al. (CSCW 2017; the paper's reference \[5\] and the source of
//! its real-data motivation) measured systematic rating and review gaps
//! correlated with gender and race on TaskRabbit and Fiverr. FaiRank's
//! demo uses "simulated datasets mimicking crowdsourcing platforms"; a
//! [`BiasRule`] reproduces those gaps synthetically: for individuals
//! matching a conjunction of protected-attribute values, a chosen observed
//! attribute is shifted and/or scaled (then re-clamped to `[0, 1]`).

use serde::{Deserialize, Serialize};

use crate::column::ColumnData;
use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crate::schema::AttributeRole;

/// One bias rule: `when` all `(attribute, value)` constraints match, the
/// observed attribute `skill` is transformed as `v ← v · scale + shift`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasRule {
    /// Conjunction of protected-attribute equality constraints.
    pub when: Vec<(String, String)>,
    /// The observed attribute to distort.
    pub skill: String,
    /// Additive shift (negative = penalty).
    pub shift: f64,
    /// Multiplicative scale applied before the shift.
    pub scale: f64,
}

impl BiasRule {
    /// A pure shift (the common "group scores lower" gap).
    pub fn shift(
        attr: impl Into<String>,
        value: impl Into<String>,
        skill: impl Into<String>,
        shift: f64,
    ) -> Self {
        BiasRule {
            when: vec![(attr.into(), value.into())],
            skill: skill.into(),
            shift,
            scale: 1.0,
        }
    }

    /// Adds another conjunct, narrowing the rule to a subgroup (this is how
    /// intersectional bias — the paper's "older African Americans" example —
    /// is produced).
    pub fn and(mut self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.when.push((attr.into(), value.into()));
        self
    }
}

/// Applies bias rules to a dataset, returning the distorted copy.
pub fn apply_bias(dataset: &Dataset, rules: &[BiasRule]) -> Result<Dataset> {
    let mut ds = dataset.clone();
    for rule in rules {
        // Validate the target column.
        let field = ds
            .schema()
            .field(&rule.skill)
            .ok_or_else(|| DataError::UnknownColumn(rule.skill.clone()))?;
        if field.role != AttributeRole::Observed {
            return Err(DataError::TypeMismatch {
                column: rule.skill.clone(),
                expected: "an observed attribute",
            });
        }
        // Resolve the matching rows.
        let mut matching = vec![true; ds.num_rows()];
        for (attr, value) in &rule.when {
            let col = ds.column_required(attr)?;
            match &col.data {
                ColumnData::Categorical { codes, labels } => {
                    for (m, &code) in matching.iter_mut().zip(codes) {
                        if &labels[code as usize] != value {
                            *m = false;
                        }
                    }
                }
                ColumnData::Integer(values) => {
                    let rhs: i64 = value.parse().map_err(|_| {
                        DataError::FilterParse(format!(
                            "bias rule value {value:?} is not an integer"
                        ))
                    })?;
                    for (m, &v) in matching.iter_mut().zip(values) {
                        if v != rhs {
                            *m = false;
                        }
                    }
                }
                ColumnData::Float(_) => {
                    return Err(DataError::TypeMismatch {
                        column: attr.clone(),
                        expected: "categorical or integer",
                    })
                }
            }
        }
        // Distort in place.
        let idx = ds.schema().index_of(&rule.skill).expect("validated");
        let columns = ds.columns_mut();
        if let ColumnData::Float(values) = &mut columns[idx].data {
            for (v, &m) in values.iter_mut().zip(&matching) {
                if m {
                    *v = (*v * rule.scale + rule.shift).clamp(0.0, 1.0);
                }
            }
        } else {
            unreachable!("observed columns are floats after build");
        }
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::scoring::ObservedTable;

    fn dataset() -> Dataset {
        Dataset::builder()
            .categorical("gender", AttributeRole::Protected, &["F", "M", "F", "M"])
            .categorical(
                "ethnicity",
                AttributeRole::Protected,
                &["A", "A", "B", "B"],
            )
            .float("rating", AttributeRole::Observed, vec![0.5, 0.5, 0.5, 0.5])
            .build()
            .unwrap()
    }

    #[test]
    fn shift_applies_only_to_matching_rows() {
        let ds = dataset();
        let biased =
            apply_bias(&ds, &[BiasRule::shift("gender", "F", "rating", -0.2)]).unwrap();
        assert_eq!(
            biased.observed_column("rating").unwrap(),
            &[0.3, 0.5, 0.3, 0.5]
        );
        // Source dataset is untouched.
        assert_eq!(ds.observed_column("rating").unwrap(), &[0.5; 4]);
    }

    #[test]
    fn intersectional_rule_narrows_to_subgroup() {
        let ds = dataset();
        let rule = BiasRule::shift("gender", "F", "rating", -0.3).and("ethnicity", "B");
        let biased = apply_bias(&ds, &[rule]).unwrap();
        assert_eq!(
            biased.observed_column("rating").unwrap(),
            &[0.5, 0.5, 0.2, 0.5]
        );
    }

    #[test]
    fn scale_and_clamp() {
        let ds = dataset();
        let rule = BiasRule {
            when: vec![("gender".into(), "M".into())],
            skill: "rating".into(),
            shift: 0.8,
            scale: 1.5,
        };
        let biased = apply_bias(&ds, &[rule]).unwrap();
        // 0.5 * 1.5 + 0.8 = 1.55 → clamped to 1.0.
        assert_eq!(
            biased.observed_column("rating").unwrap(),
            &[0.5, 1.0, 0.5, 1.0]
        );
    }

    #[test]
    fn multiple_rules_compose() {
        let ds = dataset();
        let rules = vec![
            BiasRule::shift("gender", "F", "rating", -0.1),
            BiasRule::shift("ethnicity", "B", "rating", -0.1),
        ];
        let biased = apply_bias(&ds, &rules).unwrap();
        // Row 2 is F and B: both penalties apply. Compare approximately —
        // 0.5 − 0.1 is not exactly 0.4 in binary floating point.
        let got = biased.observed_column("rating").unwrap();
        for (g, want) in got.iter().zip([0.4, 0.5, 0.3, 0.4]) {
            assert!((g - want).abs() < 1e-12, "{g} vs {want}");
        }
    }

    #[test]
    fn validation_errors() {
        let ds = dataset();
        assert!(apply_bias(&ds, &[BiasRule::shift("gender", "F", "ghost", -0.1)]).is_err());
        assert!(apply_bias(&ds, &[BiasRule::shift("ghost", "F", "rating", -0.1)]).is_err());
        // Target must be observed, not protected.
        let bad = BiasRule {
            when: vec![],
            skill: "gender".into(),
            shift: 0.1,
            scale: 1.0,
        };
        assert!(apply_bias(&ds, &[bad]).is_err());
    }

    #[test]
    fn empty_when_matches_everyone() {
        let ds = dataset();
        let rule = BiasRule {
            when: vec![],
            skill: "rating".into(),
            shift: 0.1,
            scale: 1.0,
        };
        let biased = apply_bias(&ds, &[rule]).unwrap();
        assert_eq!(biased.observed_column("rating").unwrap(), &[0.6; 4]);
    }
}
