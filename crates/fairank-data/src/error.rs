//! Errors of the dataset substrate.

use std::fmt;

use fairank_core::CoreError;

/// Errors produced while building, loading or transforming datasets.
#[derive(Debug)]
pub enum DataError {
    /// A column length did not match the dataset's row count.
    LengthMismatch {
        column: String,
        expected: usize,
        actual: usize,
    },
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// Two columns share a name.
    DuplicateColumn(String),
    /// A column had the wrong type for the requested operation.
    TypeMismatch { column: String, expected: &'static str },
    /// CSV input was malformed.
    Csv { line: usize, message: String },
    /// A filter expression failed to parse.
    FilterParse(String),
    /// Discretization bin edges were invalid.
    InvalidBins(String),
    /// A synthetic-population specification was invalid.
    InvalidSpec(String),
    /// JSON (de)serialization failed.
    Json(String),
    /// Underlying IO failure.
    Io(std::io::Error),
    /// An error bubbled up from the core crate.
    Core(CoreError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column {column:?} has {actual} values, dataset has {expected} rows"
            ),
            DataError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            DataError::DuplicateColumn(name) => write!(f, "duplicate column {name:?}"),
            DataError::TypeMismatch { column, expected } => {
                write!(f, "column {column:?} is not {expected}")
            }
            DataError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            DataError::FilterParse(msg) => write!(f, "filter parse error: {msg}"),
            DataError::InvalidBins(msg) => write!(f, "invalid discretization: {msg}"),
            DataError::InvalidSpec(msg) => write!(f, "invalid population spec: {msg}"),
            DataError::Json(msg) => write!(f, "JSON error: {msg}"),
            DataError::Io(e) => write!(f, "IO error: {e}"),
            DataError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<CoreError> for DataError {
    fn from(e: CoreError) -> Self {
        DataError::Core(e)
    }
}

/// Convenience alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(DataError, &str)> = vec![
            (
                DataError::LengthMismatch {
                    column: "x".into(),
                    expected: 3,
                    actual: 2,
                },
                "2 values",
            ),
            (DataError::UnknownColumn("y".into()), "unknown column"),
            (DataError::DuplicateColumn("z".into()), "duplicate"),
            (
                DataError::TypeMismatch {
                    column: "w".into(),
                    expected: "numeric",
                },
                "not numeric",
            ),
            (
                DataError::Csv {
                    line: 7,
                    message: "bad quote".into(),
                },
                "line 7",
            ),
            (DataError::FilterParse("oops".into()), "oops"),
            (DataError::InvalidBins("edges".into()), "edges"),
            (DataError::InvalidSpec("n=0".into()), "n=0"),
            (DataError::Json("eof".into()), "eof"),
            (DataError::Core(CoreError::EmptyInput), "core error"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn conversions_work() {
        let io: DataError = std::io::Error::other("x").into();
        assert!(matches!(io, DataError::Io(_)));
        let core: DataError = CoreError::EmptyInput.into();
        assert!(matches!(core, DataError::Core(_)));
    }
}
