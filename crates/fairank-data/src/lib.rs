//! # fairank-data
//!
//! Dataset substrate for FaiRank: columnar storage with dictionary-encoded
//! categoricals, CSV and JSON IO, protected-attribute filters, the paper's
//! Table 1 dataset, and synthetic crowdsourcing-population generators with
//! controllable bias injection.
//!
//! The FaiRank interface lets a user "select or upload a dataset which
//! consists of a set of individuals and their attributes" (§2). Attributes
//! are *protected* (gender, age, location, ethnicity, …), *observed*
//! (skills, reputation — the inputs of scoring functions) or *meta*
//! (identifiers). [`dataset::Dataset`] implements the core crate's
//! [`fairank_core::scoring::ObservedTable`] and
//! [`fairank_core::space::ProtectedTable`] traits, so a dataset plugs
//! directly into `Quantify`.

pub mod bias;
pub mod column;
pub mod csv;
pub mod dataset;
pub mod dist;
pub mod error;
pub mod filter;
pub mod json;
pub mod paper;
pub mod schema;
pub mod stats;
pub mod store;
pub mod synth;

pub use dataset::Dataset;
pub use error::{DataError, Result};
pub use filter::Filter;
pub use schema::{AttributeRole, FieldDef, Schema};
pub use store::{DatasetHandle, DatasetStore, StoreStats};
