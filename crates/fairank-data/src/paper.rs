//! The paper's running example, verbatim.
//!
//! Table 1 lists 10 individuals of a crowdsourcing platform with five
//! protected attributes (Gender, Country, Year of Birth, Language,
//! Ethnicity), three observed attributes (Experience, Language Test,
//! Rating) and the scores of a scoring function `f`. The published `f(w)`
//! column is reproduced *exactly* by
//! `f = 0.3 · language_test + 0.7 · rating` (weights recovered by solving
//! the published rows; see EXPERIMENTS.md, experiment E1).
//!
//! Figure 2 then shows one partitioning of those individuals: split on
//! Gender first, then split only the Male side on Language, giving
//! {Male-English, Male-Indian, Male-Other, Female}.

use fairank_core::fairness::FairnessCriterion;
use fairank_core::partition::Partition;
use fairank_core::scoring::LinearScoring;
use fairank_core::space::RankingSpace;

use crate::dataset::Dataset;
use crate::error::Result;
use crate::schema::AttributeRole;

/// The published `f(w)` column of Table 1, in row order `w1..w10`.
pub const TABLE1_FW: [f64; 10] = [
    0.29, 0.911, 0.65, 0.724, 0.885, 0.266, 0.971, 0.195, 0.271, 0.62,
];

/// The Table 1 dataset, exactly as printed.
pub fn table1_dataset() -> Dataset {
    Dataset::builder()
        .categorical(
            "individual",
            AttributeRole::Meta,
            &["w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w9", "w10"],
        )
        .categorical(
            "gender",
            AttributeRole::Protected,
            &[
                "Female", "Male", "Male", "Male", "Female", "Male", "Female", "Male",
                "Male", "Female",
            ],
        )
        .categorical(
            "country",
            AttributeRole::Protected,
            &[
                "India", "America", "India", "Other", "India", "America", "America",
                "Other", "Other", "America",
            ],
        )
        .integer(
            "year_of_birth",
            AttributeRole::Protected,
            vec![2004, 1976, 1976, 1963, 1963, 1995, 1982, 2008, 1992, 2000],
        )
        .categorical(
            "language",
            AttributeRole::Protected,
            &[
                "English", "English", "Indian", "Other", "Indian", "English", "English",
                "English", "English", "English",
            ],
        )
        .categorical(
            "ethnicity",
            AttributeRole::Protected,
            &[
                "Indian", "White", "White", "Indian", "Indian", "African-American",
                "African-American", "Other", "White", "White",
            ],
        )
        .integer(
            "experience",
            AttributeRole::Observed,
            vec![0, 14, 6, 18, 21, 2, 16, 0, 2, 5],
        )
        .float(
            "language_test",
            AttributeRole::Observed,
            vec![0.50, 0.89, 0.65, 0.64, 0.85, 0.42, 0.95, 0.30, 0.32, 0.76],
        )
        .float(
            "rating",
            AttributeRole::Observed,
            vec![0.20, 0.92, 0.65, 0.76, 0.90, 0.20, 0.98, 0.15, 0.25, 0.56],
        )
        .build()
        .expect("Table 1 is a valid dataset")
}

/// The scoring function of Table 1:
/// `f(w) = 0.3 · language_test + 0.7 · rating`.
pub fn table1_scoring() -> LinearScoring {
    LinearScoring::builder()
        .weight("language_test", 0.3)
        .weight("rating", 0.7)
        .build_unchecked()
        .expect("static weights are valid")
}

/// The ranking space of Table 1 under [`table1_scoring`].
pub fn table1_space() -> Result<RankingSpace> {
    let ds = table1_dataset();
    ds.to_space(&table1_scoring().into())
}

/// The Figure 2 partitioning of the Table 1 individuals:
/// {Male-English, Male-Indian, Male-Other, Female}, built by splitting on
/// Gender and then splitting the Male partition on Language.
pub fn figure2_partitioning(space: &RankingSpace) -> Vec<Partition> {
    let gender = space.attribute_index("gender").expect("gender exists");
    let language = space.attribute_index("language").expect("language exists");
    let root = Partition::root(space);
    let by_gender = root.split(space, gender);
    let mut out = Vec::new();
    for part in by_gender {
        let label = part.label(space);
        if label.ends_with("Male") {
            out.extend(part.split(space, language));
        } else {
            out.push(part);
        }
    }
    out
}

/// The average pairwise EMD of the Figure 2 partitioning under `criterion`
/// — the number the paper's §3.1 example quantifies.
pub fn figure2_unfairness(criterion: &FairnessCriterion) -> Result<f64> {
    let space = table1_space()?;
    let parts = figure2_partitioning(&space);
    Ok(criterion.unfairness(&parts, space.scores())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::partition::is_full_disjoint;
    use fairank_core::scoring::{ObservedTable, ScoreSource};

    #[test]
    fn scores_match_published_fw_column_exactly() {
        let ds = table1_dataset();
        let scores = ScoreSource::Function(table1_scoring())
            .resolve(&ds)
            .unwrap();
        for (i, (got, want)) in scores.iter().zip(TABLE1_FW).enumerate() {
            assert!(
                (got - want).abs() < 1e-9,
                "w{}: computed {got}, published {want}",
                i + 1
            );
        }
    }

    #[test]
    fn dataset_shape_matches_table1() {
        let ds = table1_dataset();
        assert_eq!(ds.num_rows(), 10);
        assert_eq!(ds.schema().len(), 9);
        assert_eq!(
            ds.observed_names(),
            vec!["experience", "language_test", "rating"]
        );
    }

    #[test]
    fn figure2_partitioning_is_the_published_one() {
        let space = table1_space().unwrap();
        let parts = figure2_partitioning(&space);
        assert_eq!(parts.len(), 4);
        assert!(is_full_disjoint(&parts, 10));
        let labels: Vec<String> = parts.iter().map(|p| p.label(&space)).collect();
        assert!(labels.contains(&"gender=Female".to_string()));
        assert!(labels.contains(&"gender=Male ∧ language=English".to_string()));
        assert!(labels.contains(&"gender=Male ∧ language=Indian".to_string()));
        assert!(labels.contains(&"gender=Male ∧ language=Other".to_string()));
        // Member counts as in Figure 2: Female = {w1,w5,w7,w10},
        // Male-English = {w2,w6,w8,w9}, Male-Indian = {w3}, Male-Other = {w4}.
        let sizes: Vec<(String, usize)> = parts
            .iter()
            .map(|p| (p.label(&space), p.len()))
            .collect();
        for (label, size) in sizes {
            match label.as_str() {
                "gender=Female" => assert_eq!(size, 4),
                "gender=Male ∧ language=English" => assert_eq!(size, 4),
                "gender=Male ∧ language=Indian" => assert_eq!(size, 1),
                "gender=Male ∧ language=Other" => assert_eq!(size, 1),
                other => panic!("unexpected partition {other}"),
            }
        }
    }

    #[test]
    fn figure2_unfairness_is_positive() {
        let u = figure2_unfairness(&FairnessCriterion::default()).unwrap();
        assert!(u > 0.0 && u < 1.0, "u = {u}");
    }

    #[test]
    fn year_of_birth_partitions_as_integers() {
        let ds = table1_dataset();
        let space = table1_space().unwrap();
        let yob = space.attribute_index("year_of_birth").unwrap();
        let attr = space.attribute(yob).unwrap();
        // Two individuals born 1976 and two born 1963 share codes.
        assert_eq!(attr.cardinality(), 8);
        assert_eq!(ds.num_rows(), 10);
    }
}
