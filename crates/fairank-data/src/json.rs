//! JSON (de)serialization of datasets.
//!
//! The session engine exports panels, reports and datasets as JSON; this
//! module provides the dataset part plus file helpers. The format is the
//! direct serde representation of [`Dataset`] (schema + columns), so it
//! round-trips losslessly, including dictionary code assignments.

use std::path::Path;

use crate::dataset::Dataset;
use crate::error::{DataError, Result};

/// Serializes a dataset to a pretty-printed JSON string.
pub fn to_json_string(dataset: &Dataset) -> Result<String> {
    serde_json::to_string_pretty(dataset).map_err(|e| DataError::Json(e.to_string()))
}

/// Parses a dataset from its JSON representation.
pub fn from_json_str(text: &str) -> Result<Dataset> {
    serde_json::from_str(text).map_err(|e| DataError::Json(e.to_string()))
}

/// Writes a dataset to a JSON file.
pub fn write_json_file(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, to_json_string(dataset)?)?;
    Ok(())
}

/// Reads a dataset from a JSON file.
pub fn read_json_file(path: impl AsRef<Path>) -> Result<Dataset> {
    from_json_str(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeRole;

    fn sample() -> Dataset {
        Dataset::builder()
            .categorical("gender", AttributeRole::Protected, &["F", "M"])
            .float("rating", AttributeRole::Observed, vec![0.25, 0.75])
            .integer("year", AttributeRole::Protected, vec![1990, 1976])
            .build()
            .unwrap()
    }

    #[test]
    fn json_round_trip() {
        let ds = sample();
        let text = to_json_string(&ds).unwrap();
        let back = from_json_str(&text).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn json_is_human_readable() {
        let text = to_json_string(&sample()).unwrap();
        assert!(text.contains("\"gender\""));
        assert!(text.contains("\"Protected\""));
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_json_str("{not json").is_err());
        assert!(from_json_str("{}").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fairank_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.json");
        write_json_file(&sample(), &path).unwrap();
        let back = read_json_file(&path).unwrap();
        assert_eq!(back, sample());
        std::fs::remove_file(&path).ok();
    }
}
