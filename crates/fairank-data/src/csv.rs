//! From-scratch CSV reader/writer (RFC 4180 subset) with type inference.
//!
//! FaiRank datasets are "selected or uploaded" by users (§2); CSV is the
//! upload format. The reader supports quoted fields, embedded quotes
//! (`""`), embedded separators and newlines inside quotes, and both LF and
//! CRLF line endings. Column types are inferred (integer → float → string)
//! and roles are assigned via [`CsvOptions`] with a sensible default:
//! numeric columns become observed, string columns become protected.

use std::collections::HashMap;
use std::path::Path;

use crate::dataset::Dataset;
use crate::error::{DataError, Result};
use crate::schema::AttributeRole;

/// Options controlling CSV ingestion.
#[derive(Debug, Clone, Default)]
pub struct CsvOptions {
    /// Explicit role per column name; unlisted columns get the default
    /// (numeric → observed, string → protected).
    pub roles: HashMap<String, AttributeRole>,
    /// Field separator (default `,`).
    pub separator: Option<char>,
}

impl CsvOptions {
    /// Assigns a role to a column.
    pub fn role(mut self, column: impl Into<String>, role: AttributeRole) -> Self {
        self.roles.insert(column.into(), role);
        self
    }

    /// Uses a non-comma separator (e.g. `;` or `\t`).
    pub fn separator(mut self, sep: char) -> Self {
        self.separator = Some(sep);
        self
    }
}

/// Parses CSV text into a dataset. The first record is the header.
///
/// Header fields may carry inline role annotations in the form
/// `name:role` (e.g. `gender:protected`, `rating:observed`, `id:meta`);
/// explicit [`CsvOptions::roles`] entries override annotations.
pub fn read_csv_str(text: &str, options: &CsvOptions) -> Result<Dataset> {
    let sep = options.separator.unwrap_or(',');
    let records = parse_records(text, sep)?;
    let mut iter = records.into_iter();
    let Record {
        fields: raw_header, ..
    } = iter.next().ok_or(DataError::Csv {
        line: 0,
        message: "input is empty (missing header)".into(),
    })?;
    // Split `name:role` annotations off the header.
    let mut header = Vec::with_capacity(raw_header.len());
    let mut annotated: HashMap<String, AttributeRole> = HashMap::new();
    for field in raw_header {
        match field.rsplit_once(':') {
            Some((name, role_str)) if AttributeRole::parse(role_str).is_some() => {
                annotated.insert(
                    name.to_string(),
                    AttributeRole::parse(role_str).expect("checked"),
                );
                header.push(name.to_string());
            }
            _ => header.push(field),
        }
    }
    let ncols = header.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); ncols];
    for (i, record) in iter.enumerate() {
        if record.fields.len() != ncols {
            // Report the record index *and* the physical line the record
            // starts on — they differ whenever earlier quoted fields
            // contain newlines, and a text editor only understands lines.
            return Err(DataError::Csv {
                line: record.line,
                message: format!(
                    "record {}: expected {ncols} fields, found {}",
                    i + 1,
                    record.fields.len()
                ),
            });
        }
        for (col, value) in cells.iter_mut().zip(record.fields) {
            col.push(value);
        }
    }

    let mut builder = Dataset::builder();
    for (name, values) in header.iter().zip(cells) {
        let inferred = infer_type(&values);
        let role = options
            .roles
            .get(name)
            .or_else(|| annotated.get(name))
            .copied()
            .unwrap_or(match inferred {
                Inferred::Integer | Inferred::Float => AttributeRole::Observed,
                Inferred::Text => AttributeRole::Protected,
            });
        // A protected numeric column stays integer when possible (so it can
        // be partitioned on); observed columns become floats.
        builder = match (inferred, role) {
            (Inferred::Integer, _) => builder.integer(
                name.clone(),
                role,
                values.iter().map(|v| v.trim().parse().unwrap()).collect(),
            ),
            (Inferred::Float, AttributeRole::Protected) => {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!(
                        "column {name:?} is fractional; protected attributes must be \
                         categorical or integer (discretize after loading)"
                    ),
                })
            }
            (Inferred::Float, _) => builder.float(
                name.clone(),
                role,
                values.iter().map(|v| v.trim().parse().unwrap()).collect(),
            ),
            (Inferred::Text, AttributeRole::Observed) => {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("column {name:?} is textual; observed must be numeric"),
                })
            }
            (Inferred::Text, _) => builder.categorical(name.clone(), role, &values),
        };
    }
    builder.build()
}

/// Reads a CSV file from disk.
pub fn read_csv_file(path: impl AsRef<Path>, options: &CsvOptions) -> Result<Dataset> {
    let text = std::fs::read_to_string(path)?;
    read_csv_str(&text, options)
}

/// Serializes a dataset as CSV (header + one record per row). Fields
/// containing the separator, quotes or newlines are quoted.
pub fn write_csv_string(dataset: &Dataset) -> String {
    let sep = ',';
    let mut out = String::new();
    let names: Vec<&str> = dataset
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    push_record(&mut out, &names, sep);
    for r in 0..dataset.num_rows() {
        let fields: Vec<String> = dataset
            .columns()
            .iter()
            .map(|c| c.data.render(r))
            .collect();
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        push_record(&mut out, &refs, sep);
    }
    out
}

/// Writes a dataset to a CSV file.
pub fn write_csv_file(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, write_csv_string(dataset))?;
    Ok(())
}

fn push_record(out: &mut String, fields: &[&str], sep: char) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(sep);
        }
        if f.contains(sep) || f.contains('"') || f.contains('\n') || f.contains('\r') {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[derive(Clone, Copy, PartialEq)]
enum Inferred {
    Integer,
    Float,
    Text,
}

fn infer_type(values: &[String]) -> Inferred {
    let mut kind = Inferred::Integer;
    for v in values {
        let t = v.trim();
        if kind == Inferred::Integer && t.parse::<i64>().is_err() {
            kind = Inferred::Float;
        }
        if kind == Inferred::Float && t.parse::<f64>().is_err() {
            return Inferred::Text;
        }
    }
    if values.is_empty() {
        Inferred::Text
    } else {
        kind
    }
}

/// One parsed record plus the physical line it starts on. Records and
/// lines diverge as soon as a quoted field embeds newlines, so both are
/// tracked: error messages cite the record, editors need the line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Record {
    /// 1-based physical line of the record's first character.
    line: usize,
    /// The record's fields.
    fields: Vec<String>,
}

/// State machine over characters; handles quotes per RFC 4180.
fn parse_records(text: &str, sep: char) -> Result<Vec<Record>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    // Physical line the current record started on; `None` between records.
    let mut start_line: Option<usize> = None;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;

    while let Some(ch) = chars.next() {
        saw_any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(ch);
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if !field.is_empty() {
                    return Err(DataError::Csv {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                start_line.get_or_insert(line);
                in_quotes = true;
            }
            '\r' => {
                // Consumed as part of CRLF; stray CRs are ignored.
            }
            '\n' => {
                line += 1;
                record.push(std::mem::take(&mut field));
                // Skip blank lines (a record of one empty field).
                if !(record.len() == 1 && record[0].is_empty()) {
                    records.push(Record {
                        line: start_line.take().unwrap_or(line - 1),
                        fields: std::mem::take(&mut record),
                    });
                } else {
                    record.clear();
                    start_line = None;
                }
            }
            c if c == sep => {
                start_line.get_or_insert(line);
                record.push(std::mem::take(&mut field));
            }
            _ => {
                start_line.get_or_insert(line);
                field.push(ch);
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(Record {
            line: start_line.take().unwrap_or(line),
            fields: record,
        });
    }
    if !saw_any {
        return Err(DataError::Csv {
            line: 0,
            message: "input is empty".into(),
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::scoring::ObservedTable;
    use fairank_core::space::ProtectedTable;

    const SAMPLE: &str = "gender,year,rating\nF,1990,0.2\nM,1976,0.9\nM,2004,0.6\n";

    #[test]
    fn reads_with_default_roles() {
        let ds = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(ds.num_rows(), 3);
        // gender (text) → protected; year/rating (numeric) → observed.
        assert_eq!(ds.protected_attributes().len(), 1);
        assert_eq!(ds.observed_names(), vec!["year", "rating"]);
    }

    #[test]
    fn explicit_roles_override_defaults() {
        let opts = CsvOptions::default().role("year", AttributeRole::Protected);
        let ds = read_csv_str(SAMPLE, &opts).unwrap();
        let attrs = ds.protected_attributes();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[1].name, "year");
        assert_eq!(attrs[1].labels, vec!["1976", "1990", "2004"]);
    }

    #[test]
    fn header_role_annotations() {
        let text = "gender:protected,year:protected,rating:observed,id:meta\n\
                    F,1990,0.2,w1\nM,1976,0.9,w2\n";
        let ds = read_csv_str(text, &CsvOptions::default()).unwrap();
        let attrs = ds.protected_attributes();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].name, "gender");
        assert_eq!(attrs[1].name, "year");
        assert_eq!(ds.observed_names(), vec!["rating"]);
        // The annotation is stripped from the column name.
        assert!(ds.column("id").is_some());
        assert!(ds.column("id:meta").is_none());
    }

    #[test]
    fn explicit_roles_override_annotations() {
        let text = "year:protected,rating\n1990,0.2\n";
        let opts = CsvOptions::default().role("year", AttributeRole::Meta);
        let ds = read_csv_str(text, &opts).unwrap();
        assert!(ds.protected_attributes().is_empty());
    }

    #[test]
    fn colon_without_valid_role_stays_in_the_name() {
        let text = "time:stamp,v\nmorning,1\n";
        let ds = read_csv_str(text, &CsvOptions::default()).unwrap();
        assert!(ds.column("time:stamp").is_some());
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let text = "name,notes\nw1,\"likes \"\"rust\"\", a lot\"\nw2,\"multi\nline\"\n";
        let ds = read_csv_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(ds.num_rows(), 2);
        let col = ds.column("notes").unwrap();
        assert_eq!(col.data.render(0), "likes \"rust\", a lot");
        assert_eq!(col.data.render(1), "multi\nline");
    }

    #[test]
    fn crlf_and_trailing_newline_variants() {
        let crlf = "a,b\r\n1,2\r\n3,4";
        let ds = read_csv_str(crlf, &CsvOptions::default()).unwrap();
        assert_eq!(ds.num_rows(), 2);
        let no_trailing = "a,b\n1,2";
        let ds = read_csv_str(no_trailing, &CsvOptions::default()).unwrap();
        assert_eq!(ds.num_rows(), 1);
    }

    #[test]
    fn custom_separator() {
        let text = "a;b\n1;x\n";
        let opts = CsvOptions::default().separator(';');
        let ds = read_csv_str(text, &opts).unwrap();
        assert_eq!(ds.num_rows(), 1);
        assert_eq!(ds.column("b").unwrap().data.render(0), "x");
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = read_csv_str("a,b\n1\n", &CsvOptions::default()).unwrap_err();
        match err {
            DataError::Csv { line, ref message } => {
                assert_eq!(line, 2);
                assert!(message.contains("record 1"), "{message}");
            }
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn ragged_row_after_quoted_newlines_reports_physical_line() {
        // Record 1 spans physical lines 2–4 (two embedded newlines); the
        // ragged record 2 therefore *starts* on physical line 5. The old
        // record-index arithmetic would have blamed line 3.
        let text = "a,b\n\"multi\nline\ncell\",x\n1\n";
        let err = read_csv_str(text, &CsvOptions::default()).unwrap_err();
        match err {
            DataError::Csv { line, ref message } => {
                assert_eq!(line, 5, "{message}");
                assert!(message.contains("record 2"), "{message}");
                assert!(message.contains("expected 2 fields, found 1"), "{message}");
            }
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn ragged_row_line_accounts_for_blank_lines_and_missing_trailing_newline() {
        // A blank line shifts physical positions but produces no record;
        // the ragged final record has no trailing newline.
        let err = read_csv_str("a,b\n\n1,2\n3", &CsvOptions::default()).unwrap_err();
        match err {
            DataError::Csv { line, ref message } => {
                assert_eq!(line, 4, "{message}");
                assert!(message.contains("record 2"), "{message}");
            }
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn malformed_quotes_error() {
        assert!(read_csv_str("a\n\"unterminated\n", &CsvOptions::default()).is_err());
        assert!(read_csv_str("a\nfo\"o\n", &CsvOptions::default()).is_err());
        assert!(read_csv_str("", &CsvOptions::default()).is_err());
    }

    #[test]
    fn float_protected_is_rejected_with_hint() {
        let opts = CsvOptions::default().role("rating", AttributeRole::Protected);
        let err = read_csv_str(SAMPLE, &opts).unwrap_err();
        assert!(err.to_string().contains("discretize"));
    }

    #[test]
    fn text_observed_is_rejected() {
        let opts = CsvOptions::default().role("gender", AttributeRole::Observed);
        assert!(read_csv_str(SAMPLE, &opts).is_err());
    }

    #[test]
    fn round_trip_preserves_data() {
        let ds = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        let csv = write_csv_string(&ds);
        let opts = CsvOptions::default();
        let ds2 = read_csv_str(&csv, &opts).unwrap();
        assert_eq!(ds.num_rows(), ds2.num_rows());
        for (c1, c2) in ds.columns().iter().zip(ds2.columns()) {
            assert_eq!(c1.name, c2.name);
            for r in 0..ds.num_rows() {
                assert_eq!(c1.data.render(r), c2.data.render(r));
            }
        }
    }

    #[test]
    fn writer_quotes_special_fields() {
        let ds = Dataset::builder()
            .categorical(
                "notes",
                AttributeRole::Meta,
                &["plain", "has,comma", "has\"quote"],
            )
            .build()
            .unwrap();
        let csv = write_csv_string(&ds);
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "a,b\n1,2\n\n3,4\n";
        let ds = read_csv_str(text, &CsvOptions::default()).unwrap();
        assert_eq!(ds.num_rows(), 2);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fairank_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let ds = read_csv_str(SAMPLE, &CsvOptions::default()).unwrap();
        write_csv_file(&ds, &path).unwrap();
        let back = read_csv_file(&path, &CsvOptions::default()).unwrap();
        assert_eq!(back.num_rows(), 3);
        std::fs::remove_file(&path).ok();
    }
}
