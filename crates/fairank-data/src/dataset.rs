//! The [`Dataset`] type: individuals × attributes, column-oriented.

use serde::{Deserialize, Serialize};

use fairank_core::scoring::{ObservedTable, ScoreSource};
use fairank_core::space::{ProtectedAttribute, ProtectedTable, RankingSpace};

use crate::column::{Column, ColumnData};
use crate::error::{DataError, Result};
use crate::filter::Filter;
use crate::schema::{AttributeRole, DataType, FieldDef, Schema};

/// A set of individuals and their attributes (protected, observed, meta),
/// stored column-wise.
///
/// Invariants (enforced at construction):
/// * all columns have exactly `num_rows` values;
/// * column names are unique;
/// * observed columns are numeric (integers are widened to floats so scoring
///   functions can consume them);
/// * protected columns are categorical or integer — floats must be
///   discretized (see [`Dataset::discretize`]) before being used as
///   protected attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Dataset {
    /// Starts building a dataset.
    pub fn builder() -> DatasetBuilder {
        DatasetBuilder { columns: Vec::new() }
    }

    /// Number of individuals.
    pub fn num_rows(&self) -> usize {
        self.n_rows
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Mutable access for in-crate transforms (bias injection,
    /// anonymization) that preserve the dataset invariants.
    pub(crate) fn columns_mut(&mut self) -> &mut [Column] {
        &mut self.columns
    }

    /// A column by name, failing with [`DataError::UnknownColumn`].
    pub fn column_required(&self, name: &str) -> Result<&Column> {
        self.column(name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))
    }

    /// A new dataset containing only `rows`, in the given order.
    pub fn select_rows(&self, rows: &[u32]) -> Result<Dataset> {
        if let Some(&bad) = rows.iter().find(|&&r| r as usize >= self.n_rows) {
            return Err(DataError::LengthMismatch {
                column: format!("<row {bad}>"),
                expected: self.n_rows,
                actual: bad as usize,
            });
        }
        Ok(Dataset {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    data: c.data.take(rows),
                })
                .collect(),
            n_rows: rows.len(),
        })
    }

    /// Applies a protected-attribute filter ("the user can filter the
    /// individuals based on protected attributes", §2).
    pub fn filter(&self, filter: &Filter) -> Result<Dataset> {
        let rows = filter.matching_rows(self)?;
        self.select_rows(&rows)
    }

    /// Replaces a numeric column by a categorical one with interval labels.
    /// `edges` must be strictly increasing; values are assigned to
    /// `[e0,e1), [e1,e2), …` with underflow/overflow buckets at the ends.
    pub fn discretize(&self, name: &str, edges: &[f64]) -> Result<Dataset> {
        if edges.len() < 2 {
            return Err(DataError::InvalidBins(
                "need at least two bin edges".into(),
            ));
        }
        if edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DataError::InvalidBins(
                "bin edges must be strictly increasing".into(),
            ));
        }
        let col = self.column_required(name)?;
        let values: Vec<f64> = match &col.data {
            ColumnData::Float(v) => v.clone(),
            ColumnData::Integer(v) => v.iter().map(|&x| x as f64).collect(),
            ColumnData::Categorical { .. } => {
                return Err(DataError::TypeMismatch {
                    column: name.to_string(),
                    expected: "numeric",
                })
            }
        };
        let mut labels: Vec<String> = Vec::with_capacity(edges.len() + 1);
        labels.push(format!("<{}", trim_num(edges[0])));
        for w in edges.windows(2) {
            labels.push(format!("[{},{})", trim_num(w[0]), trim_num(w[1])));
        }
        labels.push(format!(">={}", trim_num(edges[edges.len() - 1])));
        let strings: Vec<&str> = values
            .iter()
            .map(|&v| {
                let bucket = match edges.iter().position(|&e| v < e) {
                    Some(0) => 0,
                    Some(i) => i,
                    None => edges.len(),
                };
                labels[bucket].as_str()
            })
            .collect();
        let mut ds = self.clone();
        let idx = ds.schema.index_of(name).expect("column exists");
        ds.columns[idx].data = ColumnData::categorical_from(&strings);
        let mut fields: Vec<FieldDef> = ds.schema.fields().to_vec();
        fields[idx].dtype = DataType::Categorical;
        ds.schema = Schema::from_fields(fields);
        Ok(ds)
    }

    /// Changes the role of one column (used e.g. to demote an anonymized
    /// attribute to meta, or promote a column to protected).
    pub fn with_role(&self, name: &str, role: AttributeRole) -> Result<Dataset> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))?;
        let mut fields: Vec<FieldDef> = self.schema.fields().to_vec();
        let dtype = fields[idx].dtype;
        if role == AttributeRole::Protected && dtype == DataType::Float {
            return Err(DataError::TypeMismatch {
                column: name.to_string(),
                expected: "categorical or integer (discretize floats first)",
            });
        }
        if role == AttributeRole::Observed && dtype == DataType::Categorical {
            return Err(DataError::TypeMismatch {
                column: name.to_string(),
                expected: "numeric",
            });
        }
        fields[idx].role = role;
        let mut ds = self.clone();
        if role == AttributeRole::Observed {
            // Widen integers so scoring functions can consume the column.
            if let ColumnData::Integer(v) = &ds.columns[idx].data {
                ds.columns[idx].data =
                    ColumnData::Float(v.iter().map(|&x| x as f64).collect());
                fields[idx].dtype = DataType::Float;
            }
        }
        ds.schema = Schema::from_fields(fields);
        Ok(ds)
    }

    /// Resolves a score source against this dataset and packages the result
    /// with the protected attributes as a [`RankingSpace`].
    pub fn to_space(&self, source: &ScoreSource) -> Result<RankingSpace> {
        let scores = source.resolve(self)?;
        Ok(RankingSpace::new(self.protected_attributes(), scores)?)
    }

    /// Renders the first `limit` rows as display cells — `(column names,
    /// rows of cells)`. Only the displayed cells are materialized, straight
    /// off the columnar storage; the dataset itself is never copied. This
    /// is the one head-view implementation behind [`Self::render_head`] and
    /// the session layer's `data` command.
    pub fn head_cells(&self, limit: usize) -> (Vec<String>, Vec<Vec<String>>) {
        let rows = limit.min(self.n_rows);
        let columns = self.columns.iter().map(|c| c.name.clone()).collect();
        let cells = (0..rows)
            .map(|r| self.columns.iter().map(|c| c.data.render(r)).collect())
            .collect();
        (columns, cells)
    }

    /// Renders the first `limit` rows as an aligned text table (used by the
    /// CLI's `show` command and examples).
    pub fn render_head(&self, limit: usize) -> String {
        let rows = limit.min(self.n_rows);
        let (_, cells) = self.head_cells(limit);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name.len()).collect();
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:width$}", c.name, width = widths[i]));
        }
        out.push('\n');
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:width$}", cell, width = widths[i]));
            }
            out.push('\n');
        }
        if rows < self.n_rows {
            out.push_str(&format!("… ({} more rows)\n", self.n_rows - rows));
        }
        out
    }
}

fn trim_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Schema {
    pub(crate) fn from_fields(fields: Vec<FieldDef>) -> Schema {
        let mut s = Schema::new();
        for f in fields {
            s.push(f);
        }
        s
    }
}

impl ObservedTable for Dataset {
    fn num_rows(&self) -> usize {
        self.n_rows
    }

    fn observed_column(&self, name: &str) -> Option<&[f64]> {
        let field = self.schema.field(name)?;
        if field.role != AttributeRole::Observed {
            return None;
        }
        self.column(name)?.as_float()
    }

    fn observed_names(&self) -> Vec<&str> {
        self.schema.names_with_role(AttributeRole::Observed)
    }
}

impl ProtectedTable for Dataset {
    fn protected_attributes(&self) -> Vec<ProtectedAttribute> {
        let mut out = Vec::new();
        for field in self.schema.fields() {
            if field.role != AttributeRole::Protected {
                continue;
            }
            let col = self.column(&field.name).expect("schema/columns in sync");
            match &col.data {
                ColumnData::Categorical { codes, labels } => out.push(ProtectedAttribute {
                    name: field.name.clone(),
                    codes: codes.clone(),
                    labels: labels.clone(),
                }),
                ColumnData::Integer(values) => {
                    // Enumerate distinct integers, ascending, as categories.
                    let mut distinct: Vec<i64> = values.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    let codes = values
                        .iter()
                        .map(|v| {
                            distinct.binary_search(v).expect("value present") as u32
                        })
                        .collect();
                    out.push(ProtectedAttribute {
                        name: field.name.clone(),
                        codes,
                        labels: distinct.iter().map(|v| v.to_string()).collect(),
                    });
                }
                ColumnData::Float(_) => {
                    unreachable!("builder rejects float protected columns")
                }
            }
        }
        out
    }
}

/// Builder enforcing the dataset invariants.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    columns: Vec<(AttributeRole, Column)>,
}

impl DatasetBuilder {
    /// Adds a categorical column.
    pub fn categorical<S: AsRef<str>>(
        mut self,
        name: impl Into<String>,
        role: AttributeRole,
        values: &[S],
    ) -> Self {
        let data = ColumnData::categorical_from(values);
        self.columns.push((
            role,
            Column {
                name: name.into(),
                data,
            },
        ));
        self
    }

    /// Adds a float column.
    pub fn float(
        mut self,
        name: impl Into<String>,
        role: AttributeRole,
        values: Vec<f64>,
    ) -> Self {
        self.columns.push((
            role,
            Column {
                name: name.into(),
                data: ColumnData::Float(values),
            },
        ));
        self
    }

    /// Adds an integer column.
    pub fn integer(
        mut self,
        name: impl Into<String>,
        role: AttributeRole,
        values: Vec<i64>,
    ) -> Self {
        self.columns.push((
            role,
            Column {
                name: name.into(),
                data: ColumnData::Integer(values),
            },
        ));
        self
    }

    /// Validates and builds the dataset.
    pub fn build(self) -> Result<Dataset> {
        let n_rows = self.columns.first().map_or(0, |(_, c)| c.data.len());
        let mut schema = Schema::new();
        let mut columns = Vec::with_capacity(self.columns.len());
        for (role, mut col) in self.columns {
            if col.name.trim().is_empty() {
                return Err(DataError::UnknownColumn("<empty name>".into()));
            }
            if schema.index_of(&col.name).is_some() {
                return Err(DataError::DuplicateColumn(col.name));
            }
            if col.data.len() != n_rows {
                return Err(DataError::LengthMismatch {
                    column: col.name,
                    expected: n_rows,
                    actual: col.data.len(),
                });
            }
            // Observed integers widen to floats; observed categoricals are
            // invalid; protected floats are invalid.
            match (role, col.data.dtype()) {
                (AttributeRole::Observed, DataType::Integer) => {
                    if let ColumnData::Integer(v) = &col.data {
                        col.data = ColumnData::Float(v.iter().map(|&x| x as f64).collect());
                    }
                }
                (AttributeRole::Observed, DataType::Categorical) => {
                    return Err(DataError::TypeMismatch {
                        column: col.name,
                        expected: "numeric",
                    });
                }
                (AttributeRole::Protected, DataType::Float) => {
                    return Err(DataError::TypeMismatch {
                        column: col.name,
                        expected: "categorical or integer (discretize floats first)",
                    });
                }
                _ => {}
            }
            schema.push(FieldDef {
                name: col.name.clone(),
                role,
                dtype: col.data.dtype(),
            });
            columns.push(col);
        }
        Ok(Dataset {
            schema,
            columns,
            n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::builder()
            .categorical(
                "gender",
                AttributeRole::Protected,
                &["F", "M", "M", "F"],
            )
            .integer("year", AttributeRole::Protected, vec![1990, 1976, 1990, 2004])
            .float("rating", AttributeRole::Observed, vec![0.2, 0.9, 0.6, 0.4])
            .integer("experience", AttributeRole::Observed, vec![1, 14, 6, 0])
            .categorical("id", AttributeRole::Meta, &["w1", "w2", "w3", "w4"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_enforces_lengths_and_names() {
        let err = Dataset::builder()
            .float("a", AttributeRole::Observed, vec![1.0])
            .float("b", AttributeRole::Observed, vec![1.0, 2.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));

        let err = Dataset::builder()
            .float("a", AttributeRole::Observed, vec![1.0])
            .float("a", AttributeRole::Observed, vec![2.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::DuplicateColumn(_)));
    }

    #[test]
    fn builder_rejects_bad_role_type_combos() {
        let err = Dataset::builder()
            .categorical("skill", AttributeRole::Observed, &["good"])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));

        let err = Dataset::builder()
            .float("age", AttributeRole::Protected, vec![30.5])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
    }

    #[test]
    fn observed_integers_widen_to_float() {
        let ds = sample();
        let xp = ds.observed_column("experience").unwrap();
        assert_eq!(xp, &[1.0, 14.0, 6.0, 0.0]);
        assert_eq!(
            ds.schema().field("experience").unwrap().dtype,
            DataType::Float
        );
    }

    #[test]
    fn observed_table_respects_roles() {
        let ds = sample();
        assert!(ds.observed_column("rating").is_some());
        assert!(ds.observed_column("gender").is_none()); // protected
        assert!(ds.observed_column("id").is_none()); // meta
        assert_eq!(ds.observed_names(), vec!["rating", "experience"]);
        assert_eq!(ObservedTable::num_rows(&ds), 4);
    }

    #[test]
    fn protected_attributes_cover_categorical_and_integer() {
        let ds = sample();
        let attrs = ds.protected_attributes();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].name, "gender");
        assert_eq!(attrs[0].labels, vec!["F", "M"]);
        assert_eq!(attrs[1].name, "year");
        // Distinct years ascending: 1976, 1990, 2004.
        assert_eq!(attrs[1].labels, vec!["1976", "1990", "2004"]);
        assert_eq!(attrs[1].codes, vec![1, 0, 1, 2]);
    }

    #[test]
    fn select_rows_and_bounds() {
        let ds = sample();
        let sub = ds.select_rows(&[3, 0]).unwrap();
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.column("id").unwrap().data.render(0), "w4");
        assert!(ds.select_rows(&[9]).is_err());
    }

    #[test]
    fn discretize_year_into_generations() {
        let ds = sample();
        let d = ds.discretize("year", &[1980.0, 2000.0]).unwrap();
        let col = d.column("year").unwrap();
        let (codes, labels) = col.as_categorical().unwrap();
        assert_eq!(labels, &["[1980,2000)", "<1980", ">=2000"]);
        assert_eq!(codes.len(), 4);
        assert_eq!(col.data.render(1), "<1980");
        assert_eq!(col.data.render(3), ">=2000");
        // Schema updated.
        assert_eq!(d.schema().field("year").unwrap().dtype, DataType::Categorical);
    }

    #[test]
    fn discretize_validation() {
        let ds = sample();
        assert!(ds.discretize("year", &[2000.0]).is_err());
        assert!(ds.discretize("year", &[2000.0, 1990.0]).is_err());
        assert!(ds.discretize("gender", &[0.0, 1.0]).is_err());
        assert!(ds.discretize("nope", &[0.0, 1.0]).is_err());
    }

    #[test]
    fn with_role_transitions() {
        let ds = sample();
        // Demote a protected attribute to meta (data-transparency setting).
        let demoted = ds.with_role("gender", AttributeRole::Meta).unwrap();
        assert_eq!(demoted.protected_attributes().len(), 1);
        // Promote experience-like integer to protected.
        let promoted = ds.with_role("experience", AttributeRole::Protected);
        // experience was widened to float at build, so promotion must fail.
        assert!(promoted.is_err());
        // Meta integer columns can be promoted.
        let ds2 = Dataset::builder()
            .integer("age", AttributeRole::Meta, vec![30, 40])
            .float("skill", AttributeRole::Observed, vec![0.5, 0.6])
            .build()
            .unwrap();
        let p = ds2.with_role("age", AttributeRole::Protected).unwrap();
        assert_eq!(p.protected_attributes().len(), 1);
    }

    #[test]
    fn to_space_resolves_scores() {
        use fairank_core::scoring::LinearScoring;
        let ds = sample();
        let f = LinearScoring::builder()
            .weight("rating", 1.0)
            .build(&ds)
            .unwrap();
        let space = ds.to_space(&ScoreSource::Function(f)).unwrap();
        assert_eq!(space.num_individuals(), 4);
        assert_eq!(space.attributes().len(), 2);
        assert_eq!(space.scores(), &[0.2, 0.9, 0.6, 0.4]);
    }

    #[test]
    fn render_head_is_aligned() {
        let ds = sample();
        let text = ds.render_head(2);
        assert!(text.contains("gender"));
        assert!(text.contains("… (2 more rows)"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 rows + ellipsis
    }
}
