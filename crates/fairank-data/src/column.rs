//! Columnar storage with dictionary-encoded categoricals.

use serde::{Deserialize, Serialize};

use crate::error::{DataError, Result};
use crate::schema::DataType;

/// The values of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    /// Dictionary-encoded strings: `codes[i]` indexes into `labels`.
    Categorical { codes: Vec<u32>, labels: Vec<String> },
    /// 64-bit floats.
    Float(Vec<f64>),
    /// 64-bit signed integers.
    Integer(Vec<i64>),
}

impl ColumnData {
    /// Builds a categorical column from raw strings, encoding in
    /// first-appearance order.
    pub fn categorical_from<S: AsRef<str>>(values: &[S]) -> Self {
        let mut labels: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let v = v.as_ref();
            let code = match labels.iter().position(|l| l == v) {
                Some(i) => i as u32,
                None => {
                    labels.push(v.to_string());
                    (labels.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        ColumnData::Categorical { codes, labels }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Categorical { codes, .. } => codes.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Integer(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical type of this column.
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Categorical { .. } => DataType::Categorical,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Integer(_) => DataType::Integer,
        }
    }

    /// Renders value `row` as a display string.
    pub fn render(&self, row: usize) -> String {
        match self {
            ColumnData::Categorical { codes, labels } => {
                labels[codes[row] as usize].clone()
            }
            ColumnData::Float(v) => format_float(v[row]),
            ColumnData::Integer(v) => v[row].to_string(),
        }
    }

    /// Takes the given rows, producing a new column.
    pub fn take(&self, rows: &[u32]) -> ColumnData {
        match self {
            ColumnData::Categorical { codes, labels } => ColumnData::Categorical {
                codes: rows.iter().map(|&r| codes[r as usize]).collect(),
                labels: labels.clone(),
            },
            ColumnData::Float(v) => {
                ColumnData::Float(rows.iter().map(|&r| v[r as usize]).collect())
            }
            ColumnData::Integer(v) => {
                ColumnData::Integer(rows.iter().map(|&r| v[r as usize]).collect())
            }
        }
    }

    /// Numeric view of the value at `row`, if the column is numeric.
    pub fn numeric(&self, row: usize) -> Option<f64> {
        match self {
            ColumnData::Float(v) => Some(v[row]),
            ColumnData::Integer(v) => Some(v[row] as f64),
            ColumnData::Categorical { .. } => None,
        }
    }
}

/// Renders a float the way FaiRank's CSV writer and panels expect:
/// integral values without a trailing `.0` are kept distinguishable from
/// integers by always including a decimal point.
pub(crate) fn format_float(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// A named column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column name, unique within a dataset.
    pub name: String,
    /// The values.
    pub data: ColumnData,
}

impl Column {
    /// Creates a column, rejecting empty names.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Result<Self> {
        let name = name.into();
        if name.trim().is_empty() {
            return Err(DataError::UnknownColumn("<empty name>".into()));
        }
        Ok(Column { name, data })
    }

    /// The float slice of a [`ColumnData::Float`] column.
    pub fn as_float(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The codes/labels of a [`ColumnData::Categorical`] column.
    pub fn as_categorical(&self) -> Option<(&[u32], &[String])> {
        match &self.data {
            ColumnData::Categorical { codes, labels } => Some((codes, labels)),
            _ => None,
        }
    }

    /// The int slice of a [`ColumnData::Integer`] column.
    pub fn as_integer(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Integer(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_encoding() {
        let c = ColumnData::categorical_from(&["x", "y", "x", "z"]);
        match &c {
            ColumnData::Categorical { codes, labels } => {
                assert_eq!(codes, &[0, 1, 0, 2]);
                assert_eq!(labels, &["x", "y", "z"]);
            }
            _ => panic!("wrong type"),
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.dtype(), DataType::Categorical);
        assert_eq!(c.render(3), "z");
    }

    #[test]
    fn take_reindexes_all_types() {
        let cat = ColumnData::categorical_from(&["a", "b", "c"]);
        let took = cat.take(&[2, 0]);
        assert_eq!(took.render(0), "c");
        assert_eq!(took.render(1), "a");

        let f = ColumnData::Float(vec![1.5, 2.5, 3.5]).take(&[1]);
        assert_eq!(f.render(0), "2.5");

        let i = ColumnData::Integer(vec![10, 20]).take(&[1, 0]);
        assert_eq!(i.render(0), "20");
    }

    #[test]
    fn numeric_views() {
        assert_eq!(ColumnData::Float(vec![0.5]).numeric(0), Some(0.5));
        assert_eq!(ColumnData::Integer(vec![7]).numeric(0), Some(7.0));
        assert_eq!(ColumnData::categorical_from(&["a"]).numeric(0), None);
    }

    #[test]
    fn float_rendering() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(0.911), "0.911");
        assert_eq!(format_float(-3.0), "-3.0");
    }

    #[test]
    fn column_accessors() {
        let c = Column::new("r", ColumnData::Float(vec![0.1])).unwrap();
        assert!(c.as_float().is_some());
        assert!(c.as_categorical().is_none());
        assert!(c.as_integer().is_none());
        assert!(Column::new("  ", ColumnData::Float(vec![])).is_err());
    }

    #[test]
    fn empty_checks() {
        assert!(ColumnData::Float(vec![]).is_empty());
        assert!(!ColumnData::Integer(vec![1]).is_empty());
    }
}
