//! The content-addressed, immutable dataset store.
//!
//! FaiRank's interactive workflow assumes many auditors exploring the
//! *same* public marketplace data. Before this module every session owned
//! a private copy of each dataset; with it, datasets are fingerprinted at
//! load ([`fingerprint_dataset`]: a stable 128-bit hash over the columnar
//! data and the schema) and held once behind `Arc`-shared storage. A
//! [`DatasetStore`] maps fingerprints to live entries: interning a
//! dataset whose content is already present dedupes to the existing
//! allocation, so N sessions loading the same CSV share one copy, and
//! re-loading a CSV into the same session is O(1) after fingerprinting.
//!
//! The store holds *weak* references: a dataset's storage is freed as
//! soon as the last session handle drops, so the store can never pin
//! memory for data nobody uses. [`DatasetStore::stats`] prunes dead
//! entries and reports the live dataset count and resident bytes (the
//! numbers the `sessions` admin reply surfaces).
//!
//! Datasets behind handles are immutable by construction: every
//! transforming operation (`filter`, `discretize`, `with_role`,
//! anonymization, bias injection) returns a *new* `Dataset`, which a
//! session interns under a new name — so a fingerprint can never go
//! stale, and content-addressed caches keyed on it need no invalidation
//! protocol.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, Weak};

use fairank_core::fingerprint::{ContentHasher, Fingerprint};

use crate::column::ColumnData;
use crate::dataset::Dataset;

/// Computes the stable content fingerprint of a dataset: schema (names,
/// roles, physical types) plus every column's payload (dictionary codes
/// and labels, IEEE-754 float bit patterns, integers), all
/// length-prefixed. Equal fingerprints ⇒ equal datasets for every
/// analysis in the system (the hash covers every byte an evaluation can
/// observe).
pub fn fingerprint_dataset(ds: &Dataset) -> Fingerprint {
    let mut h = ContentHasher::new();
    h.update_str("fairank.dataset.v1");
    h.update_u64(ds.num_rows() as u64);
    h.update_len(ds.schema().len());
    for field in ds.schema().fields() {
        h.update_str(&field.name);
        h.update_str(field.role.name());
        h.update_u32(match field.dtype {
            crate::schema::DataType::Categorical => 0,
            crate::schema::DataType::Float => 1,
            crate::schema::DataType::Integer => 2,
        });
    }
    for col in ds.columns() {
        h.update_str(&col.name);
        match &col.data {
            ColumnData::Categorical { codes, labels } => {
                h.update_u32(0);
                h.update_len(codes.len());
                for &code in codes {
                    h.update_u32(code);
                }
                h.update_len(labels.len());
                for label in labels {
                    h.update_str(label);
                }
            }
            ColumnData::Float(values) => {
                h.update_u32(1);
                h.update_len(values.len());
                for &v in values {
                    h.update_f64(v);
                }
            }
            ColumnData::Integer(values) => {
                h.update_u32(2);
                h.update_len(values.len());
                for &v in values {
                    h.update_i64(v);
                }
            }
        }
    }
    h.finish()
}

/// Approximate resident heap bytes of a dataset's columnar payload —
/// the quantity [`StoreStats::bytes`] sums. Counts value buffers and
/// dictionary labels; struct overheads are ignored (they are noise next
/// to any real column).
pub fn approx_heap_bytes(ds: &Dataset) -> usize {
    let mut bytes = 0usize;
    for col in ds.columns() {
        bytes += col.name.len();
        bytes += match &col.data {
            ColumnData::Categorical { codes, labels } => {
                codes.len() * std::mem::size_of::<u32>()
                    + labels.iter().map(String::len).sum::<usize>()
                    + labels.len() * std::mem::size_of::<String>()
            }
            ColumnData::Float(v) => v.len() * std::mem::size_of::<f64>(),
            ColumnData::Integer(v) => v.len() * std::mem::size_of::<i64>(),
        };
    }
    bytes
}

/// One immutable, fingerprinted dataset held by the store.
#[derive(Debug)]
struct StoredDataset {
    dataset: Dataset,
    fingerprint: Fingerprint,
    bytes: usize,
}

/// A lightweight, cloneable handle to an immutable dataset in shared
/// storage. Cloning a handle clones an `Arc`, never the data; `Deref`
/// gives the full [`Dataset`] API read-only.
#[derive(Debug, Clone)]
pub struct DatasetHandle {
    inner: Arc<StoredDataset>,
}

impl DatasetHandle {
    /// Wraps a dataset without a store (fingerprinted, but nothing to
    /// dedupe against). Used by tests and detached tooling; sessions
    /// intern through a [`DatasetStore`] instead.
    pub fn detached(dataset: Dataset) -> DatasetHandle {
        let fingerprint = fingerprint_dataset(&dataset);
        let bytes = approx_heap_bytes(&dataset);
        DatasetHandle {
            inner: Arc::new(StoredDataset {
                dataset,
                fingerprint,
                bytes,
            }),
        }
    }

    /// The dataset behind the handle.
    pub fn dataset(&self) -> &Dataset {
        &self.inner.dataset
    }

    /// The content fingerprint, computed once at intern time.
    pub fn fingerprint(&self) -> Fingerprint {
        self.inner.fingerprint
    }

    /// Approximate resident heap bytes of the shared payload.
    pub fn heap_bytes(&self) -> usize {
        self.inner.bytes
    }

    /// Whether two handles point at the *same allocation* (not merely
    /// equal content) — the property the dedup regression tests pin.
    pub fn shares_storage_with(&self, other: &DatasetHandle) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Deref for DatasetHandle {
    type Target = Dataset;

    fn deref(&self) -> &Dataset {
        &self.inner.dataset
    }
}

impl PartialEq for DatasetHandle {
    fn eq(&self, other: &Self) -> bool {
        // Same storage short-circuits; otherwise content equality.
        self.shares_storage_with(other) || self.inner.dataset == other.inner.dataset
    }
}

/// Live-store statistics (what the `sessions` admin reply reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Distinct live datasets (entries with at least one handle).
    pub datasets: usize,
    /// Approximate resident bytes across those datasets.
    pub bytes: usize,
}

/// The concurrent content-addressed store. Cheap to share behind an
/// `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct DatasetStore {
    entries: Mutex<HashMap<Fingerprint, Weak<StoredDataset>>>,
}

impl DatasetStore {
    /// An empty store.
    pub fn new() -> DatasetStore {
        DatasetStore::default()
    }

    /// Interns a dataset: fingerprints it, and either returns a handle to
    /// the already-stored identical content (dropping `dataset`) or moves
    /// `dataset` into shared storage. Dead entries are pruned en passant.
    pub fn intern(&self, dataset: Dataset) -> DatasetHandle {
        let fingerprint = fingerprint_dataset(&dataset);
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(live) = entries.get(&fingerprint).and_then(Weak::upgrade) {
            debug_assert_eq!(
                live.dataset, dataset,
                "fingerprint collision: distinct datasets hashed identically"
            );
            return DatasetHandle { inner: live };
        }
        let bytes = approx_heap_bytes(&dataset);
        let inner = Arc::new(StoredDataset {
            dataset,
            fingerprint,
            bytes,
        });
        entries.retain(|_, weak| weak.strong_count() > 0);
        entries.insert(fingerprint, Arc::downgrade(&inner));
        DatasetHandle { inner }
    }

    /// Re-interns an existing handle into *this* store: if identical
    /// content is already present the resident handle wins; otherwise the
    /// handle's storage is adopted as-is (no copy, no re-hash).
    pub fn adopt(&self, handle: &DatasetHandle) -> DatasetHandle {
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(live) = entries.get(&handle.fingerprint()).and_then(Weak::upgrade) {
            return DatasetHandle { inner: live };
        }
        entries.insert(handle.fingerprint(), Arc::downgrade(&handle.inner));
        handle.clone()
    }

    /// Live statistics; prunes entries whose last handle dropped.
    pub fn stats(&self) -> StoreStats {
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        entries.retain(|_, weak| weak.strong_count() > 0);
        let mut stats = StoreStats::default();
        for weak in entries.values() {
            if let Some(live) = weak.upgrade() {
                stats.datasets += 1;
                stats.bytes += live.bytes;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::schema::AttributeRole;

    #[test]
    fn identical_content_dedupes_to_one_allocation() {
        let store = DatasetStore::new();
        let a = store.intern(paper::table1_dataset());
        let b = store.intern(paper::table1_dataset());
        assert!(a.shares_storage_with(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(store.stats().datasets, 1);
        assert!(store.stats().bytes > 0);
    }

    #[test]
    fn distinct_content_gets_distinct_entries() {
        let store = DatasetStore::new();
        let a = store.intern(paper::table1_dataset());
        let other = Dataset::builder()
            .categorical("g", AttributeRole::Protected, &["x", "y"])
            .float("s", AttributeRole::Observed, vec![0.1, 0.9])
            .build()
            .unwrap();
        let b = store.intern(other);
        assert!(!a.shares_storage_with(&b));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(store.stats().datasets, 2);
    }

    #[test]
    fn fingerprint_covers_schema_roles_not_just_values() {
        let ds = Dataset::builder()
            .integer("age", AttributeRole::Meta, vec![30, 40])
            .float("skill", AttributeRole::Observed, vec![0.5, 0.6])
            .build()
            .unwrap();
        let promoted = ds.with_role("age", AttributeRole::Protected).unwrap();
        assert_ne!(fingerprint_dataset(&ds), fingerprint_dataset(&promoted));
    }

    #[test]
    fn fingerprint_distinguishes_float_bit_patterns() {
        let mk = |v: f64| {
            Dataset::builder()
                .float("s", AttributeRole::Observed, vec![v])
                .build()
                .unwrap()
        };
        assert_ne!(
            fingerprint_dataset(&mk(0.0)),
            fingerprint_dataset(&mk(-0.0))
        );
    }

    #[test]
    fn dropping_all_handles_frees_the_entry() {
        let store = DatasetStore::new();
        let handle = store.intern(paper::table1_dataset());
        assert_eq!(store.stats().datasets, 1);
        drop(handle);
        assert_eq!(store.stats(), StoreStats::default());
        // Re-interning after the drop creates a fresh entry.
        let again = store.intern(paper::table1_dataset());
        assert_eq!(store.stats().datasets, 1);
        assert_eq!(again.num_rows(), 10);
    }

    #[test]
    fn adopt_prefers_resident_content() {
        let store_a = DatasetStore::new();
        let store_b = DatasetStore::new();
        let resident = store_b.intern(paper::table1_dataset());
        let visitor = store_a.intern(paper::table1_dataset());
        assert!(!resident.shares_storage_with(&visitor));
        // Content already lives in B: the resident allocation wins.
        let adopted = store_b.adopt(&visitor);
        assert!(adopted.shares_storage_with(&resident));
        // Novel content is adopted without copying.
        let store_c = DatasetStore::new();
        let adopted = store_c.adopt(&visitor);
        assert!(adopted.shares_storage_with(&visitor));
        assert_eq!(store_c.stats().datasets, 1);
    }

    #[test]
    fn handles_deref_to_the_full_dataset_api() {
        let store = DatasetStore::new();
        let handle = store.intern(paper::table1_dataset());
        assert_eq!(handle.num_rows(), 10);
        assert!(handle.column("gender").is_some());
        assert_eq!(handle.dataset().num_rows(), 10);
        assert!(handle.heap_bytes() > 0);
    }

    #[test]
    fn detached_handles_fingerprint_without_a_store() {
        let a = DatasetHandle::detached(paper::table1_dataset());
        let b = DatasetHandle::detached(paper::table1_dataset());
        assert!(!a.shares_storage_with(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b); // content equality
    }
}
