//! Synthetic crowdsourcing populations.
//!
//! The FaiRank demonstration uses "simulated datasets mimicking
//! crowdsourcing platforms" (§4). A [`PopulationSpec`] declares demographic
//! (protected) attributes with value distributions, skill (observed)
//! attributes with score distributions, and bias rules that correlate the
//! two — the mechanism that makes unfair subgroups discoverable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::bias::{apply_bias, BiasRule};
use crate::dataset::Dataset;
use crate::dist::{Categorical, SkillDistribution};
use crate::error::{DataError, Result};
use crate::schema::AttributeRole;

/// One demographic (protected) attribute to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemographicSpec {
    /// Attribute name (e.g. `gender`).
    pub name: String,
    /// Value distribution.
    pub distribution: Categorical,
    /// Optional conditioning on an *earlier* demographic attribute: when
    /// the parent takes one of the listed values, the paired distribution
    /// replaces the default. This produces realistic correlations (the
    /// paper's Table 1 has them: India-born individuals speak Indian).
    pub conditional: Vec<(String, String, Categorical)>,
}

/// One skill (observed) attribute to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkillSpec {
    /// Attribute name (e.g. `rating`).
    pub name: String,
    /// Score distribution (samples clamp into `[0, 1]`).
    pub distribution: SkillDistribution,
}

/// A complete synthetic-population specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Number of individuals.
    pub size: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Demographic attributes, in column order.
    pub demographics: Vec<DemographicSpec>,
    /// Skill attributes, in column order.
    pub skills: Vec<SkillSpec>,
    /// Bias rules applied after generation.
    pub bias: Vec<BiasRule>,
}

impl PopulationSpec {
    /// Starts building a spec.
    pub fn builder(size: usize, seed: u64) -> PopulationSpecBuilder {
        PopulationSpecBuilder {
            spec: PopulationSpec {
                size,
                seed,
                demographics: Vec::new(),
                skills: Vec::new(),
                bias: Vec::new(),
            },
        }
    }

    /// Generates the dataset (deterministic for a fixed spec).
    pub fn generate(&self) -> Result<Dataset> {
        if self.size == 0 {
            return Err(DataError::InvalidSpec("population size is zero".into()));
        }
        if self.demographics.is_empty() {
            return Err(DataError::InvalidSpec(
                "at least one demographic attribute is required".into(),
            ));
        }
        if self.skills.is_empty() {
            return Err(DataError::InvalidSpec(
                "at least one skill attribute is required".into(),
            ));
        }
        for s in &self.skills {
            s.distribution.validate()?;
        }
        // Conditional parents must be earlier demographics.
        for (i, d) in self.demographics.iter().enumerate() {
            for (parent, _, _) in &d.conditional {
                if !self.demographics[..i].iter().any(|p| &p.name == parent) {
                    return Err(DataError::InvalidSpec(format!(
                        "attribute {:?} conditions on {:?}, which is not an earlier \
                         demographic attribute",
                        d.name, parent
                    )));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = Dataset::builder();
        // Worker ids first, as a meta column.
        let ids: Vec<String> = (0..self.size).map(|i| format!("w{}", i + 1)).collect();
        builder = builder.categorical("worker_id", AttributeRole::Meta, &ids);
        let mut generated: Vec<(String, Vec<String>)> = Vec::new();
        for d in &self.demographics {
            let values: Vec<String> = (0..self.size)
                .map(|row| {
                    let dist = d
                        .conditional
                        .iter()
                        .find(|(parent, value, _)| {
                            generated
                                .iter()
                                .find(|(n, _)| n == parent)
                                .is_some_and(|(_, vals)| &vals[row] == value)
                        })
                        .map(|(_, _, dist)| dist)
                        .unwrap_or(&d.distribution);
                    dist.sample(&mut rng).to_string()
                })
                .collect();
            builder =
                builder.categorical(d.name.clone(), AttributeRole::Protected, &values);
            generated.push((d.name.clone(), values));
        }
        for s in &self.skills {
            let values: Vec<f64> = (0..self.size)
                .map(|_| s.distribution.sample(&mut rng))
                .collect();
            builder = builder.float(s.name.clone(), AttributeRole::Observed, values);
        }
        let dataset = builder.build()?;
        apply_bias(&dataset, &self.bias)
    }
}

/// Builder for [`PopulationSpec`].
#[derive(Debug, Clone)]
pub struct PopulationSpecBuilder {
    spec: PopulationSpec,
}

impl PopulationSpecBuilder {
    /// Adds a demographic attribute with weighted values.
    pub fn demographic<S: Into<String>>(
        mut self,
        name: impl Into<String>,
        values: Vec<(S, f64)>,
    ) -> Result<Self> {
        self.spec.demographics.push(DemographicSpec {
            name: name.into(),
            distribution: Categorical::new(values)?,
            conditional: Vec::new(),
        });
        Ok(self)
    }

    /// Adds a conditional distribution to the most recently added
    /// demographic: when `parent` equals `value`, sample from `values`
    /// instead of the default (see [`DemographicSpec::conditional`]).
    pub fn conditioned_on<S: Into<String>>(
        mut self,
        parent: impl Into<String>,
        value: impl Into<String>,
        values: Vec<(S, f64)>,
    ) -> Result<Self> {
        let last = self.spec.demographics.last_mut().ok_or_else(|| {
            DataError::InvalidSpec(
                "conditioned_on requires a demographic attribute first".into(),
            )
        })?;
        last.conditional
            .push((parent.into(), value.into(), Categorical::new(values)?));
        Ok(self)
    }

    /// Adds a skill attribute.
    pub fn skill(
        mut self,
        name: impl Into<String>,
        distribution: SkillDistribution,
    ) -> Self {
        self.spec.skills.push(SkillSpec {
            name: name.into(),
            distribution,
        });
        self
    }

    /// Adds a bias rule.
    pub fn bias(mut self, rule: BiasRule) -> Self {
        self.spec.bias.push(rule);
        self
    }

    /// Finishes the spec.
    pub fn build(self) -> PopulationSpec {
        self.spec
    }
}

/// The demographic layout of the paper's running example (Table 1):
/// gender, country, year of birth (as decade buckets), language, ethnicity;
/// skills: experience-like `language_test` and `rating`. Unbiased unless
/// rules are added.
pub fn crowdsourcing_spec(size: usize, seed: u64) -> PopulationSpec {
    PopulationSpec::builder(size, seed)
        .demographic(
            "gender",
            vec![("Female", 0.48), ("Male", 0.52)],
        )
        .expect("static spec")
        .demographic(
            "country",
            vec![("America", 0.4), ("India", 0.35), ("Other", 0.25)],
        )
        .expect("static spec")
        .demographic(
            "birth_decade",
            vec![
                ("1960s", 0.1),
                ("1970s", 0.2),
                ("1980s", 0.3),
                ("1990s", 0.25),
                ("2000s", 0.15),
            ],
        )
        .expect("static spec")
        .demographic(
            "language",
            vec![("English", 0.6), ("Indian", 0.25), ("Other", 0.15)],
        )
        .expect("static spec")
        .demographic(
            "ethnicity",
            vec![
                ("White", 0.45),
                ("Indian", 0.25),
                ("African-American", 0.2),
                ("Other", 0.1),
            ],
        )
        .expect("static spec")
        .skill(
            "language_test",
            SkillDistribution::Beta {
                alpha: 4.0,
                beta: 2.5,
            },
        )
        .skill(
            "rating",
            SkillDistribution::Beta {
                alpha: 3.0,
                beta: 2.0,
            },
        )
        .skill(
            "experience",
            SkillDistribution::Beta {
                alpha: 1.5,
                beta: 3.0,
            },
        )
        .build()
}

/// The crowdsourcing spec with Hannak-et-al-style bias: women and
/// African-American workers receive systematically lower ratings, with an
/// intersectional extra penalty — the paper's "unfair to older African
/// Americans compared to younger White Americans" motivating case.
pub fn biased_crowdsourcing_spec(size: usize, seed: u64) -> PopulationSpec {
    let mut spec = crowdsourcing_spec(size, seed);
    spec.bias = vec![
        BiasRule::shift("gender", "Female", "rating", -0.12),
        BiasRule::shift("ethnicity", "African-American", "rating", -0.15),
        BiasRule::shift("ethnicity", "African-American", "rating", -0.10)
            .and("birth_decade", "1960s"),
        BiasRule::shift("country", "India", "language_test", -0.08),
    ];
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::scoring::ObservedTable;
    use fairank_core::space::ProtectedTable;

    #[test]
    fn generation_is_deterministic() {
        let spec = crowdsourcing_spec(50, 7);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = crowdsourcing_spec(50, 1).generate().unwrap();
        let b = crowdsourcing_spec(50, 2).generate().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn generated_shape_matches_spec() {
        let ds = crowdsourcing_spec(120, 3).generate().unwrap();
        assert_eq!(ds.num_rows(), 120);
        assert_eq!(ds.protected_attributes().len(), 5);
        assert_eq!(
            ds.observed_names(),
            vec!["language_test", "rating", "experience"]
        );
        // Worker ids are meta.
        assert!(ds.observed_column("worker_id").is_none());
    }

    #[test]
    fn skills_are_unit_interval() {
        let ds = crowdsourcing_spec(200, 9).generate().unwrap();
        for name in ["language_test", "rating", "experience"] {
            let col = ds.observed_column(name).unwrap();
            assert!(col.iter().all(|v| (0.0..=1.0).contains(v)), "{name}");
        }
    }

    #[test]
    fn bias_rules_shift_group_means() {
        let n = 3000;
        let unbiased = crowdsourcing_spec(n, 11).generate().unwrap();
        let biased = biased_crowdsourcing_spec(n, 11).generate().unwrap();

        let mean_rating = |ds: &Dataset, value: &str| -> f64 {
            let (codes, labels) = ds
                .column("gender")
                .unwrap()
                .as_categorical()
                .unwrap();
            let target = labels.iter().position(|l| l == value).unwrap() as u32;
            let ratings = ds.observed_column("rating").unwrap();
            let (sum, count) = codes
                .iter()
                .zip(ratings)
                .filter(|(&c, _)| c == target)
                .fold((0.0, 0usize), |(s, n), (_, &r)| (s + r, n + 1));
            sum / count as f64
        };

        let gap_unbiased = mean_rating(&unbiased, "Male") - mean_rating(&unbiased, "Female");
        let gap_biased = mean_rating(&biased, "Male") - mean_rating(&biased, "Female");
        assert!(gap_unbiased.abs() < 0.05, "unbiased gap {gap_unbiased}");
        assert!(gap_biased > 0.08, "biased gap {gap_biased}");
    }

    #[test]
    fn spec_validation() {
        assert!(crowdsourcing_spec(0, 1).generate().is_err());
        let no_demo = PopulationSpec {
            size: 10,
            seed: 1,
            demographics: vec![],
            skills: crowdsourcing_spec(1, 1).skills,
            bias: vec![],
        };
        assert!(no_demo.generate().is_err());
        let no_skill = PopulationSpec {
            size: 10,
            seed: 1,
            demographics: crowdsourcing_spec(1, 1).demographics,
            skills: vec![],
            bias: vec![],
        };
        assert!(no_skill.generate().is_err());
    }

    #[test]
    fn conditional_demographics_correlate() {
        // Language depends on country, like the paper's Table 1.
        let spec = PopulationSpec::builder(2000, 11)
            .demographic("country", vec![("India", 0.5), ("America", 0.5)])
            .unwrap()
            .demographic("language", vec![("English", 1.0)])
            .unwrap()
            .conditioned_on(
                "country",
                "India",
                vec![("Indian", 0.8), ("English", 0.2)],
            )
            .unwrap()
            .skill("rating", SkillDistribution::Uniform { lo: 0.0, hi: 1.0 })
            .build();
        let ds = spec.generate().unwrap();
        let (c_codes, c_labels) = ds.column("country").unwrap().as_categorical().unwrap();
        let (l_codes, l_labels) = ds.column("language").unwrap().as_categorical().unwrap();
        let india = c_labels.iter().position(|l| l == "India").unwrap() as u32;
        let indian = l_labels.iter().position(|l| l == "Indian").unwrap() as u32;
        let (mut india_indian, mut india_total, mut other_indian) = (0, 0, 0);
        for (c, l) in c_codes.iter().zip(l_codes) {
            if *c == india {
                india_total += 1;
                if *l == indian {
                    india_indian += 1;
                }
            } else if *l == indian {
                other_indian += 1;
            }
        }
        let frac = india_indian as f64 / india_total as f64;
        assert!((frac - 0.8).abs() < 0.05, "India→Indian frac {frac}");
        assert_eq!(other_indian, 0, "non-India rows never speak Indian");
    }

    #[test]
    fn conditional_on_unknown_parent_is_rejected() {
        let spec = PopulationSpec::builder(10, 1)
            .demographic("language", vec![("en", 1.0)])
            .unwrap()
            .conditioned_on("country", "India", vec![("in", 1.0)])
            .unwrap()
            .skill("rating", SkillDistribution::Uniform { lo: 0.0, hi: 1.0 })
            .build();
        // "country" is not an earlier attribute → generation fails.
        assert!(spec.generate().is_err());
    }

    #[test]
    fn conditioned_on_requires_a_demographic_first() {
        let err = PopulationSpec::builder(10, 1)
            .conditioned_on("x", "y", vec![("a", 1.0)])
            .unwrap_err();
        assert!(err.to_string().contains("demographic attribute first"));
    }

    #[test]
    fn spec_serializes() {
        let spec = biased_crowdsourcing_spec(10, 5);
        let json = serde_json::to_string(&spec).unwrap();
        let back: PopulationSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
