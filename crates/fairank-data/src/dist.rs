//! Sampling distributions for the synthetic-population generator.
//!
//! The offline policy allows `rand` but not `rand_distr`, so the
//! non-uniform distributions FaiRank's simulated crowdsourcing populations
//! need are implemented here: Normal via Box–Muller, Beta via Marsaglia–
//! Tsang Gamma sampling, and a categorical distribution with explicit
//! weights.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{DataError, Result};

/// A continuous distribution over scores, clamped to `[0, 1]` on sampling
/// (Definition 1 scores observed attributes in the unit interval).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SkillDistribution {
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be positive).
        std_dev: f64,
    },
    /// Beta distribution — the natural shape for bounded skill scores.
    Beta {
        /// First shape parameter (> 0).
        alpha: f64,
        /// Second shape parameter (> 0).
        beta: f64,
    },
}

impl SkillDistribution {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        match self {
            SkillDistribution::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                    return Err(DataError::InvalidSpec(format!(
                        "uniform range [{lo}, {hi}] is invalid"
                    )));
                }
            }
            SkillDistribution::Normal { mean, std_dev } => {
                if !(mean.is_finite() && std_dev.is_finite() && *std_dev > 0.0) {
                    return Err(DataError::InvalidSpec(format!(
                        "normal({mean}, {std_dev}) is invalid"
                    )));
                }
            }
            SkillDistribution::Beta { alpha, beta } => {
                if !(alpha.is_finite() && beta.is_finite() && *alpha > 0.0 && *beta > 0.0) {
                    return Err(DataError::InvalidSpec(format!(
                        "beta({alpha}, {beta}) is invalid"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Draws one sample, clamped into `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let raw = match *self {
            SkillDistribution::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            SkillDistribution::Normal { mean, std_dev } => {
                mean + std_dev * sample_standard_normal(rng)
            }
            SkillDistribution::Beta { alpha, beta } => sample_beta(rng, alpha, beta),
        };
        raw.clamp(0.0, 1.0)
    }
}

/// Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler; shapes < 1 use the boosting
/// identity `Gamma(a) = Gamma(a + 1) · U^{1/a}`.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta(alpha, beta) via two Gamma draws.
pub fn sample_beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta: f64) -> f64 {
    let x = sample_gamma(rng, alpha);
    let y = sample_gamma(rng, beta);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// A categorical distribution: values with non-negative weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    values: Vec<String>,
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds from `(value, weight)` pairs; weights are normalized.
    pub fn new<S: Into<String>>(pairs: Vec<(S, f64)>) -> Result<Self> {
        if pairs.is_empty() {
            return Err(DataError::InvalidSpec(
                "categorical distribution needs at least one value".into(),
            ));
        }
        let mut values = Vec::with_capacity(pairs.len());
        let mut weights = Vec::with_capacity(pairs.len());
        for (v, w) in pairs {
            if !w.is_finite() || w < 0.0 {
                return Err(DataError::InvalidSpec(format!(
                    "categorical weight {w} is invalid"
                )));
            }
            values.push(v.into());
            weights.push(w);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DataError::InvalidSpec(
                "categorical weights sum to zero".into(),
            ));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against rounding: the last bound is exactly 1.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Ok(Categorical { values, cumulative })
    }

    /// Uniform over the given values.
    pub fn uniform<S: Into<String> + Clone>(values: &[S]) -> Result<Self> {
        Categorical::new(values.iter().map(|v| (v.clone(), 1.0)).collect())
    }

    /// The possible values.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        let u: f64 = rng.gen::<f64>();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.values.len() - 1);
        &self.values[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_stays_in_range() {
        let d = SkillDistribution::Uniform { lo: 0.2, hi: 0.4 };
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((0.2..=0.4).contains(&s));
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let d = SkillDistribution::Normal {
            mean: 0.5,
            std_dev: 0.1,
        };
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn beta_moments_match_theory() {
        let (a, b) = (2.0, 5.0);
        let mut r = rng();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_beta(&mut r, a, b)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let expected = a / (a + b);
        assert!((mean - expected).abs() < 0.01, "mean = {mean}");
        let var: f64 =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let expected_var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!((var - expected_var).abs() < 0.005, "var = {var}");
    }

    #[test]
    fn beta_with_small_shapes() {
        let mut r = rng();
        for _ in 0..1000 {
            let s = sample_beta(&mut r, 0.5, 0.5);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_gamma(&mut r, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn samples_always_clamped() {
        let d = SkillDistribution::Normal {
            mean: 0.9,
            std_dev: 0.5,
        };
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(SkillDistribution::Uniform { lo: 1.0, hi: 0.0 }.validate().is_err());
        assert!(SkillDistribution::Normal {
            mean: 0.5,
            std_dev: 0.0
        }
        .validate()
        .is_err());
        assert!(SkillDistribution::Beta {
            alpha: -1.0,
            beta: 2.0
        }
        .validate()
        .is_err());
        assert!(SkillDistribution::Beta {
            alpha: 2.0,
            beta: 2.0
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(vec![("a", 3.0), ("b", 1.0)]).unwrap();
        let mut r = rng();
        let n = 20_000;
        let a_count = (0..n).filter(|_| c.sample(&mut r) == "a").count();
        let frac = a_count as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn categorical_uniform_and_errors() {
        let c = Categorical::uniform(&["x", "y"]).unwrap();
        assert_eq!(c.values(), &["x", "y"]);
        assert!(Categorical::new(Vec::<(String, f64)>::new()).is_err());
        assert!(Categorical::new(vec![("a", -1.0)]).is_err());
        assert!(Categorical::new(vec![("a", 0.0)]).is_err());
    }

    #[test]
    fn zero_weight_values_never_sampled() {
        let c = Categorical::new(vec![("never", 0.0), ("always", 1.0)]).unwrap();
        let mut r = rng();
        for _ in 0..500 {
            assert_eq!(c.sample(&mut r), "always");
        }
    }
}
