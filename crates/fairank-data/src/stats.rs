//! Per-column summary statistics.
//!
//! The FaiRank interface shows statistics about datasets and partitions
//! (§2: "view statistics such as the number of individuals in each
//! partition"); this module provides the dataset-level side: numeric
//! five-number summaries and categorical frequency tables, with a
//! `describe`-style text rendering used by the CLI.

use serde::{Deserialize, Serialize};

use crate::column::ColumnData;
use crate::dataset::Dataset;

/// Summary of a numeric column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericSummary {
    /// Number of values.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Summary of a categorical column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalSummary {
    /// Number of values.
    pub count: usize,
    /// Number of distinct values.
    pub distinct: usize,
    /// `(value, frequency)` pairs, most frequent first (ties by label).
    pub top: Vec<(String, usize)>,
}

/// A column summary of either kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnSummary {
    /// Numeric column (float or integer).
    Numeric(NumericSummary),
    /// Categorical column.
    Categorical(CategoricalSummary),
}

/// Linear-interpolated quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Summarizes a numeric sample. Returns `None` for an empty sample.
pub fn summarize_numeric(values: &[f64]) -> Option<NumericSummary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    Some(NumericSummary {
        count: values.len(),
        min: sorted[0],
        q1: quantile(&sorted, 0.25),
        median: quantile(&sorted, 0.5),
        q3: quantile(&sorted, 0.75),
        max: *sorted.last().expect("non-empty"),
        mean,
        std_dev: var.sqrt(),
    })
}

/// Summarizes a categorical column, keeping the `top_k` most frequent
/// values.
pub fn summarize_categorical(
    codes: &[u32],
    labels: &[String],
    top_k: usize,
) -> CategoricalSummary {
    let mut freq = vec![0usize; labels.len()];
    for &c in codes {
        freq[c as usize] += 1;
    }
    let mut pairs: Vec<(String, usize)> = labels
        .iter()
        .cloned()
        .zip(freq.iter().copied())
        .filter(|(_, f)| *f > 0)
        .collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let distinct = pairs.len();
    pairs.truncate(top_k);
    CategoricalSummary {
        count: codes.len(),
        distinct,
        top: pairs,
    }
}

/// Summarizes one column of a dataset.
pub fn summarize_column(data: &ColumnData, top_k: usize) -> Option<ColumnSummary> {
    match data {
        ColumnData::Float(v) => summarize_numeric(v).map(ColumnSummary::Numeric),
        ColumnData::Integer(v) => {
            let floats: Vec<f64> = v.iter().map(|&x| x as f64).collect();
            summarize_numeric(&floats).map(ColumnSummary::Numeric)
        }
        ColumnData::Categorical { codes, labels } => Some(ColumnSummary::Categorical(
            summarize_categorical(codes, labels, top_k),
        )),
    }
}

/// A `describe`-style rendering of every column (name, role, summary).
pub fn describe(dataset: &Dataset) -> String {
    let mut out = format!(
        "{} rows × {} columns\n",
        dataset.num_rows(),
        dataset.schema().len()
    );
    for (field, col) in dataset.schema().fields().iter().zip(dataset.columns()) {
        out.push_str(&format!("\n{} [{}]\n", field.name, field.role.name()));
        match summarize_column(&col.data, 5) {
            None => out.push_str("  (empty)\n"),
            Some(ColumnSummary::Numeric(s)) => {
                out.push_str(&format!(
                    "  min {:.3}  q1 {:.3}  median {:.3}  q3 {:.3}  max {:.3}\n  \
                     mean {:.3}  std {:.3}\n",
                    s.min, s.q1, s.median, s.q3, s.max, s.mean, s.std_dev
                ));
            }
            Some(ColumnSummary::Categorical(s)) => {
                out.push_str(&format!("  {} distinct values\n", s.distinct));
                for (value, freq) in &s.top {
                    out.push_str(&format!(
                        "  {:<24} {:>6} ({:.1}%)\n",
                        value,
                        freq,
                        *freq as f64 / s.count as f64 * 100.0
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeRole;

    #[test]
    fn quantiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 1.0), 4.0);
        assert!((quantile(&sorted, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn numeric_summary_values() {
        let s = summarize_numeric(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12); // classic example
        assert!(s.q1 <= s.median && s.median <= s.q3);
        assert!(summarize_numeric(&[]).is_none());
    }

    #[test]
    fn categorical_summary_orders_by_frequency() {
        let codes = vec![0, 1, 1, 2, 1, 0];
        let labels = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let s = summarize_categorical(&codes, &labels, 2);
        assert_eq!(s.count, 6);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.top, vec![("b".to_string(), 3), ("a".to_string(), 2)]);
    }

    #[test]
    fn unused_labels_do_not_count_as_distinct() {
        let codes = vec![0, 0];
        let labels = vec!["x".to_string(), "never".to_string()];
        let s = summarize_categorical(&codes, &labels, 5);
        assert_eq!(s.distinct, 1);
    }

    #[test]
    fn describe_covers_all_columns() {
        let ds = Dataset::builder()
            .categorical("gender", AttributeRole::Protected, &["F", "M", "F"])
            .float("rating", AttributeRole::Observed, vec![0.2, 0.9, 0.5])
            .integer("year", AttributeRole::Protected, vec![1990, 1976, 2004])
            .build()
            .unwrap();
        let text = describe(&ds);
        assert!(text.contains("3 rows × 3 columns"));
        assert!(text.contains("gender [protected]"));
        assert!(text.contains("rating [observed]"));
        assert!(text.contains("distinct values"));
        assert!(text.contains("median"));
    }

    #[test]
    fn integer_columns_summarize_numerically() {
        let col = ColumnData::Integer(vec![1, 2, 3]);
        match summarize_column(&col, 5) {
            Some(ColumnSummary::Numeric(s)) => assert_eq!(s.median, 2.0),
            other => panic!("expected numeric, got {other:?}"),
        }
    }
}
