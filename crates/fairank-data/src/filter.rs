//! Protected-attribute filters.
//!
//! "The user can filter the individuals based on protected attributes …
//! say only individuals who speak Arabic or who are located in New York
//! city" (§2). A [`Filter`] is a conjunction of predicates over columns;
//! the textual form used by the CLI is
//! `language=Arabic & city=NYC & year>=1980`.

use serde::{Deserialize, Serialize};

use crate::column::ColumnData;
use crate::dataset::Dataset;
use crate::error::{DataError, Result};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Equality (categorical or numeric).
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than (numeric columns only).
    Lt,
    /// Less than or equal (numeric).
    Le,
    /// Strictly greater than (numeric).
    Gt,
    /// Greater than or equal (numeric).
    Ge,
}

impl Op {
    fn symbol(&self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        }
    }
}

/// One predicate: `column op value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: Op,
    /// Right-hand side, kept textual; parsed numerically when the column is
    /// numeric.
    pub value: String,
}

impl Predicate {
    fn matches(&self, data: &ColumnData, row: usize) -> Result<bool> {
        match data {
            ColumnData::Categorical { codes, labels } => {
                let actual = &labels[codes[row] as usize];
                match self.op {
                    Op::Eq => Ok(actual == &self.value),
                    Op::Ne => Ok(actual != &self.value),
                    _ => Err(DataError::TypeMismatch {
                        column: self.column.clone(),
                        expected: "numeric (ordering operators need numbers)",
                    }),
                }
            }
            _ => {
                let actual = data.numeric(row).expect("numeric column");
                let rhs: f64 = self.value.parse().map_err(|_| {
                    DataError::FilterParse(format!(
                        "{:?} is not numeric (column {:?} is)",
                        self.value, self.column
                    ))
                })?;
                Ok(match self.op {
                    Op::Eq => actual == rhs,
                    Op::Ne => actual != rhs,
                    Op::Lt => actual < rhs,
                    Op::Le => actual <= rhs,
                    Op::Gt => actual > rhs,
                    Op::Ge => actual >= rhs,
                })
            }
        }
    }
}

/// A conjunction of predicates. The empty filter matches every row.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Filter {
    predicates: Vec<Predicate>,
}

impl Filter {
    /// The match-all filter.
    pub fn all() -> Self {
        Filter::default()
    }

    /// Adds an equality predicate.
    pub fn eq(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.predicates.push(Predicate {
            column: column.into(),
            op: Op::Eq,
            value: value.into(),
        });
        self
    }

    /// Adds an arbitrary predicate.
    pub fn pred(mut self, column: impl Into<String>, op: Op, value: impl Into<String>) -> Self {
        self.predicates.push(Predicate {
            column: column.into(),
            op,
            value: value.into(),
        });
        self
    }

    /// The predicates in order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// True when no predicate is present.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Parses the textual form: predicates joined with `&`, each
    /// `column OP value` with `OP ∈ {=, !=, <, <=, >, >=}`. Whitespace is
    /// ignored around tokens; values may be quoted with `"` to include `&`
    /// or spaces.
    pub fn parse(text: &str) -> Result<Filter> {
        let mut filter = Filter::all();
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Ok(filter);
        }
        for clause in split_clauses(trimmed) {
            let clause = clause.trim();
            if clause.is_empty() {
                return Err(DataError::FilterParse("empty clause".into()));
            }
            filter.predicates.push(parse_clause(clause)?);
        }
        Ok(filter)
    }

    /// Renders the canonical textual form.
    pub fn render(&self) -> String {
        if self.predicates.is_empty() {
            return "*".to_string();
        }
        self.predicates
            .iter()
            .map(|p| format!("{}{}{}", p.column, p.op.symbol(), p.value))
            .collect::<Vec<_>>()
            .join(" & ")
    }

    /// Row indices of `dataset` matching every predicate.
    pub fn matching_rows(&self, dataset: &Dataset) -> Result<Vec<u32>> {
        // Resolve columns once.
        let mut cols = Vec::with_capacity(self.predicates.len());
        for p in &self.predicates {
            cols.push(&dataset.column_required(&p.column)?.data);
        }
        let mut rows = Vec::new();
        'rows: for r in 0..dataset.num_rows() {
            for (p, data) in self.predicates.iter().zip(&cols) {
                if !p.matches(data, r)? {
                    continue 'rows;
                }
            }
            rows.push(r as u32);
        }
        Ok(rows)
    }
}

/// Splits on `&` outside of double quotes.
fn split_clauses(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in text.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(ch);
            }
            '&' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    out.push(cur);
    out
}

fn parse_clause(clause: &str) -> Result<Predicate> {
    // Longest operators first so `<=` is not read as `<`.
    for (op_str, op) in [
        ("!=", Op::Ne),
        ("<=", Op::Le),
        (">=", Op::Ge),
        ("<", Op::Lt),
        (">", Op::Gt),
        ("=", Op::Eq),
    ] {
        if let Some(pos) = clause.find(op_str) {
            let column = clause[..pos].trim();
            let mut value = clause[pos + op_str.len()..].trim();
            if column.is_empty() || value.is_empty() {
                return Err(DataError::FilterParse(format!(
                    "clause {clause:?} is missing a column or value"
                )));
            }
            if value.len() >= 2 && value.starts_with('"') && value.ends_with('"') {
                value = &value[1..value.len() - 1];
            }
            return Ok(Predicate {
                column: column.to_string(),
                op,
                value: value.to_string(),
            });
        }
    }
    Err(DataError::FilterParse(format!(
        "clause {clause:?} has no operator"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeRole;

    fn dataset() -> Dataset {
        Dataset::builder()
            .categorical(
                "language",
                AttributeRole::Protected,
                &["Arabic", "English", "Arabic", "French"],
            )
            .integer("year", AttributeRole::Protected, vec![1990, 1976, 2004, 1988])
            .float("rating", AttributeRole::Observed, vec![0.2, 0.9, 0.6, 0.4])
            .build()
            .unwrap()
    }

    #[test]
    fn empty_filter_matches_all() {
        let ds = dataset();
        assert_eq!(Filter::all().matching_rows(&ds).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(Filter::parse("").unwrap(), Filter::all());
        assert_eq!(Filter::all().render(), "*");
    }

    #[test]
    fn categorical_equality() {
        let ds = dataset();
        let f = Filter::all().eq("language", "Arabic");
        assert_eq!(f.matching_rows(&ds).unwrap(), vec![0, 2]);
        let f = Filter::all().pred("language", Op::Ne, "Arabic");
        assert_eq!(f.matching_rows(&ds).unwrap(), vec![1, 3]);
    }

    #[test]
    fn numeric_comparisons() {
        let ds = dataset();
        let f = Filter::parse("year>=1988").unwrap();
        assert_eq!(f.matching_rows(&ds).unwrap(), vec![0, 2, 3]);
        let f = Filter::parse("year<1988 & rating>0.5").unwrap();
        assert_eq!(f.matching_rows(&ds).unwrap(), vec![1]);
        let f = Filter::parse("rating=0.6").unwrap();
        assert_eq!(f.matching_rows(&ds).unwrap(), vec![2]);
    }

    #[test]
    fn conjunction_narrows() {
        let ds = dataset();
        let f = Filter::parse("language=Arabic & year>1995").unwrap();
        assert_eq!(f.matching_rows(&ds).unwrap(), vec![2]);
    }

    #[test]
    fn quoted_values() {
        let f = Filter::parse(r#"city="New York & Boston""#).unwrap();
        assert_eq!(f.predicates()[0].value, "New York & Boston");
    }

    #[test]
    fn parse_errors() {
        assert!(Filter::parse("nonsense").is_err());
        assert!(Filter::parse("a= & b=2").is_err());
        assert!(Filter::parse("=x").is_err());
    }

    #[test]
    fn ordering_on_categorical_errors() {
        let ds = dataset();
        let f = Filter::parse("language>Arabic").unwrap();
        assert!(f.matching_rows(&ds).is_err());
    }

    #[test]
    fn non_numeric_rhs_on_numeric_column_errors() {
        let ds = dataset();
        let f = Filter::parse("year=abc").unwrap();
        assert!(f.matching_rows(&ds).is_err());
    }

    #[test]
    fn unknown_column_errors() {
        let ds = dataset();
        let f = Filter::parse("ghost=1").unwrap();
        assert!(matches!(
            f.matching_rows(&ds).unwrap_err(),
            DataError::UnknownColumn(_)
        ));
    }

    #[test]
    fn render_round_trips() {
        let f = Filter::parse("language=Arabic & year>=1988").unwrap();
        let rendered = f.render();
        assert_eq!(rendered, "language=Arabic & year>=1988");
        assert_eq!(Filter::parse(&rendered).unwrap(), f);
    }

    #[test]
    fn filter_on_dataset_convenience() {
        let ds = dataset();
        let filtered = ds.filter(&Filter::parse("language=Arabic").unwrap()).unwrap();
        assert_eq!(filtered.num_rows(), 2);
    }
}
