//! Errors of the session engine, plus their structured wire form.

use std::fmt;

use fairank_core::cancel::CancelReason;
use fairank_core::quantify::SearchStats;
use fairank_core::CoreError;
use fairank_data::DataError;
use fairank_marketplace::MarketError;
use serde::{Deserialize, Serialize};

/// Errors produced by sessions, commands and reports.
#[derive(Debug)]
pub enum SessionError {
    /// A referenced dataset is not registered in the session.
    UnknownDataset(String),
    /// A referenced scoring function is not registered in the session.
    UnknownFunction(String),
    /// A referenced panel does not exist.
    UnknownPanel(usize),
    /// A referenced tree node does not exist in the panel.
    UnknownNode { panel: usize, node: usize },
    /// A name is already taken.
    NameTaken(String),
    /// A dataset name is unusable as a session file stem (path separators,
    /// `..` or other traversal material).
    InvalidName(String),
    /// A command failed to parse.
    Command(String),
    /// An invariant of the execution machinery broke (an executor lost a
    /// cell, a reduce saw a foreign payload, a worker panicked).
    Internal(String),
    /// An error bubbled up from the core crate.
    Core(CoreError),
    /// A cooperative cancellation (deadline, client disconnect, shutdown)
    /// aborted the request's compute; carries the partial search counters.
    Cancelled {
        reason: CancelReason,
        stats: SearchStats,
    },
    /// An error bubbled up from the dataset substrate.
    Data(DataError),
    /// An error bubbled up from the anonymization substrate.
    Anon(fairank_anonymize::AnonError),
    /// An error bubbled up from the marketplace substrate.
    Market(MarketError),
    /// JSON export failed.
    Json(String),
    /// IO failure (export to file).
    Io(std::io::Error),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            SessionError::UnknownFunction(name) => write!(f, "unknown function {name:?}"),
            SessionError::UnknownPanel(id) => write!(f, "unknown panel #{id}"),
            SessionError::UnknownNode { panel, node } => {
                write!(f, "panel #{panel} has no node {node}")
            }
            SessionError::NameTaken(name) => write!(f, "name {name:?} is already in use"),
            SessionError::InvalidName(name) => write!(
                f,
                "dataset name {name:?} cannot be used as a session file name \
                 (path separators and '..' are not allowed)"
            ),
            SessionError::Command(msg) => write!(f, "command error: {msg}"),
            SessionError::Internal(msg) => write!(f, "internal error: {msg}"),
            SessionError::Core(e) => write!(f, "{e}"),
            SessionError::Cancelled { reason, stats } => write!(
                f,
                "request aborted: {reason} \
                 (partial progress: {} nodes evaluated, {} splits, {} EMD calls)",
                stats.nodes_evaluated, stats.splits_performed, stats.emd_calls
            ),
            SessionError::Data(e) => write!(f, "{e}"),
            SessionError::Anon(e) => write!(f, "{e}"),
            SessionError::Market(e) => write!(f, "{e}"),
            SessionError::Json(msg) => write!(f, "JSON error: {msg}"),
            SessionError::Io(e) => write!(f, "IO error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> Self {
        match e {
            // Cancellation is operational, not analytical: it surfaces under
            // its own wire kinds (`deadline_exceeded` / `shutting_down` /
            // `cancelled`) instead of the generic `core`.
            CoreError::Cancelled { reason, stats } => {
                SessionError::Cancelled { reason, stats }
            }
            other => SessionError::Core(other),
        }
    }
}
impl From<DataError> for SessionError {
    fn from(e: DataError) -> Self {
        SessionError::Data(e)
    }
}
impl From<fairank_anonymize::AnonError> for SessionError {
    fn from(e: fairank_anonymize::AnonError) -> Self {
        SessionError::Anon(e)
    }
}
impl From<MarketError> for SessionError {
    fn from(e: MarketError) -> Self {
        SessionError::Market(e)
    }
}
impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl SessionError {
    /// The stable machine-readable error kind used on the wire. Kinds name
    /// *classes* of failure; `message` carries the human specifics.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionError::UnknownDataset(_) => "unknown_dataset",
            SessionError::UnknownFunction(_) => "unknown_function",
            SessionError::UnknownPanel(_) => "unknown_panel",
            SessionError::UnknownNode { .. } => "unknown_node",
            SessionError::NameTaken(_) => "name_taken",
            SessionError::InvalidName(_) => "invalid_name",
            SessionError::Command(_) => "command",
            SessionError::Internal(_) => "internal",
            SessionError::Core(_) => "core",
            SessionError::Cancelled { reason, .. } => match reason {
                CancelReason::Deadline => "deadline_exceeded",
                CancelReason::Disconnected => "cancelled",
                CancelReason::Shutdown => "shutting_down",
            },
            SessionError::Data(_) => "data",
            SessionError::Anon(_) => "anonymize",
            SessionError::Market(_) => "market",
            SessionError::Json(_) => "json",
            SessionError::Io(_) => "io",
        }
    }
}

/// The structured wire form of a [`SessionError`]: a stable `kind` tag for
/// programmatic handling plus the human `message` the REPL prints.
///
/// The optional fields ride along only when meaningful; absent fields
/// deserialize as `None`, so old clients and old replies interoperate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Stable machine-readable error class (see [`SessionError::kind`]).
    pub kind: String,
    /// Human-readable description (the error's `Display` text).
    pub message: String,
    /// Partial search counters when a cancellation cut compute short.
    pub partial: Option<SearchStats>,
    /// Suggested client back-off (milliseconds) on transient refusals
    /// (`overloaded`).
    pub retry_after_ms: Option<u64>,
}

impl ErrorResponse {
    /// A plain structured error with no optional payload.
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        ErrorResponse {
            kind: kind.into(),
            message: message.into(),
            partial: None,
            retry_after_ms: None,
        }
    }
}

impl From<&SessionError> for ErrorResponse {
    fn from(e: &SessionError) -> Self {
        let partial = match e {
            SessionError::Cancelled { stats, .. } => Some(*stats),
            _ => None,
        };
        ErrorResponse {
            kind: e.kind().to_string(),
            message: e.to_string(),
            partial,
            retry_after_ms: None,
        }
    }
}

impl From<SessionError> for ErrorResponse {
    fn from(e: SessionError) -> Self {
        ErrorResponse::from(&e)
    }
}

impl fmt::Display for ErrorResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.kind)
    }
}

/// Convenience alias for this crate.
pub type Result<T> = std::result::Result<T, SessionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SessionError::UnknownDataset("d".into()).to_string().contains("d"));
        assert!(SessionError::UnknownFunction("f".into()).to_string().contains("f"));
        assert!(SessionError::UnknownPanel(3).to_string().contains("#3"));
        assert!(SessionError::UnknownNode { panel: 1, node: 9 }
            .to_string()
            .contains("node 9"));
        assert!(SessionError::NameTaken("x".into()).to_string().contains("in use"));
        assert!(SessionError::InvalidName("../x".into())
            .to_string()
            .contains("not allowed"));
        assert!(SessionError::Command("bad".into()).to_string().contains("bad"));
        assert!(SessionError::Json("eof".into()).to_string().contains("eof"));
    }

    #[test]
    fn error_kinds_are_stable_and_distinct() {
        let cases = [
            (SessionError::UnknownDataset("d".into()), "unknown_dataset"),
            (SessionError::UnknownFunction("f".into()), "unknown_function"),
            (SessionError::UnknownPanel(1), "unknown_panel"),
            (SessionError::UnknownNode { panel: 0, node: 1 }, "unknown_node"),
            (SessionError::NameTaken("x".into()), "name_taken"),
            (SessionError::InvalidName("../x".into()), "invalid_name"),
            (SessionError::Command("bad".into()), "command"),
            (SessionError::Json("eof".into()), "json"),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
        }
    }

    #[test]
    fn cancellation_kinds_are_stable() {
        let cases = [
            (CancelReason::Deadline, "deadline_exceeded"),
            (CancelReason::Disconnected, "cancelled"),
            (CancelReason::Shutdown, "shutting_down"),
        ];
        for (reason, kind) in cases {
            let err = SessionError::Cancelled {
                reason,
                stats: SearchStats::default(),
            };
            assert_eq!(err.kind(), kind);
            assert!(err.to_string().contains("partial progress"));
        }
    }

    #[test]
    fn cancelled_error_response_carries_partial_stats() {
        let stats = SearchStats {
            nodes_evaluated: 7,
            emd_calls: 41,
            ..Default::default()
        };
        let wire: ErrorResponse = SessionError::Cancelled {
            reason: CancelReason::Deadline,
            stats,
        }
        .into();
        assert_eq!(wire.kind, "deadline_exceeded");
        assert_eq!(wire.partial, Some(stats));
        let json = serde_json::to_string(&wire).unwrap();
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(wire, back);
    }

    #[test]
    fn error_response_without_optional_fields_still_parses() {
        // A reply in the pre-cancellation wire format: no optional keys.
        let back: ErrorResponse =
            serde_json::from_str(r#"{"kind":"core","message":"x"}"#).unwrap();
        assert_eq!(back.kind, "core");
        assert_eq!(back.partial, None);
        assert_eq!(back.retry_after_ms, None);
    }

    #[test]
    fn error_response_round_trips() {
        let wire: ErrorResponse = SessionError::UnknownPanel(7).into();
        assert_eq!(wire.kind, "unknown_panel");
        assert!(wire.message.contains("#7"));
        let json = serde_json::to_string(&wire).unwrap();
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(wire, back);
        assert!(wire.to_string().contains("unknown_panel"));
    }
}
