//! # fairank-session
//!
//! The interactive exploration engine of FaiRank — everything the paper's
//! Figure 1 architecture and Figure 3 interface do, as a headless,
//! deterministic library:
//!
//! * [`config::Configuration`] — the *Configuration box*: which dataset,
//!   which scoring function (or ranking), which filter, which fairness
//!   criterion.
//! * [`panel::Panel`] — one quantification result: the partitioning tree,
//!   its unfairness, per-node statistics (the *General* and *Node* boxes).
//! * [`session::Session`] — the multi-panel workspace: register datasets
//!   and functions, run quantifications, compare panels side by side.
//! * [`command`] — the textual command language driving the CLI REPL, and
//!   [`command::apply`], the typed entry point every front end shares.
//! * [`response`] — the structured request/response layer: every command
//!   yields a serde-serializable [`response::Response`] payload.
//! * [`present`] — the only place responses become human text;
//!   `render(&apply(..)?)` reproduces the classic REPL transcript byte for
//!   byte.
//! * [`render`] — panel-handle conveniences over [`present`] (ASCII
//!   partitioning trees and histogram sparklines).
//! * [`report`] — the three §4 demonstration scenarios as reports:
//!   auditor, job owner, end user.
//! * [`export`] — JSON export of panels and reports.
//!
//! The paper's web UI is substituted by this engine plus the `fairank`
//! REPL and the `fairank-service` JSON-lines server; see DESIGN.md for the
//! substitution rationale.

pub mod cellcache;
pub mod command;
pub mod config;
pub mod error;
pub mod export;
pub mod panel;
pub mod persist;
pub mod plan;
pub mod present;
pub mod render;
pub mod report;
pub mod response;
pub mod session;

pub use cellcache::{CacheStats, CellCache};
pub use command::{apply, execute, Command};
pub use config::Configuration;
pub use fairank_data::store::{DatasetHandle, DatasetStore, StoreStats};
pub use error::{ErrorResponse, Result, SessionError};
pub use panel::Panel;
pub use plan::{CellStat, Plan, ScenarioReport, ScenarioSpec};
pub use response::Response;
pub use session::Session;
