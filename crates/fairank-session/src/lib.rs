//! # fairank-session
//!
//! The interactive exploration engine of FaiRank — everything the paper's
//! Figure 1 architecture and Figure 3 interface do, as a headless,
//! deterministic library:
//!
//! * [`config::Configuration`] — the *Configuration box*: which dataset,
//!   which scoring function (or ranking), which filter, which fairness
//!   criterion.
//! * [`panel::Panel`] — one quantification result: the partitioning tree,
//!   its unfairness, per-node statistics (the *General* and *Node* boxes).
//! * [`session::Session`] — the multi-panel workspace: register datasets
//!   and functions, run quantifications, compare panels side by side.
//! * [`command`] — the textual command language driving the CLI REPL.
//! * [`render`] — ASCII partitioning trees and histogram sparklines.
//! * [`report`] — the three §4 demonstration scenarios as reports:
//!   auditor, job owner, end user.
//! * [`export`] — JSON export of panels and reports.
//!
//! The paper's web UI is substituted by this engine plus the `fairank`
//! REPL; see DESIGN.md for the substitution rationale.

pub mod command;
pub mod config;
pub mod error;
pub mod export;
pub mod panel;
pub mod persist;
pub mod render;
pub mod report;
pub mod session;

pub use config::Configuration;
pub use error::{Result, SessionError};
pub use panel::Panel;
pub use session::Session;
