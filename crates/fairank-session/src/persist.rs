//! Session persistence: save and restore a workspace.
//!
//! The demo's users build up state (uploaded datasets, defined scoring
//! functions) they expect to keep across sessions. A saved session is a
//! directory containing a `manifest.json` plus one JSON file per dataset;
//! functions live inline in the manifest. Panels are *results*, not state —
//! they re-run cheaply and depend on the code version, so they are not
//! persisted (their exports are, via `export`).

use std::path::Path;

use fairank_core::scoring::LinearScoring;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SessionError};
use crate::session::Session;

/// The manifest written at the root of a session directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Dataset names, each stored as `<name>.dataset.json`.
    pub datasets: Vec<String>,
    /// Named scoring functions.
    pub functions: Vec<(String, LinearScoring)>,
}

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Rejects dataset names that cannot serve as a file stem inside the
/// session directory: path separators, `..`, leading dots, or anything
/// else that would let `<name>.dataset.json` escape (or hide inside) the
/// directory. [`Session::add_dataset`] applies it when a name enters the
/// session (so a bad name cannot wedge a later save), and save *and* load
/// re-check, so a hand-edited manifest cannot traverse either.
pub(crate) fn validate_dataset_name(name: &str) -> Result<()> {
    // `:` blocks Windows drive-relative names like `C:evil`, whose Prefix
    // component makes `Path::join` discard the session directory entirely.
    let traverses = name.is_empty()
        || name.contains(['/', '\\', ':'])
        || name.contains("..")
        || name.starts_with('.');
    if traverses {
        return Err(SessionError::InvalidName(name.to_string()));
    }
    Ok(())
}

/// Saves the session's datasets and functions into `dir` (created if
/// absent). Existing files of a previous save are overwritten.
pub fn save_session(session: &Session, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    for name in session.dataset_names() {
        validate_dataset_name(name)?;
    }
    std::fs::create_dir_all(dir)?;
    let mut manifest = Manifest {
        version: MANIFEST_VERSION,
        datasets: Vec::new(),
        functions: Vec::new(),
    };
    for name in session.dataset_names() {
        let ds = session.dataset(name)?;
        let path = dir.join(format!("{name}.dataset.json"));
        fairank_data::json::write_json_file(ds, &path)?;
        manifest.datasets.push(name.to_string());
    }
    for name in session.function_names() {
        manifest
            .functions
            .push((name.to_string(), session.function(name)?.clone()));
    }
    let manifest_text = serde_json::to_string_pretty(&manifest)
        .map_err(|e| SessionError::Json(e.to_string()))?;
    std::fs::write(dir.join("manifest.json"), manifest_text)?;
    Ok(())
}

/// Loads a saved session directory into a fresh [`Session`] with a
/// private dataset store.
pub fn load_session(dir: impl AsRef<Path>) -> Result<Session> {
    load_session_with_store(dir, std::sync::Arc::new(fairank_data::DatasetStore::new()))
}

/// Loads a saved session directory into a fresh [`Session`] interning
/// datasets into `store` — so reopening a saved session inside a server
/// dedupes against datasets other sessions already hold, and a save/load
/// round trip in one process shares storage with the original.
pub fn load_session_with_store(
    dir: impl AsRef<Path>,
    store: std::sync::Arc<fairank_data::DatasetStore>,
) -> Result<Session> {
    let dir = dir.as_ref();
    let manifest_text = std::fs::read_to_string(dir.join("manifest.json"))?;
    let manifest: Manifest = serde_json::from_str(&manifest_text)
        .map_err(|e| SessionError::Json(e.to_string()))?;
    if manifest.version != MANIFEST_VERSION {
        return Err(SessionError::Json(format!(
            "unsupported session format version {} (supported: {MANIFEST_VERSION})",
            manifest.version
        )));
    }
    let mut session = Session::with_store(store);
    for name in &manifest.datasets {
        validate_dataset_name(name)?;
        let path = dir.join(format!("{name}.dataset.json"));
        let ds = fairank_data::json::read_json_file(&path)?;
        session.add_dataset(name, ds)?;
    }
    for (name, function) in manifest.functions {
        session.add_function(name, function)?;
    }
    Ok(session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_data::paper;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fairank_persist_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn populated() -> Session {
        let mut s = Session::new();
        s.add_dataset("table1", paper::table1_dataset()).unwrap();
        s.add_function("paper-f", paper::table1_scoring()).unwrap();
        s
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = tmpdir("round_trip");
        let session = populated();
        save_session(&session, &dir).unwrap();
        let loaded = load_session(&dir).unwrap();
        assert_eq!(loaded.dataset_names(), vec!["table1"]);
        assert_eq!(loaded.function_names(), vec!["paper-f"]);
        assert_eq!(
            loaded.dataset("table1").unwrap(),
            session.dataset("table1").unwrap()
        );
        assert_eq!(
            loaded.function("paper-f").unwrap(),
            session.function("paper-f").unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_into_shared_store_dedupes_to_pointer_equal_storage() {
        // Regression: a save/load round trip used to materialize a second
        // full copy of every dataset. Loading through the original store
        // now dedupes by content to the same allocation.
        let dir = tmpdir("dedupe");
        let session = populated();
        save_session(&session, &dir).unwrap();
        let loaded =
            load_session_with_store(&dir, std::sync::Arc::clone(session.store())).unwrap();
        assert!(loaded
            .dataset_handle("table1")
            .unwrap()
            .shares_storage_with(session.dataset_handle("table1").unwrap()));
        assert_eq!(session.store().stats().datasets, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_session_is_quantifiable() {
        let dir = tmpdir("quantifiable");
        save_session(&populated(), &dir).unwrap();
        let mut loaded = load_session(&dir).unwrap();
        let id = loaded
            .quantify(crate::config::Configuration::new("table1", "paper-f"))
            .unwrap();
        assert!(loaded.panel(id).unwrap().outcome.unfairness > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traversing_dataset_names_cannot_escape_the_session_dir() {
        let dir = tmpdir("traversal");
        for bad in ["../evil", "a/b", r"a\b", "..", ".hidden", "C:evil"] {
            // Rejected at the session chokepoint, before any save can run.
            let mut s = Session::new();
            let err = s.add_dataset(bad, paper::table1_dataset()).unwrap_err();
            assert!(
                matches!(err, SessionError::InvalidName(_)),
                "{bad:?} gave {err}"
            );
        }
        // Nothing was written outside (or inside) the target directory.
        assert!(!dir.exists());
        // A hand-edited manifest with a traversing name is rejected too.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("manifest.json"),
            r#"{"version": 1, "datasets": ["../evil"], "functions": []}"#,
        )
        .unwrap();
        assert!(matches!(
            load_session(&dir).unwrap_err(),
            SessionError::InvalidName(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_errors() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_session(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_errors() {
        let dir = tmpdir("version");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("manifest.json"),
            r#"{"version": 99, "datasets": [], "functions": []}"#,
        )
        .unwrap();
        let err = load_session(&dir).unwrap_err();
        assert!(err.to_string().contains("version"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resave_overwrites() {
        let dir = tmpdir("resave");
        let session = populated();
        save_session(&session, &dir).unwrap();
        save_session(&session, &dir).unwrap(); // idempotent
        let loaded = load_session(&dir).unwrap();
        assert_eq!(loaded.dataset_names().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
