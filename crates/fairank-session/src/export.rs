//! JSON export of panels.
//!
//! The web UI the paper demonstrates renders partitioning trees from the
//! engine's state; this module serializes that state so any front end (or a
//! notebook) can re-render a panel. Exports are self-contained summaries,
//! not full datasets.

use serde::{Deserialize, Serialize};

use crate::error::{Result, SessionError};
use crate::panel::Panel;

/// One exported tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportNode {
    /// Node id within the tree.
    pub id: usize,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// Partition label (conjunction of constraints).
    pub label: String,
    /// Partition size.
    pub size: usize,
    /// Mean score.
    pub mean_score: f64,
    /// Histogram bin counts under the panel's spec.
    pub histogram: Vec<u64>,
    /// Attribute this node was split on, if internal.
    pub split_attribute: Option<String>,
    /// True for final partitions.
    pub is_leaf: bool,
    /// Aggregated EMD to the node's siblings (`None` for the root).
    pub divergence_vs_siblings: Option<f64>,
}

/// A self-contained panel export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelExport {
    /// Panel id.
    pub id: usize,
    /// One-line configuration description.
    pub config: String,
    /// Quantified unfairness of the leaf partitioning.
    pub unfairness: f64,
    /// Objective name.
    pub objective: String,
    /// Aggregator name.
    pub aggregator: String,
    /// Histogram bin count.
    pub bins: usize,
    /// Individuals analyzed.
    pub individuals: usize,
    /// Every tree node, root first.
    pub nodes: Vec<ExportNode>,
}

/// Builds the export representation of a panel.
pub fn export_panel(panel: &Panel) -> Result<PanelExport> {
    let tree = &panel.outcome.tree;
    let mut nodes = Vec::with_capacity(tree.len());
    for id in 0..tree.len() {
        let stats = panel.node_stats(id)?;
        nodes.push(ExportNode {
            id,
            parent: tree.node(id).parent,
            label: stats.label,
            size: stats.size,
            mean_score: stats.mean_score,
            histogram: stats.histogram.counts().to_vec(),
            split_attribute: stats.split_attribute,
            is_leaf: stats.is_leaf,
            divergence_vs_siblings: stats.divergence_vs_siblings,
        });
    }
    Ok(PanelExport {
        id: panel.id,
        config: panel.config.describe(),
        unfairness: panel.outcome.unfairness,
        objective: panel.config.criterion.objective.name().to_string(),
        aggregator: panel.config.criterion.aggregator.name().to_string(),
        bins: panel.config.criterion.hist.bins(),
        individuals: panel.space.num_individuals(),
        nodes,
    })
}

/// Serializes a panel export as pretty JSON.
pub fn panel_to_json(panel: &Panel) -> Result<String> {
    serde_json::to_string_pretty(&export_panel(panel)?)
        .map_err(|e| SessionError::Json(e.to_string()))
}

/// Writes a panel export to a file.
pub fn write_panel_json(panel: &Panel, path: impl AsRef<std::path::Path>) -> Result<()> {
    std::fs::write(path, panel_to_json(panel)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use fairank_core::quantify::Quantify;
    use fairank_core::scoring::ScoreSource;
    use fairank_data::paper;

    fn panel() -> Panel {
        let ds = paper::table1_dataset();
        let source = ScoreSource::Function(paper::table1_scoring());
        let space = ds.to_space(&source).unwrap();
        let config = Configuration::new("table1", "paper-f");
        let outcome = Quantify::new(config.criterion).run_space(&space).unwrap();
        Panel {
            id: 3,
            config,
            space,
            outcome,
            from_cache: false,
        }
    }

    #[test]
    fn export_covers_all_nodes() {
        let p = panel();
        let export = export_panel(&p).unwrap();
        assert_eq!(export.id, 3);
        assert_eq!(export.nodes.len(), p.outcome.tree.len());
        assert_eq!(export.individuals, 10);
        assert_eq!(export.nodes[0].parent, None);
        assert_eq!(export.nodes[0].label, "ALL");
        // Leaf sizes sum to the population.
        let leaf_total: usize = export
            .nodes
            .iter()
            .filter(|n| n.is_leaf)
            .map(|n| n.size)
            .sum();
        assert_eq!(leaf_total, 10);
    }

    #[test]
    fn json_round_trips() {
        let p = panel();
        let json = panel_to_json(&p).unwrap();
        let back: PanelExport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, export_panel(&p).unwrap());
        assert!(json.contains("\"objective\": \"most-unfair\""));
    }

    #[test]
    fn file_export() {
        let dir = std::env::temp_dir().join("fairank_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panel.json");
        write_panel_json(&panel(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("unfairness"));
        std::fs::remove_file(&path).ok();
    }
}
