//! The command language driving the FaiRank REPL.
//!
//! Every interaction of the Figure 3 interface has a textual command:
//! loading/generating datasets, defining scoring functions, filtering,
//! anonymizing, quantifying into panels, inspecting trees and nodes,
//! comparing panels, exporting, and running the three §4 scenario reports.
//!
//! Grammar: whitespace-separated tokens; `key=value` options; values with
//! spaces are double-quoted (`where="gender=F & country=India"`).

use fairank_core::emd::{Emd, EmdBackendKind};
use fairank_core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank_core::histogram::HistogramSpec;
use fairank_core::plan::SearchStrategy;
use fairank_core::scoring::{scores_to_ranking, LinearScoring, ScoreSource};
use fairank_data::csv::CsvOptions;
use fairank_data::filter::Filter;
use fairank_data::synth;
use fairank_marketplace::scenario;
use fairank_marketplace::stream::{run_stream, StreamConfig};

use crate::config::Configuration;
use crate::error::{Result, SessionError};
use crate::plan::{self, CriterionGrid, MarketSpec, Perspective, ScenarioSpec};
use crate::present;
use crate::report;
use crate::response::{
    CompareView, DataHeadView, DatasetEntry, FunctionEntry, NodeView, PanelEntry, PanelView,
    Response, StreamView, SubgroupEntry, SubgroupView,
};
use crate::session::{AnonMethod, Session};

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Show the command reference.
    Help,
    /// List registered datasets.
    Datasets,
    /// List registered functions.
    Functions,
    /// List panels.
    Panels,
    /// Load a CSV dataset: `load <name> <path>`.
    Load { name: String, path: String },
    /// Generate a synthetic dataset: `generate <name> <preset> [n=] [seed=]`.
    Generate {
        name: String,
        preset: String,
        n: usize,
        seed: u64,
    },
    /// Define a scoring function: `define <name> <attr*w+attr*w…>`.
    Define { name: String, expr: String },
    /// Print the head of a dataset: `data <name> [rows]`.
    ShowData { name: String, rows: usize },
    /// Per-column summary statistics: `describe <name>`.
    Describe { name: String },
    /// Save the session's datasets and functions: `save <dir>`.
    Save { dir: String },
    /// Replace the session with a saved one: `open <dir>`.
    Open { dir: String },
    /// Derive a filtered dataset: `filter <new> <source> <expr>`.
    DeriveFilter {
        new_name: String,
        source: String,
        expr: String,
    },
    /// Derive an anonymized dataset: `anonymize <new> <source> k=<k>
    /// [method=mondrian|datafly]`.
    Anonymize {
        new_name: String,
        source: String,
        k: usize,
        method: AnonMethod,
    },
    /// Quantify into a new panel.
    Quantify {
        dataset: String,
        function: String,
        objective: Objective,
        aggregator: Aggregator,
        bins: usize,
        emd: EmdBackendKind,
        filter: Option<String>,
        /// Simulate function opacity: rank by the function, then quantify
        /// from the ranking only.
        opaque: bool,
    },
    /// Render a panel's tree: `show <panel>`.
    Show { panel: usize },
    /// Render a node box: `node <panel> <node>`.
    Node { panel: usize, node: usize },
    /// Explain a search decision: `why <panel> <node>`.
    Why { panel: usize, node: usize },
    /// Compare two panels: `compare <a> <b>`.
    Compare { a: usize, b: usize },
    /// Export a panel to JSON: `export <panel> <path>`.
    Export { panel: usize, path: String },
    /// Subgroup lattice statistics: `subgroups <dataset> <function>
    /// [depth=2] [min=5] [top=5]`.
    Subgroups {
        dataset: String,
        function: String,
        depth: usize,
        min_size: usize,
        top: usize,
    },
    /// Auditor scenario on a canned marketplace.
    Audit {
        preset: String,
        n: usize,
        seed: u64,
        k: Option<usize>,
        ranking_only: bool,
    },
    /// Job-owner scenario: sweep a skill weight.
    JobOwner {
        preset: String,
        job: String,
        skill: String,
        n: usize,
        seed: u64,
    },
    /// End-user scenario: evaluate a group across jobs.
    EndUser {
        preset: String,
        group: String,
        n: usize,
        seed: u64,
    },
    /// Streaming incremental re-audit of one job: replay event rounds
    /// against the delta engine and report the per-round trajectory.
    Stream {
        preset: String,
        job: String,
        n: usize,
        seed: u64,
        k: Option<usize>,
        ranking_only: bool,
        config: StreamConfig,
    },
    /// Run a whole scenario plan (grid/sweep/report compiled into parallel
    /// cells): `scenario grid|auditor|jobowner|enduser …`.
    RunScenario { spec: Box<ScenarioSpec> },
    /// Run a scenario plan from a JSON spec file: `scenario <spec.json>`.
    RunScenarioFile { path: String },
    /// List the server's live sessions (registry admin; servers refuse it
    /// unless started with `--admin`).
    Sessions,
    /// Evict a named session from the server registry (admin only):
    /// `evict <name>`.
    Evict { name: String },
    /// Leave the REPL.
    Quit,
}

/// Splits a line into tokens, honoring double quotes.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in line.chars() {
        match ch {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

// Per-command `key=value` option sets. Each parse arm passes its own set to
// `opt`/`opt_parse`/`positional`, which (a) keeps tokens with `=` under any
// *other* key as positionals — file paths like `n=final.csv` only clash with
// commands that actually take `n=` — and (b) debug-asserts that every option
// lookup is listed, so the sets cannot drift from the lookups.
const NO_OPTS: &[&str] = &[];
const GENERATE_OPTS: &[&str] = &["n", "seed"];
const DATA_OPTS: &[&str] = &["rows"];
const ANONYMIZE_OPTS: &[&str] = &["k", "method"];
const QUANTIFY_OPTS: &[&str] = &["objective", "agg", "bins", "emd", "where"];
const SUBGROUPS_OPTS: &[&str] = &["depth", "min", "top"];
const AUDIT_OPTS: &[&str] = &["n", "seed", "k"];
const SCENARIO_OPTS: &[&str] = &["n", "seed"];
const STREAM_OPTS: &[&str] = &[
    "n",
    "seed",
    "k",
    "rounds",
    "arrivals",
    "departures",
    "rescores",
    "stream-seed",
];
const PLAN_OPTS: &[&str] = &[
    "n",
    "seed",
    "k",
    "sg-depth",
    "sg-min",
    "weights",
    "objectives",
    "aggs",
    "bins",
    "emd",
    "strategy",
    "width",
    "depth",
    "min",
    "budget",
    "where",
    "rounds",
    "arrivals",
    "departures",
    "rescores",
    "stream-seed",
];

fn opt<'a>(tokens: &'a [String], opts: &[&str], key: &str) -> Option<&'a str> {
    debug_assert!(
        opts.contains(&key),
        "option key {key:?} is missing from the command's option set"
    );
    let prefix = format!("{key}=");
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(prefix.as_str()))
}

fn opt_parse<T: std::str::FromStr>(
    tokens: &[String],
    opts: &[&str],
    key: &str,
    default: T,
) -> Result<T> {
    match opt(tokens, opts, key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| SessionError::Command(format!("cannot parse {key}={raw}"))),
    }
}

fn positional<'a>(
    tokens: &'a [String],
    opts: &[&str],
    idx: usize,
    what: &str,
) -> Result<&'a str> {
    let is_option =
        |t: &str| t.split_once('=').is_some_and(|(key, _)| opts.contains(&key));
    tokens
        .iter()
        .filter(|t| !is_option(t))
        .nth(idx)
        .map(String::as_str)
        .ok_or_else(|| SessionError::Command(format!("missing {what}")))
}

/// Positional argument by raw index — for arguments that may themselves
/// contain `=` (filter expressions). Such arguments must precede options.
fn raw_positional<'a>(tokens: &'a [String], idx: usize, what: &str) -> Result<&'a str> {
    tokens
        .get(idx)
        .map(String::as_str)
        .ok_or_else(|| SessionError::Command(format!("missing {what}")))
}

/// Parses a comma-separated option value into trimmed, non-empty items.
fn csv_items(raw: &str) -> Vec<&str> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty()).collect()
}

/// Parses the criterion-grid options (`objectives=`, `aggs=`, `bins=`,
/// `emd=`) shared by all `scenario` subcommands. Returns `None` when no
/// axis was given (the spec then uses the single default criterion).
fn parse_criterion_grid(tokens: &[String]) -> Result<Option<CriterionGrid>> {
    let objectives = opt(tokens, PLAN_OPTS, "objectives")
        .map(|raw| {
            csv_items(raw)
                .into_iter()
                .map(|s| {
                    Objective::parse(s).ok_or_else(|| {
                        SessionError::Command(format!("unknown objective {s:?}"))
                    })
                })
                .collect::<Result<Vec<_>>>()
        })
        .transpose()?;
    let aggregators = opt(tokens, PLAN_OPTS, "aggs")
        .map(|raw| {
            csv_items(raw)
                .into_iter()
                .map(|s| {
                    Aggregator::parse(s).ok_or_else(|| {
                        SessionError::Command(format!("unknown aggregator {s:?}"))
                    })
                })
                .collect::<Result<Vec<_>>>()
        })
        .transpose()?;
    let bins = opt(tokens, PLAN_OPTS, "bins")
        .map(|raw| {
            csv_items(raw)
                .into_iter()
                .map(|s| {
                    s.parse::<usize>().map_err(|_| {
                        SessionError::Command(format!("cannot parse bins value {s:?}"))
                    })
                })
                .collect::<Result<Vec<_>>>()
        })
        .transpose()?;
    let emds = opt(tokens, PLAN_OPTS, "emd")
        .map(|raw| {
            csv_items(raw)
                .into_iter()
                .map(|s| {
                    EmdBackendKind::parse(s).ok_or_else(|| {
                        SessionError::Command(format!("unknown EMD backend {s:?}"))
                    })
                })
                .collect::<Result<Vec<_>>>()
        })
        .transpose()?;
    if objectives.is_none() && aggregators.is_none() && bins.is_none() && emds.is_none() {
        return Ok(None);
    }
    let defaults = CriterionGrid::default();
    Ok(Some(CriterionGrid {
        objectives: objectives.unwrap_or(defaults.objectives),
        aggregators: aggregators.unwrap_or(defaults.aggregators),
        bins: bins.unwrap_or(defaults.bins),
        emds: emds.unwrap_or(defaults.emds),
    }))
}

/// Parses the search-strategy options (`strategy=`, `width=`, `depth=`,
/// `min=`, `budget=`) shared by all `scenario` subcommands.
fn parse_search_strategy(tokens: &[String]) -> Result<Option<SearchStrategy>> {
    let max_depth = opt(tokens, PLAN_OPTS, "depth")
        .map(|raw| {
            raw.parse::<usize>().map_err(|_| {
                SessionError::Command(format!("cannot parse depth={raw}"))
            })
        })
        .transpose()?;
    let Some(name) = opt(tokens, PLAN_OPTS, "strategy") else {
        // Quantify refinements may be given without naming the strategy.
        if max_depth.is_none() && opt(tokens, PLAN_OPTS, "min").is_none() {
            return Ok(None);
        }
        return Ok(Some(SearchStrategy::Quantify {
            max_depth,
            min_partition: opt_parse(tokens, PLAN_OPTS, "min", 1)?,
        }));
    };
    match name {
        "quantify" => Ok(Some(SearchStrategy::Quantify {
            max_depth,
            min_partition: opt_parse(tokens, PLAN_OPTS, "min", 1)?,
        })),
        "beam" => Ok(Some(SearchStrategy::Beam {
            width: opt_parse(tokens, PLAN_OPTS, "width", 4)?,
        })),
        "exhaustive" => Ok(Some(SearchStrategy::Exhaustive {
            budget: opt_parse(
                tokens,
                PLAN_OPTS,
                "budget",
                fairank_core::exhaustive::DEFAULT_BUDGET,
            )?,
        })),
        other => Err(SessionError::Command(format!(
            "unknown strategy {other:?} (try quantify, beam, exhaustive)"
        ))),
    }
}

/// Parses the event-stream knobs (`rounds=`, `arrivals=`, `departures=`,
/// `rescores=`, `stream-seed=`) shared by `stream` and `scenario stream`.
fn parse_stream_config(tokens: &[String], opts: &[&str]) -> Result<StreamConfig> {
    let defaults = StreamConfig::default();
    Ok(StreamConfig {
        rounds: opt_parse(tokens, opts, "rounds", defaults.rounds)?,
        arrivals_per_round: opt_parse(tokens, opts, "arrivals", defaults.arrivals_per_round)?,
        departures_per_round: opt_parse(
            tokens,
            opts,
            "departures",
            defaults.departures_per_round,
        )?,
        rescores_per_round: opt_parse(tokens, opts, "rescores", defaults.rescores_per_round)?,
        seed: opt(tokens, opts, "stream-seed")
            .map(|raw| {
                raw.parse().map_err(|_| {
                    SessionError::Command(format!("cannot parse stream-seed={raw}"))
                })
            })
            .transpose()?,
    })
}

/// Parses an optional `k=` anonymity bound.
fn parse_k(tokens: &[String], opts: &[&str]) -> Result<Option<usize>> {
    opt(tokens, opts, "k")
        .map(|raw| {
            raw.parse()
                .map_err(|_| SessionError::Command(format!("cannot parse k={raw}")))
        })
        .transpose()
}

/// Parses the `scenario` subcommands into a full [`ScenarioSpec`].
fn parse_scenario(rest: &[String]) -> Result<Command> {
    let Some(kind) = rest.first() else {
        return Err(SessionError::Command(
            "scenario needs a perspective (grid/auditor/jobowner/enduser/stream) \
             or a JSON spec path"
                .into(),
        ));
    };
    let strategy = parse_search_strategy(rest)?;
    let criteria = parse_criterion_grid(rest)?;
    let perspective = match kind.as_str() {
        "grid" => Perspective::Grid {
            datasets: csv_items(positional(rest, PLAN_OPTS, 1, "dataset list")?)
                .into_iter()
                .map(str::to_string)
                .collect(),
            functions: csv_items(positional(rest, PLAN_OPTS, 2, "function list")?)
                .into_iter()
                .map(str::to_string)
                .collect(),
            filter: opt(rest, PLAN_OPTS, "where").map(str::to_string),
        },
        "auditor" => {
            let n = opt_parse(rest, PLAN_OPTS, "n", 300)?;
            Perspective::Auditor {
                market: MarketSpec {
                    preset: positional(rest, PLAN_OPTS, 1, "marketplace preset")?
                        .to_string(),
                    n,
                    seed: opt_parse(rest, PLAN_OPTS, "seed", 42)?,
                },
                k: parse_k(rest, PLAN_OPTS)?,
                ranking_only: rest.iter().any(|t| t == "ranking-only"),
                subgroup_depth: opt_parse(rest, PLAN_OPTS, "sg-depth", 2)?,
                min_subgroup: opt_parse(rest, PLAN_OPTS, "sg-min", (n / 20).max(2))?,
            }
        }
        "jobowner" => Perspective::JobOwner {
            market: MarketSpec {
                preset: positional(rest, PLAN_OPTS, 1, "marketplace preset")?.to_string(),
                n: opt_parse(rest, PLAN_OPTS, "n", 300)?,
                seed: opt_parse(rest, PLAN_OPTS, "seed", 42)?,
            },
            job: positional(rest, PLAN_OPTS, 2, "job id")?.to_string(),
            skill: positional(rest, PLAN_OPTS, 3, "skill")?.to_string(),
            weights: match opt(rest, PLAN_OPTS, "weights") {
                None => vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
                Some(raw) => csv_items(raw)
                    .into_iter()
                    .map(|s| {
                        s.parse::<f64>().map_err(|_| {
                            SessionError::Command(format!("cannot parse weight {s:?}"))
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            },
        },
        "enduser" => {
            // Every positional after the preset is one group expression
            // (quote expressions containing spaces).
            let preset = positional(rest, PLAN_OPTS, 1, "marketplace preset")?.to_string();
            let is_option = |t: &str| {
                t.split_once('=').is_some_and(|(key, _)| PLAN_OPTS.contains(&key))
            };
            let groups: Vec<String> = rest
                .iter()
                .filter(|t| !is_option(t))
                .skip(2)
                .map(String::clone)
                .collect();
            if groups.is_empty() {
                return Err(SessionError::Command("missing group expression".into()));
            }
            Perspective::EndUser {
                market: MarketSpec {
                    preset,
                    n: opt_parse(rest, PLAN_OPTS, "n", 300)?,
                    seed: opt_parse(rest, PLAN_OPTS, "seed", 42)?,
                },
                groups,
            }
        }
        "stream" => Perspective::Stream {
            market: MarketSpec {
                preset: positional(rest, PLAN_OPTS, 1, "marketplace preset")?.to_string(),
                n: opt_parse(rest, PLAN_OPTS, "n", 300)?,
                seed: opt_parse(rest, PLAN_OPTS, "seed", 42)?,
            },
            job: positional(rest, PLAN_OPTS, 2, "job id")?.to_string(),
            k: parse_k(rest, PLAN_OPTS)?,
            ranking_only: rest.iter().any(|t| t == "ranking-only"),
            config: parse_stream_config(rest, PLAN_OPTS)?,
        },
        // Anything else is a JSON spec path.
        path => {
            return Ok(Command::RunScenarioFile {
                path: path.to_string(),
            })
        }
    };
    Ok(Command::RunScenario {
        spec: Box::new(ScenarioSpec {
            perspective,
            strategy,
            criteria,
        }),
    })
}

impl Command {
    /// Parses one REPL line. Empty lines parse to `Help`.
    pub fn parse(line: &str) -> Result<Command> {
        let tokens = tokenize(line);
        let Some(verb) = tokens.first() else {
            return Ok(Command::Help);
        };
        let rest = &tokens[1..];
        match verb.as_str() {
            "help" | "?" => Ok(Command::Help),
            "datasets" => Ok(Command::Datasets),
            "funcs" | "functions" => Ok(Command::Functions),
            "panels" => Ok(Command::Panels),
            "quit" | "exit" => Ok(Command::Quit),
            "load" => Ok(Command::Load {
                name: positional(rest, NO_OPTS, 0, "dataset name")?.to_string(),
                path: positional(rest, NO_OPTS, 1, "CSV path")?.to_string(),
            }),
            "generate" => Ok(Command::Generate {
                name: positional(rest, GENERATE_OPTS, 0, "dataset name")?.to_string(),
                preset: positional(rest, GENERATE_OPTS, 1, "preset")?.to_string(),
                n: opt_parse(rest, GENERATE_OPTS, "n", 200)?,
                seed: opt_parse(rest, GENERATE_OPTS, "seed", 42)?,
            }),
            "define" => Ok(Command::Define {
                name: positional(rest, NO_OPTS, 0, "function name")?.to_string(),
                expr: positional(rest, NO_OPTS, 1, "expression")?.to_string(),
            }),
            "data" => Ok(Command::ShowData {
                name: positional(rest, DATA_OPTS, 0, "dataset name")?.to_string(),
                rows: opt_parse(rest, DATA_OPTS, "rows", 10)?,
            }),
            "describe" => Ok(Command::Describe {
                name: positional(rest, NO_OPTS, 0, "dataset name")?.to_string(),
            }),
            "save" => Ok(Command::Save {
                dir: positional(rest, NO_OPTS, 0, "directory")?.to_string(),
            }),
            "open" => Ok(Command::Open {
                dir: positional(rest, NO_OPTS, 0, "directory")?.to_string(),
            }),
            "filter" => Ok(Command::DeriveFilter {
                new_name: raw_positional(rest, 0, "new dataset name")?.to_string(),
                source: raw_positional(rest, 1, "source dataset")?.to_string(),
                expr: raw_positional(rest, 2, "filter expression")?.to_string(),
            }),
            "anonymize" => {
                let method = match opt(rest, ANONYMIZE_OPTS, "method").unwrap_or("mondrian") {
                    "mondrian" => AnonMethod::Mondrian,
                    "datafly" => AnonMethod::Datafly,
                    "incognito" => AnonMethod::Incognito,
                    other => {
                        return Err(SessionError::Command(format!(
                            "unknown anonymization method {other:?}"
                        )))
                    }
                };
                Ok(Command::Anonymize {
                    new_name: positional(rest, ANONYMIZE_OPTS, 0, "new dataset name")?
                        .to_string(),
                    source: positional(rest, ANONYMIZE_OPTS, 1, "source dataset")?.to_string(),
                    k: opt_parse(rest, ANONYMIZE_OPTS, "k", 2)?,
                    method,
                })
            }
            "quantify" => {
                let objective = match opt(rest, QUANTIFY_OPTS, "objective") {
                    None => Objective::default(),
                    Some(raw) => Objective::parse(raw).ok_or_else(|| {
                        SessionError::Command(format!("unknown objective {raw:?}"))
                    })?,
                };
                let aggregator = match opt(rest, QUANTIFY_OPTS, "agg") {
                    None => Aggregator::default(),
                    Some(raw) => Aggregator::parse(raw).ok_or_else(|| {
                        SessionError::Command(format!("unknown aggregator {raw:?}"))
                    })?,
                };
                let emd = match opt(rest, QUANTIFY_OPTS, "emd") {
                    None => EmdBackendKind::default(),
                    Some(raw) => EmdBackendKind::parse(raw).ok_or_else(|| {
                        SessionError::Command(format!("unknown EMD backend {raw:?}"))
                    })?,
                };
                Ok(Command::Quantify {
                    dataset: positional(rest, QUANTIFY_OPTS, 0, "dataset")?.to_string(),
                    function: positional(rest, QUANTIFY_OPTS, 1, "function")?.to_string(),
                    objective,
                    aggregator,
                    bins: opt_parse(rest, QUANTIFY_OPTS, "bins", 10)?,
                    emd,
                    filter: opt(rest, QUANTIFY_OPTS, "where").map(str::to_string),
                    opaque: rest.iter().any(|t| t == "opaque"),
                })
            }
            "show" => Ok(Command::Show {
                panel: positional(rest, NO_OPTS, 0, "panel id")?
                    .parse()
                    .map_err(|_| SessionError::Command("panel id must be a number".into()))?,
            }),
            "node" => Ok(Command::Node {
                panel: positional(rest, NO_OPTS, 0, "panel id")?
                    .parse()
                    .map_err(|_| SessionError::Command("panel id must be a number".into()))?,
                node: positional(rest, NO_OPTS, 1, "node id")?
                    .parse()
                    .map_err(|_| SessionError::Command("node id must be a number".into()))?,
            }),
            "why" => Ok(Command::Why {
                panel: positional(rest, NO_OPTS, 0, "panel id")?
                    .parse()
                    .map_err(|_| SessionError::Command("panel id must be a number".into()))?,
                node: positional(rest, NO_OPTS, 1, "node id")?
                    .parse()
                    .map_err(|_| SessionError::Command("node id must be a number".into()))?,
            }),
            "compare" => Ok(Command::Compare {
                a: positional(rest, NO_OPTS, 0, "first panel")?
                    .parse()
                    .map_err(|_| SessionError::Command("panel id must be a number".into()))?,
                b: positional(rest, NO_OPTS, 1, "second panel")?
                    .parse()
                    .map_err(|_| SessionError::Command("panel id must be a number".into()))?,
            }),
            "export" => Ok(Command::Export {
                panel: positional(rest, NO_OPTS, 0, "panel id")?
                    .parse()
                    .map_err(|_| SessionError::Command("panel id must be a number".into()))?,
                path: positional(rest, NO_OPTS, 1, "output path")?.to_string(),
            }),
            "subgroups" => Ok(Command::Subgroups {
                dataset: positional(rest, SUBGROUPS_OPTS, 0, "dataset")?.to_string(),
                function: positional(rest, SUBGROUPS_OPTS, 1, "function")?.to_string(),
                depth: opt_parse(rest, SUBGROUPS_OPTS, "depth", 2)?,
                min_size: opt_parse(rest, SUBGROUPS_OPTS, "min", 5)?,
                top: opt_parse(rest, SUBGROUPS_OPTS, "top", 5)?,
            }),
            "audit" => Ok(Command::Audit {
                preset: positional(rest, AUDIT_OPTS, 0, "marketplace preset")?.to_string(),
                n: opt_parse(rest, AUDIT_OPTS, "n", 300)?,
                seed: opt_parse(rest, AUDIT_OPTS, "seed", 42)?,
                k: opt(rest, AUDIT_OPTS, "k")
                    .map(|raw| {
                        raw.parse().map_err(|_| {
                            SessionError::Command(format!("cannot parse k={raw}"))
                        })
                    })
                    .transpose()?,
                ranking_only: rest.iter().any(|t| t == "ranking-only"),
            }),
            "jobowner" => Ok(Command::JobOwner {
                preset: positional(rest, SCENARIO_OPTS, 0, "marketplace preset")?.to_string(),
                job: positional(rest, SCENARIO_OPTS, 1, "job id")?.to_string(),
                skill: positional(rest, SCENARIO_OPTS, 2, "skill")?.to_string(),
                n: opt_parse(rest, SCENARIO_OPTS, "n", 300)?,
                seed: opt_parse(rest, SCENARIO_OPTS, "seed", 42)?,
            }),
            "enduser" => Ok(Command::EndUser {
                preset: raw_positional(rest, 0, "marketplace preset")?.to_string(),
                group: raw_positional(rest, 1, "group filter")?.to_string(),
                n: opt_parse(&rest[2..], SCENARIO_OPTS, "n", 300)?,
                seed: opt_parse(&rest[2..], SCENARIO_OPTS, "seed", 42)?,
            }),
            "stream" => Ok(Command::Stream {
                preset: positional(rest, STREAM_OPTS, 0, "marketplace preset")?.to_string(),
                job: positional(rest, STREAM_OPTS, 1, "job id")?.to_string(),
                n: opt_parse(rest, STREAM_OPTS, "n", 300)?,
                seed: opt_parse(rest, STREAM_OPTS, "seed", 42)?,
                k: parse_k(rest, STREAM_OPTS)?,
                ranking_only: rest.iter().any(|t| t == "ranking-only"),
                config: parse_stream_config(rest, STREAM_OPTS)?,
            }),
            "scenario" => parse_scenario(rest),
            "sessions" => Ok(Command::Sessions),
            "evict" => Ok(Command::Evict {
                name: positional(rest, NO_OPTS, 0, "session name")?.to_string(),
            }),
            other => Err(SessionError::Command(format!("unknown command {other:?}"))),
        }
    }

    /// Whether the command reads or writes the host filesystem (`load`,
    /// `save`, `open`, `export`). Network services refuse these by
    /// default: a reachable port must not hand out file access on the
    /// serving host.
    pub fn touches_filesystem(&self) -> bool {
        matches!(
            self,
            Command::Load { .. }
                | Command::Save { .. }
                | Command::Open { .. }
                | Command::Export { .. }
                | Command::RunScenarioFile { .. }
        )
    }

    /// Whether the command runs a partitioning search (or another
    /// CPU-bound analysis) rather than a cheap registry/rendering
    /// operation. Services route these through a bounded worker pool so a
    /// burst of concurrent quantifications cannot oversubscribe the host.
    pub fn is_compute_heavy(&self) -> bool {
        matches!(
            self,
            Command::Quantify { .. }
                | Command::Subgroups { .. }
                | Command::Anonymize { .. }
                | Command::Audit { .. }
                | Command::JobOwner { .. }
                | Command::EndUser { .. }
                | Command::Stream { .. }
                | Command::RunScenario { .. }
                | Command::RunScenarioFile { .. }
        )
    }

    /// Whether the command manages a server's session registry rather than
    /// one session's state (`sessions`, `evict`). Servers handle these at
    /// the dispatch layer — and only when started with `--admin`; applying
    /// them to a plain [`Session`] is an error.
    pub fn is_registry_admin(&self) -> bool {
        matches!(self, Command::Sessions | Command::Evict { .. })
    }
}

/// Parses a scoring expression like `rating*0.7+language_test*0.3`.
pub fn parse_scoring(expr: &str) -> Result<LinearScoring> {
    let mut builder = LinearScoring::builder();
    for term in expr.split('+') {
        let term = term.trim();
        let (name, weight) = term.split_once('*').ok_or_else(|| {
            SessionError::Command(format!(
                "term {term:?} must look like attribute*weight"
            ))
        })?;
        let weight: f64 = weight.trim().parse().map_err(|_| {
            SessionError::Command(format!("weight {weight:?} is not a number"))
        })?;
        builder = builder.weight(name.trim(), weight);
    }
    Ok(builder.build_unchecked()?)
}

fn generate_dataset(preset: &str, n: usize, seed: u64) -> Result<fairank_data::Dataset> {
    let spec = match preset {
        "crowdsourcing" => synth::crowdsourcing_spec(n, seed),
        "biased" => synth::biased_crowdsourcing_spec(n, seed),
        "taskrabbit" => scenario::taskrabbit_population(n, seed),
        "qapa" => scenario::qapa_population(n, seed),
        other => {
            return Err(SessionError::Command(format!(
                "unknown preset {other:?} (try crowdsourcing, biased, taskrabbit, qapa)"
            )))
        }
    };
    Ok(spec.generate()?)
}

pub(crate) fn marketplace(
    preset: &str,
    n: usize,
    seed: u64,
) -> Result<fairank_marketplace::Marketplace> {
    match preset {
        "taskrabbit" => Ok(scenario::taskrabbit_like(n, seed)?),
        "qapa" => Ok(scenario::qapa_like(n, seed)?),
        other => Err(SessionError::Command(format!(
            "unknown marketplace preset {other:?} (try taskrabbit, qapa)"
        ))),
    }
}

/// Applies a command to a session, returning the structured [`Response`].
///
/// This is the typed core of the session API: every front end — the REPL,
/// script mode, the `fairank-service` JSON-lines server — goes through it
/// and decides separately how (or whether) to render the payload. The
/// text-era behavior is exactly `present::render(&apply(..)?)`, which
/// [`execute`] still provides.
pub fn apply(session: &mut Session, command: Command) -> Result<Response> {
    match command {
        Command::Help => Ok(Response::Help),
        Command::Quit => Ok(Response::Quit),
        Command::Datasets => Ok(Response::DatasetList(
            session
                .dataset_names()
                .iter()
                .map(|n| {
                    let ds = session.dataset(n).expect("listed");
                    DatasetEntry {
                        name: n.to_string(),
                        rows: ds.num_rows(),
                        columns: ds.schema().len(),
                    }
                })
                .collect(),
        )),
        Command::Functions => Ok(Response::FunctionList(
            session
                .function_names()
                .iter()
                .map(|n| {
                    let f = session.function(n).expect("listed");
                    FunctionEntry {
                        name: n.to_string(),
                        terms: f.terms().to_vec(),
                    }
                })
                .collect(),
        )),
        Command::Panels => Ok(Response::PanelList(
            session
                .panels()
                .iter()
                .map(|p| PanelEntry {
                    id: p.id,
                    unfairness: p.outcome.unfairness,
                    config: p.config.describe(),
                })
                .collect(),
        )),
        Command::Load { name, path } => {
            let ds = fairank_data::csv::read_csv_file(&path, &CsvOptions::default())?;
            let rows = ds.num_rows();
            session.add_dataset(&name, ds)?;
            Ok(Response::DatasetLoaded { name, rows, path })
        }
        Command::Generate {
            name,
            preset,
            n,
            seed,
        } => {
            let ds = generate_dataset(&preset, n, seed)?;
            session.add_dataset(&name, ds)?;
            Ok(Response::DatasetGenerated {
                name,
                preset,
                n,
                seed,
            })
        }
        Command::Define { name, expr } => {
            let f = parse_scoring(&expr)?;
            session.add_function(&name, f)?;
            Ok(Response::FunctionDefined { name, expr })
        }
        Command::ShowData { name, rows } => {
            // A head view over the shared columnar store: only the shown
            // cells are rendered; nothing of the dataset is copied.
            let ds = session.dataset(&name)?;
            let (columns, cells) = ds.head_cells(rows);
            Ok(Response::DataHead(DataHeadView {
                name,
                columns,
                rows: cells,
                total_rows: ds.num_rows(),
            }))
        }
        Command::Describe { name } => {
            let text = fairank_data::stats::describe(session.dataset(&name)?);
            Ok(Response::Description { name, text })
        }
        Command::Save { dir } => {
            crate::persist::save_session(session, &dir)?;
            Ok(Response::SessionSaved {
                datasets: session.dataset_names().len(),
                functions: session.function_names().len(),
                dir,
            })
        }
        Command::Open { dir } => {
            // Load through the *current* session's store so a reopened
            // session keeps deduping against datasets the registry (or a
            // prior save in this process) already holds.
            let loaded =
                crate::persist::load_session_with_store(&dir, session.store().clone())?;
            let datasets = loaded.dataset_names().len();
            let functions = loaded.function_names().len();
            *session = loaded;
            Ok(Response::SessionOpened {
                dir,
                datasets,
                functions,
            })
        }
        Command::DeriveFilter {
            new_name,
            source,
            expr,
        } => {
            let filter = Filter::parse(&expr)?;
            let rows = session.derive_filtered(&new_name, &source, &filter)?;
            Ok(Response::DatasetDerived {
                name: new_name,
                source,
                expr,
                rows,
            })
        }
        Command::Anonymize {
            new_name,
            source,
            k,
            method,
        } => {
            let suppressed = session.derive_anonymized(&new_name, &source, k, method)?;
            Ok(Response::DatasetAnonymized {
                name: new_name,
                source,
                method: format!("{method:?}"),
                k,
                suppressed,
            })
        }
        Command::Quantify {
            dataset,
            function,
            objective,
            aggregator,
            bins,
            emd,
            filter,
            opaque,
        } => {
            let criterion = FairnessCriterion::new(objective, aggregator)
                .with_hist(HistogramSpec::unit(bins)?)
                .with_emd(Emd::new(emd));
            let mut config = Configuration::new(&dataset, &function).with_criterion(criterion);
            if let Some(expr) = &filter {
                config = config.with_filter(Filter::parse(expr)?);
            }
            if opaque {
                // Simulate function opacity: rank with the true function,
                // hand the engine only the ranking.
                let f = session.function(&function)?.clone();
                let ds = session.dataset(&dataset)?;
                let working = match &filter {
                    Some(expr) => ds.filter(&Filter::parse(expr)?)?,
                    None => ds.clone(),
                };
                let scores = ScoreSource::Function(f).resolve(&working)?;
                config = config.with_source(ScoreSource::Ranking(scores_to_ranking(&scores)));
            }
            let id = session.quantify(config)?;
            Ok(Response::PanelCreated(PanelView::from_panel(
                session.panel(id)?,
            )?))
        }
        Command::Show { panel } => Ok(Response::PanelDetail(PanelView::from_panel(
            session.panel(panel)?,
        )?)),
        Command::Node { panel, node } => {
            let p = session.panel(panel)?;
            let stats = p.node_stats(node)?;
            let tree_node = p.outcome.tree.node(node);
            Ok(Response::NodeDetail(NodeView::from_stats(
                stats,
                tree_node.parent,
                tree_node.children.clone(),
            )))
        }
        Command::Why { panel, node } => {
            use fairank_core::explain::{explain_tree, render_explanation};
            let p = session.panel(panel)?;
            if node >= p.outcome.tree.len() {
                return Err(SessionError::UnknownNode { panel, node });
            }
            let explanations = explain_tree(&p.space, &p.outcome.tree, p.criterion())?;
            Ok(Response::Explanation {
                panel,
                node,
                text: render_explanation(&explanations[node]),
            })
        }
        Command::Compare { a, b } => Ok(Response::CompareReport(CompareView::new(
            session.panel(a)?,
            session.panel(b)?,
        ))),
        Command::Export { panel, path } => {
            let p = session.panel(panel)?;
            crate::export::write_panel_json(p, &path)?;
            Ok(Response::Exported { panel, path })
        }
        Command::Subgroups {
            dataset,
            function,
            depth,
            min_size,
            top,
        } => {
            use fairank_core::subgroup::{least_favored, most_favored, subgroup_stats};
            let f = session.function(&function)?.clone();
            let ds = session.dataset(&dataset)?;
            let space = ds.to_space(&ScoreSource::Function(f))?;
            // Fit the histogram range to the observed scores, as `quantify`
            // does — otherwise out-of-range scores saturate the edge bins
            // and every subgroup reports zero divergence.
            let criterion = FairnessCriterion::default().fit_range(&space);
            let stats = subgroup_stats(&space, &criterion, depth, min_size)?;
            let entry = |s: &fairank_core::subgroup::SubgroupStats| SubgroupEntry {
                label: s.label.clone(),
                size: s.size,
                advantage: s.advantage,
                divergence: s.divergence,
            };
            Ok(Response::Subgroups(SubgroupView {
                dataset,
                function,
                depth,
                min_size,
                total: stats.len(),
                most_favored: most_favored(&stats, top).into_iter().map(entry).collect(),
                least_favored: least_favored(&stats, top).into_iter().map(entry).collect(),
            }))
        }
        Command::Audit {
            preset,
            n,
            seed,
            k,
            ranking_only,
        } => {
            let market = marketplace(&preset, n, seed)?;
            let transparency = plan::observation_transparency(k, ranking_only);
            let report = report::auditor_report(
                &market,
                &transparency,
                &FairnessCriterion::default(),
                2,
                (n / 20).max(2),
            )?;
            Ok(Response::Audit(report))
        }
        Command::JobOwner {
            preset,
            job,
            skill,
            n,
            seed,
        } => {
            let market = marketplace(&preset, n, seed)?;
            let base = market.job(&job)?.scoring.clone();
            let report = report::job_owner_sweep(
                market.workers(),
                &base,
                &skill,
                &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
                &FairnessCriterion::default(),
            )?;
            Ok(Response::JobOwnerSweep(report))
        }
        Command::EndUser {
            preset,
            group,
            n,
            seed,
        } => {
            let market = marketplace(&preset, n, seed)?;
            let filter = Filter::parse(&group)?;
            let report =
                report::end_user_report(&market, &filter, &FairnessCriterion::default())?;
            Ok(Response::EndUserView(report))
        }
        Command::Stream {
            preset,
            job,
            n,
            seed,
            k,
            ranking_only,
            config,
        } => {
            let market = marketplace(&preset, n, seed)?;
            let transparency = plan::observation_transparency(k, ranking_only);
            let outcome = run_stream(
                &market,
                &job,
                &transparency,
                &FairnessCriterion::default(),
                config,
            )?;
            Ok(Response::Stream(StreamView {
                marketplace: market.name.clone(),
                outcome,
            }))
        }
        Command::RunScenario { spec } => {
            let compiled = plan::compile(session, &spec)?;
            Ok(Response::Scenario(compiled.run_parallel(session)?))
        }
        Command::RunScenarioFile { path } => {
            let text = std::fs::read_to_string(&path)?;
            let spec: ScenarioSpec = serde_json::from_str(&text)
                .map_err(|e| SessionError::Json(format!("spec {path}: {e}")))?;
            let compiled = plan::compile(session, &spec)?;
            Ok(Response::Scenario(compiled.run_parallel(session)?))
        }
        Command::Sessions | Command::Evict { .. } => Err(SessionError::Command(
            "`sessions` and `evict` manage a server's session registry; run them \
             against a `fairank serve --admin` server"
                .into(),
        )),
    }
}

/// Applies a command under a cancellation scope: installs `budget` as the
/// session's run budget for the duration of the call, then restores the
/// previous scope — even when the command errors. This is how the service
/// threads per-request deadlines and cancel tokens through the whole
/// command surface without widening every signature.
pub fn apply_with_budget(
    session: &mut Session,
    command: Command,
    budget: fairank_core::cancel::RunBudget,
) -> Result<Response> {
    let previous = std::mem::replace(session.run_budget_mut(), budget);
    let result = apply(session, command);
    *session.run_budget_mut() = previous;
    result
}

/// Executes a command against a session, returning the text to print.
/// `Quit` returns the string `"quit"`; the REPL loop watches for it.
///
/// This is the string-era façade kept for callers that only want the
/// rendered transcript: exactly `present::render(&apply(..)?)`.
pub fn execute(session: &mut Session, command: Command) -> Result<String> {
    Ok(present::render(&apply(session, command)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(session: &mut Session, line: &str) -> String {
        execute(session, Command::parse(line).unwrap()).unwrap()
    }

    #[test]
    fn tokenizer_honors_quotes() {
        assert_eq!(
            tokenize(r#"filter f src "gender=F & country=India""#),
            vec!["filter", "f", "src", "gender=F & country=India"]
        );
        assert_eq!(tokenize("  a   b "), vec!["a", "b"]);
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn parse_scoring_expressions() {
        let f = parse_scoring("rating*0.7+language_test*0.3").unwrap();
        assert_eq!(f.terms().len(), 2);
        assert!(parse_scoring("rating").is_err());
        assert!(parse_scoring("rating*x").is_err());
    }

    #[test]
    fn positionals_may_contain_equals_signs() {
        // A path with `=` is not a recognized key=value option, so it stays
        // a positional instead of producing "missing CSV path".
        let cmd = Command::parse("load d results=final.csv").unwrap();
        assert_eq!(
            cmd,
            Command::Load {
                name: "d".into(),
                path: "results=final.csv".into(),
            }
        );
        // Option sets are per command: `load` takes no options, so even a
        // path that collides with another command's key stays positional.
        let cmd = Command::parse("load d n=final.csv").unwrap();
        assert_eq!(
            cmd,
            Command::Load {
                name: "d".into(),
                path: "n=final.csv".into(),
            }
        );
        // Recognized options are still skipped by positional lookup.
        let cmd = Command::parse("data pop rows=3").unwrap();
        assert_eq!(
            cmd,
            Command::ShowData {
                name: "pop".into(),
                rows: 3,
            }
        );
        // An export path with `=` works too.
        let cmd = Command::parse("export 0 out=dir/panel.json").unwrap();
        assert_eq!(
            cmd,
            Command::Export {
                panel: 0,
                path: "out=dir/panel.json".into(),
            }
        );
    }

    #[test]
    fn quantify_accepts_every_emd_backend_name() {
        for kind in EmdBackendKind::all() {
            let line = format!("quantify pop f emd={}", kind.name());
            match Command::parse(&line).unwrap() {
                Command::Quantify { emd, .. } => assert_eq!(emd, kind),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(Command::parse("quantify pop f emd=sideways").is_err());
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(Command::parse("bogus").is_err());
        assert!(Command::parse("load onlyname").is_err());
        assert!(Command::parse("quantify d f objective=sideways").is_err());
        assert!(Command::parse("show notanumber").is_err());
        assert!(Command::parse("generate d biased n=abc").is_err());
    }

    #[test]
    fn full_session_script() {
        let mut s = Session::new();
        assert!(run(&mut s, "help").contains("FaiRank commands"));
        assert!(run(&mut s, "datasets").contains("no datasets"));
        run(&mut s, "generate pop biased n=120 seed=5");
        assert!(run(&mut s, "datasets").contains("pop"));
        run(&mut s, "define f rating*0.7+language_test*0.3");
        assert!(run(&mut s, "funcs").contains("0.7·rating"));
        let out = run(&mut s, "quantify pop f");
        assert!(out.contains("panel #0"));
        assert!(run(&mut s, "panels").contains("#0"));
        assert!(run(&mut s, "show 0").contains("unfairness"));
        assert!(run(&mut s, "node 0 0").contains("Node [0] ALL"));
        let why = run(&mut s, "why 0 0");
        assert!(why.contains("SPLIT on") || why.contains("STOP"));
        let out = run(&mut s, "quantify pop f objective=least agg=max bins=5");
        assert!(out.contains("panel #1"));
        assert!(run(&mut s, "compare 0 1").contains("Δ"));
        assert_eq!(run(&mut s, "quit"), "quit");
    }

    #[test]
    fn filtered_and_anonymized_flow() {
        let mut s = Session::new();
        run(&mut s, "generate pop biased n=100 seed=9");
        let out = run(&mut s, r#"filter women pop "gender=Female""#);
        assert!(out.contains("women = pop"));
        run(&mut s, "anonymize anon pop k=5 method=mondrian");
        run(&mut s, "define f rating*1.0");
        let out = run(&mut s, "quantify anon f");
        assert!(out.contains("panel #0"));
    }

    #[test]
    fn opaque_quantification_uses_ranks() {
        let mut s = Session::new();
        run(&mut s, "generate pop biased n=80 seed=2");
        run(&mut s, "define f rating*1.0");
        let transparent = run(&mut s, "quantify pop f");
        let opaque = run(&mut s, "quantify pop f opaque");
        assert!(transparent.contains("panel #0"));
        assert!(opaque.contains("panel #1"));
        // Both find unfairness; values differ because histograms differ.
        let u0 = s.panel(0).unwrap().outcome.unfairness;
        let u1 = s.panel(1).unwrap().outcome.unfairness;
        assert!(u0 > 0.0 && u1 > 0.0);
    }

    #[test]
    fn where_option_filters_inline() {
        let mut s = Session::new();
        run(&mut s, "generate pop biased n=100 seed=3");
        run(&mut s, "define f rating*1.0");
        run(&mut s, r#"quantify pop f where="gender=Female""#);
        let p = s.panel(0).unwrap();
        assert!(p.general_info().individuals < 100);
    }

    #[test]
    fn describe_save_open_cycle() {
        let dir = std::env::temp_dir().join("fairank_cmd_persist");
        std::fs::remove_dir_all(&dir).ok();
        let mut s = Session::new();
        run(&mut s, "generate pop biased n=60 seed=2");
        run(&mut s, "define f rating*1.0");
        let described = run(&mut s, "describe pop");
        assert!(described.contains("rating [observed]"));
        assert!(described.contains("distinct values"));
        let saved = run(&mut s, &format!("save {}", dir.display()));
        assert!(saved.contains("saved 1 dataset"));
        let mut fresh = Session::new();
        let opened = run(&mut fresh, &format!("open {}", dir.display()));
        assert!(opened.contains("1 dataset(s), 1 function(s)"));
        assert!(run(&mut fresh, "quantify pop f").contains("panel #0"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subgroups_command_lists_extremes() {
        let mut s = Session::new();
        run(&mut s, "generate pop biased n=200 seed=5");
        run(&mut s, "define f rating*1.0");
        let out = run(&mut s, "subgroups pop f depth=2 min=10 top=3");
        assert!(out.contains("most favored"));
        assert!(out.contains("least favored"));
        assert!(out.contains("advantage"));
    }

    #[test]
    fn scenario_commands_render_reports() {
        let mut s = Session::new();
        let audit = run(&mut s, "audit taskrabbit n=120 seed=4");
        assert!(audit.contains("AUDITOR REPORT"));
        let owner = run(&mut s, "jobowner taskrabbit wood-panels rating n=120 seed=4");
        assert!(owner.contains("← fairest"));
        let user = run(&mut s, r#"enduser taskrabbit "gender=Female" n=120 seed=4"#);
        assert!(user.contains("END-USER REPORT"));
    }

    #[test]
    fn audit_with_transparency_options() {
        let mut s = Session::new();
        let out = run(&mut s, "audit taskrabbit n=80 seed=6 k=4 ranking-only");
        assert!(out.contains("AUDITOR REPORT"));
    }

    #[test]
    fn scenario_grid_command_parses_and_runs() {
        let cmd = Command::parse(
            "scenario grid pop f,g aggs=mean,max bins=5,10 strategy=beam width=3",
        )
        .unwrap();
        let Command::RunScenario { spec } = &cmd else {
            panic!("expected RunScenario, got {cmd:?}");
        };
        assert_eq!(
            spec.perspective,
            crate::plan::Perspective::Grid {
                datasets: vec!["pop".into()],
                functions: vec!["f".into(), "g".into()],
                filter: None,
            }
        );
        assert_eq!(spec.strategy(), SearchStrategy::Beam { width: 3 });
        assert_eq!(spec.criterion_grid().cardinality(), 4);
        assert!(cmd.is_compute_heavy());
        assert!(!cmd.touches_filesystem());

        let mut s = Session::new();
        run(&mut s, "generate pop biased n=80 seed=2");
        run(&mut s, "define f rating*1.0");
        run(&mut s, "define g rating*0.5+language_test*0.5");
        let out = run(&mut s, "scenario grid pop f,g aggs=mean,max");
        assert!(out.contains("SCENARIO REPORT"), "{out}");
        assert!(out.contains("cell stats:"));
        // quantify strategy commits one panel per cell, in grid order.
        assert_eq!(s.panels().len(), 4);
    }

    #[test]
    fn scenario_perspectives_parse() {
        let cmd = Command::parse(
            "scenario auditor taskrabbit n=100 seed=3 k=4 ranking-only sg-depth=1 sg-min=8",
        )
        .unwrap();
        let Command::RunScenario { spec } = cmd else {
            panic!("expected RunScenario");
        };
        assert_eq!(
            spec.perspective,
            crate::plan::Perspective::Auditor {
                market: crate::plan::MarketSpec {
                    preset: "taskrabbit".into(),
                    n: 100,
                    seed: 3,
                },
                k: Some(4),
                ranking_only: true,
                subgroup_depth: 1,
                min_subgroup: 8,
            }
        );

        let cmd = Command::parse(
            "scenario jobowner taskrabbit wood-panels rating weights=0.0,0.5,1.0",
        )
        .unwrap();
        let Command::RunScenario { spec } = cmd else {
            panic!("expected RunScenario");
        };
        let crate::plan::Perspective::JobOwner { weights, skill, .. } = &spec.perspective
        else {
            panic!("expected job-owner perspective");
        };
        assert_eq!(weights, &[0.0, 0.5, 1.0]);
        assert_eq!(skill, "rating");

        let cmd = Command::parse(
            r#"scenario enduser taskrabbit "gender=Female" "gender=Male" n=90"#,
        )
        .unwrap();
        let Command::RunScenario { spec } = cmd else {
            panic!("expected RunScenario");
        };
        let crate::plan::Perspective::EndUser { groups, market } = &spec.perspective else {
            panic!("expected end-user perspective");
        };
        assert_eq!(groups, &["gender=Female".to_string(), "gender=Male".to_string()]);
        assert_eq!(market.n, 90);

        // Anything that is not a known perspective is a JSON spec path.
        assert_eq!(
            Command::parse("scenario plans/audit.json").unwrap(),
            Command::RunScenarioFile {
                path: "plans/audit.json".into(),
            }
        );
        assert!(Command::parse("scenario plans/audit.json")
            .unwrap()
            .touches_filesystem());
        assert!(Command::parse("scenario grid pop f strategy=sideways").is_err());
    }

    #[test]
    fn stream_command_parses_and_runs() {
        let cmd = Command::parse(
            "stream taskrabbit errands n=90 seed=4 rounds=2 arrivals=1 departures=1 \
             rescores=3 stream-seed=77",
        )
        .unwrap();
        assert_eq!(
            cmd,
            Command::Stream {
                preset: "taskrabbit".into(),
                job: "errands".into(),
                n: 90,
                seed: 4,
                k: None,
                ranking_only: false,
                config: StreamConfig {
                    rounds: 2,
                    arrivals_per_round: 1,
                    departures_per_round: 1,
                    rescores_per_round: 3,
                    seed: Some(77),
                },
            }
        );
        assert!(cmd.is_compute_heavy());
        assert!(!cmd.touches_filesystem());
        // Unspecified knobs land on the StreamConfig defaults.
        let Command::Stream { config, .. } = Command::parse("stream qapa devops").unwrap()
        else {
            panic!("expected Stream");
        };
        assert_eq!(config, StreamConfig::default());

        let mut s = Session::new();
        let out = run(
            &mut s,
            "stream taskrabbit errands n=90 seed=4 rounds=2 stream-seed=77",
        );
        assert!(out.contains("STREAM RE-AUDIT"), "{out}");
        assert!(out.contains("seed 77"));
        assert!(out.contains("histogram(s) reused across 2 churn round(s)"));
    }

    #[test]
    fn scenario_stream_parses_and_runs() {
        let cmd = Command::parse(
            "scenario stream taskrabbit errands n=90 seed=4 rounds=2 rescores=3 \
             stream-seed=5 aggs=mean,max",
        )
        .unwrap();
        let Command::RunScenario { spec } = &cmd else {
            panic!("expected RunScenario, got {cmd:?}");
        };
        let Perspective::Stream {
            market,
            job,
            config,
            ..
        } = &spec.perspective
        else {
            panic!("expected stream perspective");
        };
        assert_eq!(market.preset, "taskrabbit");
        assert_eq!(market.n, 90);
        assert_eq!(job, "errands");
        assert_eq!(config.rounds, 2);
        assert_eq!(config.rescores_per_round, 3);
        assert_eq!(config.seed, Some(5));
        assert_eq!(spec.criterion_grid().cardinality(), 2);

        let mut s = Session::new();
        let out = run(
            &mut s,
            "scenario stream taskrabbit errands n=90 seed=4 rounds=2 stream-seed=5 \
             aggs=mean,max",
        );
        assert!(out.contains("SCENARIO REPORT — stream"), "{out}");
        assert!(out.contains("criterion:"));
        assert!(out.contains("Δ reused"), "{out}");
    }

    #[test]
    fn scenario_file_command_round_trips_a_spec() {
        let dir = std::env::temp_dir().join("fairank_cmd_scenario");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        let spec = ScenarioSpec::new(Perspective::Grid {
            datasets: vec!["pop".into()],
            functions: vec!["f".into()],
            filter: None,
        });
        std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
        let mut s = Session::new();
        run(&mut s, "generate pop biased n=60 seed=4");
        run(&mut s, "define f rating*1.0");
        let out = run(&mut s, &format!("scenario {}", path.display()));
        assert!(out.contains("SCENARIO REPORT"), "{out}");
        assert_eq!(s.panels().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn registry_admin_commands_parse_but_refuse_plain_sessions() {
        assert_eq!(Command::parse("sessions").unwrap(), Command::Sessions);
        assert_eq!(
            Command::parse("evict audit-1").unwrap(),
            Command::Evict {
                name: "audit-1".into(),
            }
        );
        assert!(Command::parse("sessions").unwrap().is_registry_admin());
        assert!(Command::parse("evict x").unwrap().is_registry_admin());
        assert!(!Command::parse("help").unwrap().is_registry_admin());
        let mut s = Session::new();
        let err = apply(&mut s, Command::Sessions).unwrap_err();
        assert!(err.to_string().contains("--admin"));
        let err = apply(&mut s, Command::Evict { name: "x".into() }).unwrap_err();
        assert!(err.to_string().contains("registry"));
    }

    #[test]
    fn export_command_writes_file() {
        let dir = std::env::temp_dir().join("fairank_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        let mut s = Session::new();
        run(&mut s, "generate pop biased n=60 seed=8");
        run(&mut s, "define f rating*1.0");
        run(&mut s, "quantify pop f");
        let out = run(&mut s, &format!("export 0 {}", path.display()));
        assert!(out.contains("exported"));
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
