//! The multi-panel exploration session (Figure 1's engine).
//!
//! A session holds named datasets and scoring functions, runs
//! configurations into [`Panel`]s, and supports the derived-dataset
//! operations of the architecture: filtering, anonymization and
//! transparency changes. "The user can also choose to modify the scoring
//! function or the fairness formulation, and obtain several panels to
//! explore how that impacts fairness quantification" (§2).

use std::collections::BTreeMap;
use std::sync::Arc;

use fairank_anonymize::{datafly, mondrian, DataflyConfig, MondrianConfig};
use fairank_core::cancel::RunBudget;
use fairank_core::quantify::Quantify;
use fairank_core::scoring::{LinearScoring, ScoreSource};
use fairank_data::dataset::Dataset;
use fairank_data::filter::Filter;
use fairank_data::schema::AttributeRole;
use fairank_data::store::{DatasetHandle, DatasetStore};

use crate::config::{Configuration, ScoringChoice};
use crate::error::{Result, SessionError};
use crate::panel::Panel;

/// Which anonymization algorithm a session command uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnonMethod {
    /// Mondrian multidimensional recoding (keeps every row).
    #[default]
    Mondrian,
    /// Datafly full-domain generalization (may suppress rows).
    Datafly,
    /// Incognito: optimal full-domain generalization (no suppression).
    Incognito,
}

/// The exploration workspace: datasets, functions, panels.
///
/// Datasets live in a content-addressed [`DatasetStore`]: the session
/// holds lightweight [`DatasetHandle`]s, so loading identical content
/// twice (or into N sessions sharing a registry-level store) dedupes to
/// one `Arc`-shared columnar allocation.
#[derive(Debug, Default)]
pub struct Session {
    datasets: BTreeMap<String, DatasetHandle>,
    functions: BTreeMap<String, LinearScoring>,
    panels: Vec<Panel>,
    /// The content-addressed store datasets are interned into. Private
    /// sessions get their own; the service registry shares one across all
    /// sessions.
    store: Arc<DatasetStore>,
    /// Cooperative cancellation scope every search run by this session
    /// honors. Unlimited by default; the service installs a per-request
    /// deadline + cancel tokens before dispatching a command.
    run_budget: RunBudget,
}

impl Session {
    /// An empty session with a private dataset store.
    pub fn new() -> Self {
        Session::default()
    }

    /// An empty session interning datasets into `store` — how the service
    /// registry makes N sessions share one allocation per distinct
    /// dataset.
    pub fn with_store(store: Arc<DatasetStore>) -> Self {
        Session {
            store,
            ..Session::default()
        }
    }

    /// The store this session interns datasets into.
    pub fn store(&self) -> &Arc<DatasetStore> {
        &self.store
    }

    /// Installs the cancellation scope (deadline and/or cancel tokens)
    /// searches run by this session poll. Pass [`RunBudget::unlimited`] to
    /// clear it.
    pub fn set_run_budget(&mut self, budget: RunBudget) {
        self.run_budget = budget;
    }

    /// The session's current cancellation scope.
    pub fn run_budget(&self) -> &RunBudget {
        &self.run_budget
    }

    /// Mutable access to the cancellation scope, for scoped install/restore
    /// (see [`crate::command::apply_with_budget`]).
    pub fn run_budget_mut(&mut self) -> &mut RunBudget {
        &mut self.run_budget
    }

    // ---- datasets -------------------------------------------------------

    /// Registers a dataset under a unique name. Names are validated here —
    /// the chokepoint every dataset passes through — so a name that could
    /// escape the session directory on `save` is rejected immediately
    /// instead of wedging the save later.
    pub fn add_dataset(&mut self, name: impl Into<String>, dataset: Dataset) -> Result<()> {
        let name = name.into();
        crate::persist::validate_dataset_name(&name)?;
        if self.datasets.contains_key(&name) {
            return Err(SessionError::NameTaken(name));
        }
        // Intern through the store: identical content (a re-loaded CSV, a
        // save/load round trip, another session's copy) dedupes to the
        // existing shared allocation.
        self.datasets.insert(name, self.store.intern(dataset));
        Ok(())
    }

    /// A registered dataset.
    pub fn dataset(&self, name: &str) -> Result<&Dataset> {
        self.dataset_handle(name).map(DatasetHandle::dataset)
    }

    /// A registered dataset's shared-storage handle (content fingerprint +
    /// `Arc`-shared columns).
    pub fn dataset_handle(&self, name: &str) -> Result<&DatasetHandle> {
        self.datasets
            .get(name)
            .ok_or_else(|| SessionError::UnknownDataset(name.to_string()))
    }

    /// Names of all registered datasets.
    pub fn dataset_names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Registers `new_name` as `source` filtered by `filter`.
    pub fn derive_filtered(
        &mut self,
        new_name: impl Into<String>,
        source: &str,
        filter: &Filter,
    ) -> Result<usize> {
        let filtered = self.dataset(source)?.filter(filter)?;
        let rows = filtered.num_rows();
        self.add_dataset(new_name, filtered)?;
        Ok(rows)
    }

    /// Registers `new_name` as a k-anonymized copy of `source` over all its
    /// protected attributes. Returns the number of suppressed rows (always
    /// 0 for Mondrian).
    pub fn derive_anonymized(
        &mut self,
        new_name: impl Into<String>,
        source: &str,
        k: usize,
        method: AnonMethod,
    ) -> Result<usize> {
        let ds = self.dataset(source)?;
        let qis: Vec<&str> = ds
            .schema()
            .fields()
            .iter()
            .filter(|f| f.role == AttributeRole::Protected)
            .map(|f| f.name.as_str())
            .collect();
        let (anon, suppressed) = match method {
            AnonMethod::Mondrian => {
                let out = mondrian(ds, &qis, MondrianConfig { k })?;
                (out.dataset, 0)
            }
            AnonMethod::Datafly => {
                let out = datafly(
                    ds,
                    &qis,
                    &[],
                    DataflyConfig {
                        k,
                        max_suppression: 0.05,
                    },
                )?;
                (out.dataset, out.suppressed)
            }
            AnonMethod::Incognito => {
                let hierarchies = fairank_anonymize::datafly::auto_hierarchies(ds, &qis)?;
                let out = fairank_anonymize::incognito(ds, &qis, &hierarchies, k)?;
                (out.dataset, 0)
            }
        };
        self.add_dataset(new_name, anon)?;
        Ok(suppressed)
    }

    // ---- scoring functions ----------------------------------------------

    /// Registers a scoring function under a unique name.
    pub fn add_function(
        &mut self,
        name: impl Into<String>,
        function: LinearScoring,
    ) -> Result<()> {
        let name = name.into();
        if self.functions.contains_key(&name) {
            return Err(SessionError::NameTaken(name));
        }
        self.functions.insert(name, function);
        Ok(())
    }

    /// A registered function.
    pub fn function(&self, name: &str) -> Result<&LinearScoring> {
        self.functions
            .get(name)
            .ok_or_else(|| SessionError::UnknownFunction(name.to_string()))
    }

    /// Names of all registered functions.
    pub fn function_names(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }

    // ---- panels -----------------------------------------------------------

    /// Runs a configuration and appends the resulting panel. Returns the
    /// new panel's id.
    ///
    /// The criterion's histogram range is fitted to the observed score
    /// range first ("equal bins over the range of f"), so scoring functions
    /// outside `[0, 1]` no longer saturate the edge bins; the fitted
    /// criterion is stored in the panel's configuration so node statistics
    /// and renderings use the same bins the search did.
    pub fn quantify(&mut self, mut config: Configuration) -> Result<usize> {
        let handle = self.dataset_handle(&config.dataset)?;
        let source = match &config.scoring {
            ScoringChoice::Named(name) => ScoreSource::Function(self.function(name)?.clone()),
            ScoringChoice::Inline(source) => source.clone(),
        };
        // Unfiltered runs read the shared columns directly — no copy of
        // the dataset is made; only a filter materializes a working set.
        let space = if config.filter.is_empty() {
            handle.dataset().to_space(&source)?
        } else {
            handle.dataset().filter(&config.filter)?.to_space(&source)?
        };
        config.criterion = config.criterion.fit_range(&space);
        let outcome = Quantify::new(config.criterion)
            .with_run_budget(self.run_budget.clone())
            .run_space(&space)?;
        let id = self.panels.len();
        self.panels.push(Panel {
            id,
            config,
            space,
            outcome,
            from_cache: false,
        });
        Ok(id)
    }

    /// Appends an already-executed quantification as a panel — the commit
    /// step of grid plan cells. Returns the new panel's id.
    pub(crate) fn commit_panel(
        &mut self,
        config: Configuration,
        space: fairank_core::space::RankingSpace,
        outcome: fairank_core::quantify::QuantifyOutcome,
        from_cache: bool,
    ) -> usize {
        // Chaos hook: a panic here unwinds through the scenario reduce
        // while the caller holds the session lock — the poisoning the
        // service's quarantine path must absorb.
        fairank_core::fault::panic_point(fairank_core::fault::COMMIT_PANIC);
        let id = self.panels.len();
        self.panels.push(Panel {
            id,
            config,
            space,
            outcome,
            from_cache,
        });
        id
    }

    /// A panel by id.
    pub fn panel(&self, id: usize) -> Result<&Panel> {
        self.panels
            .get(id)
            .ok_or(SessionError::UnknownPanel(id))
    }

    /// All panels, oldest first.
    pub fn panels(&self) -> &[Panel] {
        &self.panels
    }

    /// Runs a whole grid of configurations in parallel (one panel each) —
    /// the Figure 3 multi-panel layout at scale, e.g. every scoring variant
    /// × every aggregator. Panels are appended in grid order; the returned
    /// ids follow it.
    ///
    /// This is a thin builder over the scenario plan layer: the grid
    /// compiles into one [`crate::plan::Plan`] cell per configuration
    /// (resolved and validated up front), executes on one scoped OS thread
    /// per cell, and commits atomically — any failure surfaces before a
    /// single panel is appended.
    pub fn quantify_grid(&mut self, configs: Vec<Configuration>) -> Result<Vec<usize>> {
        use crate::plan::{Plan, ScenarioOutcome};
        use fairank_core::plan::SearchStrategy;

        let plan = Plan::for_configurations(self, configs, SearchStrategy::default())?;
        let report = plan.run_parallel(self)?;
        let ScenarioOutcome::Grid(rows) = report.outcome else {
            return Err(SessionError::Internal(
                "grid plan reduced to a non-grid outcome".into(),
            ));
        };
        rows.into_iter()
            .map(|row| {
                row.panel.ok_or_else(|| {
                    SessionError::Internal("grid cell did not commit a panel".into())
                })
            })
            .collect()
    }

    /// Side-by-side comparison of two panels' general info, as the Figure 3
    /// multi-panel layout enables. The structured form of this comparison
    /// is [`crate::response::CompareView`]; this renders it.
    pub fn compare(&self, a: usize, b: usize) -> Result<String> {
        let view = crate::response::CompareView::new(self.panel(a)?, self.panel(b)?);
        Ok(crate::present::render(
            &crate::response::Response::CompareReport(view),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::fairness::{Aggregator, FairnessCriterion, Objective};
    use fairank_data::paper;

    fn session_with_table1() -> Session {
        let mut s = Session::new();
        s.add_dataset("table1", paper::table1_dataset()).unwrap();
        s.add_function("paper-f", paper::table1_scoring()).unwrap();
        s
    }

    #[test]
    fn dataset_and_function_registry() {
        let mut s = session_with_table1();
        assert_eq!(s.dataset_names(), vec!["table1"]);
        assert_eq!(s.function_names(), vec!["paper-f"]);
        assert!(s.dataset("table1").is_ok());
        assert!(s.dataset("ghost").is_err());
        assert!(s.function("ghost").is_err());
        // Duplicates rejected.
        assert!(s.add_dataset("table1", paper::table1_dataset()).is_err());
        assert!(s.add_function("paper-f", paper::table1_scoring()).is_err());
    }

    #[test]
    fn quantify_produces_panels() {
        let mut s = session_with_table1();
        let id = s.quantify(Configuration::new("table1", "paper-f")).unwrap();
        assert_eq!(id, 0);
        let p = s.panel(0).unwrap();
        assert_eq!(p.general_info().individuals, 10);
        assert!(s.panel(5).is_err());
    }

    #[test]
    fn filtered_quantification_shrinks_population() {
        let mut s = session_with_table1();
        let config = Configuration::new("table1", "paper-f")
            .with_filter(Filter::all().eq("gender", "Male"));
        let id = s.quantify(config).unwrap();
        assert_eq!(s.panel(id).unwrap().general_info().individuals, 6);
    }

    #[test]
    fn derive_filtered_registers_new_dataset() {
        let mut s = session_with_table1();
        let rows = s
            .derive_filtered("males", "table1", &Filter::all().eq("gender", "Male"))
            .unwrap();
        assert_eq!(rows, 6);
        assert_eq!(s.dataset("males").unwrap().num_rows(), 6);
        assert!(s
            .derive_filtered("males", "table1", &Filter::all())
            .is_err());
    }

    #[test]
    fn derive_anonymized_both_methods() {
        let mut s = session_with_table1();
        let suppressed = s
            .derive_anonymized("anon-m", "table1", 2, AnonMethod::Mondrian)
            .unwrap();
        assert_eq!(suppressed, 0);
        assert_eq!(s.dataset("anon-m").unwrap().num_rows(), 10);

        let _ = s
            .derive_anonymized("anon-d", "table1", 2, AnonMethod::Datafly)
            .unwrap();
        assert!(s.dataset("anon-d").unwrap().num_rows() <= 10);
    }

    #[test]
    fn anonymized_dataset_can_be_quantified() {
        let mut s = session_with_table1();
        s.derive_anonymized("anon", "table1", 3, AnonMethod::Mondrian)
            .unwrap();
        let id = s.quantify(Configuration::new("anon", "paper-f")).unwrap();
        let info = s.panel(id).unwrap().general_info();
        assert!(info.unfairness >= 0.0);
    }

    #[test]
    fn compare_reports_delta() {
        let mut s = session_with_table1();
        let a = s.quantify(Configuration::new("table1", "paper-f")).unwrap();
        let b = s
            .quantify(
                Configuration::new("table1", "paper-f").with_criterion(
                    FairnessCriterion::new(Objective::LeastUnfair, Aggregator::Mean),
                ),
            )
            .unwrap();
        let text = s.compare(a, b).unwrap();
        assert!(text.contains("Δ"));
        assert!(text.contains("most-unfair"));
        assert!(text.contains("least-unfair"));
        assert!(s.compare(0, 99).is_err());
    }

    #[test]
    fn quantify_grid_runs_configs_in_parallel() {
        let mut s = session_with_table1();
        let configs: Vec<Configuration> = Aggregator::all()
            .into_iter()
            .map(|agg| {
                Configuration::new("table1", "paper-f")
                    .with_criterion(FairnessCriterion::new(Objective::MostUnfair, agg))
            })
            .collect();
        let ids = s.quantify_grid(configs).unwrap();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        // Each grid panel matches its sequential counterpart (the panel's
        // stored criterion is the range-fitted one the grid ran with).
        for id in &ids {
            let sequential = Quantify::new(s.panel(*id).unwrap().config.criterion)
                .run_space(&s.panel(*id).unwrap().space)
                .unwrap();
            assert!(
                (s.panel(*id).unwrap().outcome.unfairness - sequential.unfairness).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn quantify_fits_histogram_to_score_range() {
        // Scores far outside [0, 1]: under the old hard-coded unit-range
        // histogram every score saturated into the last bin and unfairness
        // read 0.0 despite the groups being perfectly separated.
        let mut s = Session::new();
        let ds = Dataset::builder()
            .categorical(
                "g",
                AttributeRole::Protected,
                &["a", "a", "a", "b", "b", "b"],
            )
            .float(
                "skill",
                AttributeRole::Observed,
                vec![10.0, 11.0, 10.5, 19.0, 20.0, 19.5],
            )
            .build()
            .unwrap();
        s.add_dataset("wide", ds).unwrap();
        let f = LinearScoring::builder()
            .weight("skill", 1.0)
            .build_unchecked()
            .unwrap();
        s.add_function("f", f).unwrap();
        let id = s.quantify(Configuration::new("wide", "f")).unwrap();
        let p = s.panel(id).unwrap();
        assert!(p.outcome.unfairness > 0.5, "u = {}", p.outcome.unfairness);
        // The stored criterion reflects the fitted range, so node boxes and
        // renderings bin the same way the search did.
        assert!(p.config.criterion.hist.hi() > 1.0);
    }

    #[test]
    fn quantify_grid_validates_before_spawning() {
        let mut s = session_with_table1();
        let configs = vec![
            Configuration::new("table1", "paper-f"),
            Configuration::new("ghost", "paper-f"),
        ];
        assert!(s.quantify_grid(configs).is_err());
        // Nothing was committed.
        assert!(s.panels().is_empty());
    }

    #[test]
    fn identical_loads_into_one_session_share_storage() {
        // Regression: loading the same content twice used to duplicate the
        // parsed data; it now dedupes to one pointer-equal allocation.
        let mut s = session_with_table1();
        s.add_dataset("again", paper::table1_dataset()).unwrap();
        let a = s.dataset_handle("table1").unwrap().clone();
        let b = s.dataset_handle("again").unwrap();
        assert!(a.shares_storage_with(b));
        assert_eq!(s.store().stats().datasets, 1);
    }

    #[test]
    fn sessions_sharing_a_store_share_allocations() {
        let store = Arc::new(DatasetStore::new());
        let mut s1 = Session::with_store(Arc::clone(&store));
        let mut s2 = Session::with_store(Arc::clone(&store));
        s1.add_dataset("d", paper::table1_dataset()).unwrap();
        s2.add_dataset("copy", paper::table1_dataset()).unwrap();
        assert!(s1
            .dataset_handle("d")
            .unwrap()
            .shares_storage_with(s2.dataset_handle("copy").unwrap()));
        assert_eq!(store.stats().datasets, 1);
        drop(s1);
        drop(s2);
        assert_eq!(store.stats().datasets, 0);
    }

    #[test]
    fn panel_ids_are_stable() {
        let mut s = session_with_table1();
        let a = s.quantify(Configuration::new("table1", "paper-f")).unwrap();
        let b = s.quantify(Configuration::new("table1", "paper-f")).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.panels().len(), 2);
        assert_eq!(s.panel(1).unwrap().id, 1);
    }
}
