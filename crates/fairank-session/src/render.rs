//! Panel-level text rendering: partitioning trees and histogram sparklines.
//!
//! The Figure 3 interface draws partitioning trees in panels. Since the
//! typed-response redesign the actual formatting lives in [`crate::present`]
//! (which renders wire views, so remote clients produce identical text);
//! this module keeps the panel-handle convenience API and delegates.

use fairank_core::histogram::Histogram;

use crate::panel::Panel;
use crate::present;
use crate::response::{node_views, NodeView, PanelView};

/// Renders a histogram as a sparkline, one character per bin. An empty
/// histogram renders as dots.
pub fn sparkline(hist: &Histogram) -> String {
    present::sparkline_counts(hist.counts())
}

/// Renders the panel's partitioning tree.
pub fn render_tree(panel: &Panel) -> String {
    let nodes = node_views(panel).expect("panel tree nodes are valid");
    present::render_tree_view(&nodes)
}

/// Renders the *General* box of a panel, including the evaluation engine's
/// work counters (how much the caches saved is `emd cache hits` relative to
/// `EMD calls`).
pub fn render_general(panel: &Panel) -> String {
    present::render_general_view(&PanelView::general_only(panel))
}

/// Renders the *Node* box for one node of a panel.
pub fn render_node_box(panel: &Panel, node: usize) -> crate::error::Result<String> {
    let stats = panel.node_stats(node)?;
    let tree_node = panel.outcome.tree.node(node);
    let view = NodeView::from_stats(stats, tree_node.parent, tree_node.children.clone());
    Ok(present::render_node_view(&view))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use fairank_core::histogram::HistogramSpec;
    use fairank_core::quantify::Quantify;
    use fairank_core::scoring::ScoreSource;
    use fairank_data::paper;

    fn panel() -> Panel {
        let ds = paper::table1_dataset();
        let source = ScoreSource::Function(paper::table1_scoring());
        let space = ds.to_space(&source).unwrap();
        let config = Configuration::new("table1", "paper-f");
        let outcome = Quantify::new(config.criterion).run_space(&space).unwrap();
        Panel {
            id: 0,
            config,
            space,
            outcome,
            from_cache: false,
        }
    }

    #[test]
    fn sparkline_shapes() {
        let spec = HistogramSpec::unit(5).unwrap();
        let h = Histogram::from_scores(spec, [0.05, 0.05, 0.05, 0.5, 0.95]);
        let s = sparkline(&h);
        assert_eq!(s.chars().count(), 5);
        assert!(s.starts_with('█'));
        let empty = Histogram::empty(spec);
        assert_eq!(sparkline(&empty), "·····");
    }

    #[test]
    fn sparkline_zero_bins_are_lowest() {
        let spec = HistogramSpec::unit(3).unwrap();
        let h = Histogram::from_scores(spec, [0.9]);
        let s: Vec<char> = sparkline(&h).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[2], '█');
    }

    #[test]
    fn tree_rendering_contains_all_nodes() {
        let p = panel();
        let text = render_tree(&p);
        for id in 0..p.outcome.tree.len() {
            assert!(text.contains(&format!("[{id}]")), "missing node {id}:\n{text}");
        }
        // Root labelled ALL, leaves carry sparkline + mean.
        assert!(text.contains("ALL"));
        assert!(text.contains("μ="));
    }

    #[test]
    fn general_box_fields() {
        let p = panel();
        let text = render_general(&p);
        assert!(text.contains("unfairness"));
        assert!(text.contains("partitions"));
        assert!(text.contains("table1"));
        assert!(text.contains("splits scored"));
        assert!(text.contains("EMD calls"));
        assert!(text.contains("cache hits"));
    }

    #[test]
    fn node_box_renders_and_errors() {
        let p = panel();
        let text = render_node_box(&p, 0).unwrap();
        assert!(text.contains("Node [0] ALL"));
        assert!(text.contains("individuals     10"));
        assert!(render_node_box(&p, 999).is_err());
    }
}
