//! Text rendering: partitioning trees and histogram sparklines.
//!
//! The Figure 3 interface draws partitioning trees in panels; here they are
//! rendered with box-drawing characters, one node per line, each leaf
//! carrying its size, mean score and a histogram sparkline.

use fairank_core::histogram::Histogram;

use crate::panel::Panel;

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a histogram as a sparkline, one character per bin. An empty
/// histogram renders as dots.
pub fn sparkline(hist: &Histogram) -> String {
    if hist.is_empty() {
        return "·".repeat(hist.spec().bins());
    }
    let max = hist.counts().iter().copied().max().unwrap_or(0).max(1);
    hist.counts()
        .iter()
        .map(|&c| {
            if c == 0 {
                SPARK_LEVELS[0]
            } else {
                let idx = ((c as f64 / max as f64) * (SPARK_LEVELS.len() - 1) as f64).round()
                    as usize;
                SPARK_LEVELS[idx.clamp(1, SPARK_LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Renders the panel's partitioning tree.
pub fn render_tree(panel: &Panel) -> String {
    let mut out = String::new();
    render_node(panel, 0, "", true, true, &mut out);
    out
}

fn render_node(
    panel: &Panel,
    node: usize,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) {
    let stats = panel.node_stats(node).expect("tree node exists");
    let connector = if is_root {
        ""
    } else if is_last {
        "└─ "
    } else {
        "├─ "
    };
    let label = if is_root {
        let step = stats
            .label
            .rsplit(" ∧ ")
            .next()
            .unwrap_or(&stats.label)
            .to_string();
        step
    } else {
        // Only the last path step is new information at this depth.
        stats
            .label
            .rsplit(" ∧ ")
            .next()
            .unwrap_or(&stats.label)
            .to_string()
    };
    let annotation = if stats.is_leaf {
        format!(
            " (n={}, μ={:.3}) {}",
            stats.size,
            stats.mean_score,
            sparkline(&stats.histogram)
        )
    } else {
        format!(
            " (n={}) ⊢ split on {}",
            stats.size,
            stats.split_attribute.as_deref().unwrap_or("?")
        )
    };
    out.push_str(prefix);
    out.push_str(connector);
    out.push_str(&format!("[{node}] "));
    out.push_str(&label);
    out.push_str(&annotation);
    out.push('\n');

    let children = &panel.outcome.tree.node(node).children;
    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { "│  " })
    };
    for (i, &child) in children.iter().enumerate() {
        render_node(
            panel,
            child,
            &child_prefix,
            i + 1 == children.len(),
            false,
            out,
        );
    }
}

/// Renders the *General* box of a panel, including the evaluation engine's
/// work counters (how much the caches saved is `emd cache hits` relative to
/// `EMD calls`).
pub fn render_general(panel: &Panel) -> String {
    let info = panel.general_info();
    format!(
        "Panel #{} — {}\n\
         unfairness      {:.6}\n\
         partitions      {}\n\
         tree nodes      {}\n\
         max depth       {}\n\
         individuals     {}\n\
         search time     {} µs\n\
         splits scored   {}\n\
         histograms      {}\n\
         EMD calls       {} ({} cache hits)\n",
        panel.id,
        panel.config.describe(),
        info.unfairness,
        info.num_partitions,
        info.tree_nodes,
        info.max_depth,
        info.individuals,
        info.elapsed_us,
        info.candidate_splits,
        info.histograms_built,
        info.emd_calls,
        info.emd_cache_hits,
    )
}

/// Renders the *Node* box for one node of a panel.
pub fn render_node_box(panel: &Panel, node: usize) -> crate::error::Result<String> {
    let stats = panel.node_stats(node)?;
    let kind = if stats.is_leaf {
        "final partition".to_string()
    } else {
        format!(
            "internal, split on {}",
            stats.split_attribute.as_deref().unwrap_or("?")
        )
    };
    let divergence = stats
        .divergence_vs_siblings
        .map(|d| format!("{d:.4}"))
        .unwrap_or_else(|| "-".into());
    Ok(format!(
        "Node [{}] {}\n\
         kind            {}\n\
         individuals     {}\n\
         mean score      {:.4}\n\
         score range     [{:.4}, {:.4}]\n\
         vs siblings     {}\n\
         histogram       {}  (bins of {:?})\n",
        stats.node,
        stats.label,
        kind,
        stats.size,
        stats.mean_score,
        stats.min_score,
        stats.max_score,
        divergence,
        sparkline(&stats.histogram),
        stats.histogram.counts(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use fairank_core::histogram::HistogramSpec;
    use fairank_core::quantify::Quantify;
    use fairank_core::scoring::ScoreSource;
    use fairank_data::paper;

    fn panel() -> Panel {
        let ds = paper::table1_dataset();
        let source = ScoreSource::Function(paper::table1_scoring());
        let space = ds.to_space(&source).unwrap();
        let config = Configuration::new("table1", "paper-f");
        let outcome = Quantify::new(config.criterion).run_space(&space).unwrap();
        Panel {
            id: 0,
            config,
            space,
            outcome,
        }
    }

    #[test]
    fn sparkline_shapes() {
        let spec = HistogramSpec::unit(5).unwrap();
        let h = Histogram::from_scores(spec, [0.05, 0.05, 0.05, 0.5, 0.95]);
        let s = sparkline(&h);
        assert_eq!(s.chars().count(), 5);
        assert!(s.starts_with('█'));
        let empty = Histogram::empty(spec);
        assert_eq!(sparkline(&empty), "·····");
    }

    #[test]
    fn sparkline_zero_bins_are_lowest() {
        let spec = HistogramSpec::unit(3).unwrap();
        let h = Histogram::from_scores(spec, [0.9]);
        let s: Vec<char> = sparkline(&h).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[2], '█');
    }

    #[test]
    fn tree_rendering_contains_all_nodes() {
        let p = panel();
        let text = render_tree(&p);
        for id in 0..p.outcome.tree.len() {
            assert!(text.contains(&format!("[{id}]")), "missing node {id}:\n{text}");
        }
        // Root labelled ALL, leaves carry sparkline + mean.
        assert!(text.contains("ALL"));
        assert!(text.contains("μ="));
    }

    #[test]
    fn general_box_fields() {
        let p = panel();
        let text = render_general(&p);
        assert!(text.contains("unfairness"));
        assert!(text.contains("partitions"));
        assert!(text.contains("table1"));
        assert!(text.contains("splits scored"));
        assert!(text.contains("EMD calls"));
        assert!(text.contains("cache hits"));
    }

    #[test]
    fn node_box_renders_and_errors() {
        let p = panel();
        let text = render_node_box(&p, 0).unwrap();
        assert!(text.contains("Node [0] ALL"));
        assert!(text.contains("individuals     10"));
        assert!(render_node_box(&p, 999).is_err());
    }
}
