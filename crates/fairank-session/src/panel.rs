//! Panels: one quantification result each (Figure 3, right side).
//!
//! A panel bundles the configuration that produced it, the resolved ranking
//! space, and the `QUANTIFY` outcome. The *General box* statistics describe
//! the whole tree; the *Node box* statistics describe one clicked node.

use fairank_core::fairness::FairnessCriterion;
use fairank_core::histogram::Histogram;
use fairank_core::quantify::QuantifyOutcome;
use fairank_core::space::RankingSpace;

use crate::config::Configuration;
use crate::error::{Result, SessionError};

/// General information about a panel (the *General* box).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralInfo {
    /// Unfairness of the final partitioning under the panel's criterion.
    pub unfairness: f64,
    /// Number of final partitions (tree leaves).
    pub num_partitions: usize,
    /// Total nodes in the partitioning tree.
    pub tree_nodes: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Individuals analyzed (after filtering).
    pub individuals: usize,
    /// Search wall-clock time in microseconds.
    pub elapsed_us: u128,
    /// Candidate (node, attribute) splits the search scored.
    pub candidate_splits: usize,
    /// Histograms the evaluation engine actually built.
    pub histograms_built: usize,
    /// EMD distances actually computed.
    pub emd_calls: usize,
    /// Distance lookups served from the engine's memo table.
    pub emd_cache_hits: usize,
    /// Pairwise/cross aggregations the batched EMD backend resolved as one
    /// batch (0 under the per-pair backends).
    pub pairwise_batches: usize,
    /// Histograms served from a previous generation's caches by an
    /// incremental (delta) re-quantification (0 for from-scratch panels).
    pub delta_reused_histograms: usize,
    /// Memoized EMD entries dropped by targeted invalidation ahead of the
    /// search (0 for from-scratch panels).
    pub delta_invalidated_emds: usize,
    /// Whether this panel's outcome was served from the content-addressed
    /// cell cache instead of being recomputed.
    pub from_cache: bool,
}

/// Statistics of one tree node (the *Node* box).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Node id within the tree.
    pub node: usize,
    /// Human-readable partition label.
    pub label: String,
    /// Number of individuals in the partition.
    pub size: usize,
    /// Mean score of the partition.
    pub mean_score: f64,
    /// Minimum score.
    pub min_score: f64,
    /// Maximum score.
    pub max_score: f64,
    /// The partition's score histogram.
    pub histogram: Histogram,
    /// Whether the node is a final partition (leaf).
    pub is_leaf: bool,
    /// The attribute the node was split on, if any.
    pub split_attribute: Option<String>,
    /// Aggregated EMD between this node and its siblings under the panel's
    /// criterion — the quantity Algorithm 1's split test compares
    /// (`None` for the root, which has no siblings).
    pub divergence_vs_siblings: Option<f64>,
}

/// One exploration panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel id within the session (stable; shown as `#id`).
    pub id: usize,
    /// The configuration that produced this panel.
    pub config: Configuration,
    /// The resolved ranking space (after filtering).
    pub space: RankingSpace,
    /// The quantification outcome.
    pub outcome: QuantifyOutcome,
    /// Whether the outcome was served from the content-addressed cell
    /// cache (bitwise-identical to a fresh compute, but not recomputed).
    pub from_cache: bool,
}

impl Panel {
    /// The criterion this panel ran under.
    pub fn criterion(&self) -> &FairnessCriterion {
        &self.config.criterion
    }

    /// The *General* box.
    pub fn general_info(&self) -> GeneralInfo {
        GeneralInfo {
            unfairness: self.outcome.unfairness,
            num_partitions: self.outcome.partitions.len(),
            tree_nodes: self.outcome.tree.len(),
            max_depth: self.outcome.tree.max_depth(),
            individuals: self.space.num_individuals(),
            elapsed_us: self.outcome.elapsed.as_micros(),
            candidate_splits: self.outcome.stats.candidate_splits,
            histograms_built: self.outcome.stats.histograms_built,
            emd_calls: self.outcome.stats.emd_calls,
            emd_cache_hits: self.outcome.stats.emd_cache_hits,
            pairwise_batches: self.outcome.stats.pairwise_batches,
            delta_reused_histograms: self.outcome.stats.delta_reused_histograms,
            delta_invalidated_emds: self.outcome.stats.delta_invalidated_emds,
            from_cache: self.from_cache,
        }
    }

    /// The *Node* box for tree node `node`.
    pub fn node_stats(&self, node: usize) -> Result<NodeStats> {
        if node >= self.outcome.tree.len() {
            return Err(SessionError::UnknownNode {
                panel: self.id,
                node,
            });
        }
        let tree_node = self.outcome.tree.node(node);
        let partition = &tree_node.partition;
        let scores = self.space.scores();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for s in partition.scores(scores) {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        let mean = if partition.is_empty() {
            0.0
        } else {
            sum / partition.len() as f64
        };
        let histogram = self.config.criterion.histogram(partition, scores);
        let divergence_vs_siblings = tree_node.parent.map(|parent| {
            let siblings: Vec<_> = self
                .outcome
                .tree
                .node(parent)
                .children
                .iter()
                .filter(|&&c| c != node)
                .map(|&c| self.outcome.tree.node(c).partition.clone())
                .collect();
            self.config
                .criterion
                .versus(partition, &siblings, scores)
                .unwrap_or(0.0)
        });
        Ok(NodeStats {
            node,
            label: partition.label(&self.space),
            size: partition.len(),
            mean_score: mean,
            min_score: if partition.is_empty() { 0.0 } else { min },
            max_score: if partition.is_empty() { 0.0 } else { max },
            histogram,
            is_leaf: tree_node.children.is_empty(),
            split_attribute: tree_node
                .split_attr
                .and_then(|a| self.space.attribute(a))
                .map(|a| a.name.clone()),
            divergence_vs_siblings,
        })
    }

    /// Node stats for every leaf (final partition), in tree order.
    pub fn leaf_stats(&self) -> Vec<NodeStats> {
        self.outcome
            .tree
            .leaf_ids()
            .into_iter()
            .map(|id| self.node_stats(id).expect("leaf ids are valid"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::quantify::Quantify;
    use fairank_core::scoring::ScoreSource;
    use fairank_data::paper;

    fn panel() -> Panel {
        let ds = paper::table1_dataset();
        let source = ScoreSource::Function(paper::table1_scoring());
        let space = ds.to_space(&source).unwrap();
        let config = Configuration::new("table1", "paper-f");
        let outcome = Quantify::new(config.criterion).run_space(&space).unwrap();
        Panel {
            id: 1,
            config,
            space,
            outcome,
            from_cache: false,
        }
    }

    #[test]
    fn general_info_is_consistent() {
        let p = panel();
        let info = p.general_info();
        assert_eq!(info.individuals, 10);
        assert!(info.num_partitions >= 1);
        assert!(info.tree_nodes >= info.num_partitions);
        assert!(info.unfairness >= 0.0);
    }

    #[test]
    fn root_node_stats() {
        let p = panel();
        let stats = p.node_stats(0).unwrap();
        assert_eq!(stats.label, "ALL");
        assert_eq!(stats.size, 10);
        assert!(stats.mean_score > 0.0);
        assert!(stats.min_score <= stats.max_score);
        assert_eq!(stats.histogram.total(), 10);
        // Table 1's scores range from 0.195 to 0.971.
        assert!((stats.min_score - 0.195).abs() < 1e-9);
        assert!((stats.max_score - 0.971).abs() < 1e-9);
    }

    #[test]
    fn leaf_stats_cover_all_individuals() {
        let p = panel();
        let leaves = p.leaf_stats();
        let total: usize = leaves.iter().map(|l| l.size).sum();
        assert_eq!(total, 10);
        assert!(leaves.iter().all(|l| l.is_leaf));
    }

    #[test]
    fn unknown_node_errors() {
        let p = panel();
        assert!(matches!(
            p.node_stats(999).unwrap_err(),
            SessionError::UnknownNode { .. }
        ));
    }

    #[test]
    fn split_attribute_is_named() {
        let p = panel();
        let root = p.node_stats(0).unwrap();
        if !root.is_leaf {
            assert!(root.split_attribute.is_some());
        }
    }

    #[test]
    fn divergence_is_none_for_root_and_set_for_children() {
        let p = panel();
        assert!(p.node_stats(0).unwrap().divergence_vs_siblings.is_none());
        // Every non-root node has at least one sibling (splits produce ≥ 2
        // children), so divergence is defined and non-negative.
        for id in 1..p.outcome.tree.len() {
            let d = p.node_stats(id).unwrap().divergence_vs_siblings;
            let d = d.expect("non-root nodes have siblings");
            assert!(d >= 0.0);
        }
    }
}
