//! The typed request/response layer of the session API.
//!
//! Every command of the exploration language produces a [`Response`]: a
//! serde-serializable enum of structured payloads carrying the *data* a
//! result consists of, with no human formatting baked in. The REPL renders
//! responses through [`crate::present::render`]; services ship them over
//! the wire as JSON and let any client decide how to display them.
//!
//! The wire views ([`PanelView`], [`NodeView`], …) are self-contained: they
//! borrow nothing from the session, so a response outlives the session
//! state that produced it and deserializes on machines that never held the
//! datasets.

use serde::{Deserialize, Serialize};

use crate::panel::{NodeStats, Panel};
use crate::plan::ScenarioReport;
use crate::report::{AuditorReport, EndUserReport, JobOwnerReport};

/// One dataset line of a `datasets` listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// Registered name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub columns: usize,
}

/// One function line of a `funcs` listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionEntry {
    /// Registered name.
    pub name: String,
    /// `(attribute, weight)` terms in declaration order.
    pub terms: Vec<(String, f64)>,
}

/// One panel line of a `panels` listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelEntry {
    /// Panel id.
    pub id: usize,
    /// Quantified unfairness.
    pub unfairness: f64,
    /// One-line configuration description.
    pub config: String,
}

/// Wire form of one partitioning-tree node: [`NodeStats`] plus the tree
/// edges needed to re-render the tree without the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeView {
    /// Node id within the tree.
    pub node: usize,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// Child node ids, in split order.
    pub children: Vec<usize>,
    /// Human-readable partition label (conjunction of constraints).
    pub label: String,
    /// Number of individuals in the partition.
    pub size: usize,
    /// Mean score of the partition.
    pub mean_score: f64,
    /// Minimum score.
    pub min_score: f64,
    /// Maximum score.
    pub max_score: f64,
    /// Histogram bin counts under the panel's spec.
    pub histogram: Vec<u64>,
    /// Whether the node is a final partition (leaf).
    pub is_leaf: bool,
    /// The attribute the node was split on, if any.
    pub split_attribute: Option<String>,
    /// Aggregated EMD between this node and its siblings (`None` for the
    /// root).
    pub divergence_vs_siblings: Option<f64>,
}

impl NodeView {
    /// Builds the wire view from in-session node statistics plus edges.
    pub fn from_stats(stats: NodeStats, parent: Option<usize>, children: Vec<usize>) -> Self {
        NodeView {
            node: stats.node,
            parent,
            children,
            label: stats.label,
            size: stats.size,
            mean_score: stats.mean_score,
            min_score: stats.min_score,
            max_score: stats.max_score,
            histogram: stats.histogram.counts().to_vec(),
            is_leaf: stats.is_leaf,
            split_attribute: stats.split_attribute,
            divergence_vs_siblings: stats.divergence_vs_siblings,
        }
    }
}

/// Wire form of a whole panel: the *General* box numbers plus every tree
/// node ([`NodeView`]), root first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelView {
    /// Panel id within the session.
    pub id: usize,
    /// One-line configuration description.
    pub config: String,
    /// Unfairness of the final partitioning under the panel's criterion.
    pub unfairness: f64,
    /// Number of final partitions (tree leaves).
    pub num_partitions: usize,
    /// Total nodes in the partitioning tree.
    pub tree_nodes: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Individuals analyzed (after filtering).
    pub individuals: usize,
    /// Search wall-clock time in microseconds.
    pub elapsed_us: u64,
    /// Candidate (node, attribute) splits the search scored.
    pub candidate_splits: usize,
    /// Histograms the evaluation engine actually built.
    pub histograms_built: usize,
    /// EMD distances actually computed.
    pub emd_calls: usize,
    /// Distance lookups served from the engine's memo table.
    pub emd_cache_hits: usize,
    /// Pairwise/cross aggregations the batched EMD backend resolved as one
    /// batch (0 under the per-pair backends).
    pub pairwise_batches: usize,
    /// Histograms served from a previous generation's caches by an
    /// incremental (delta) re-quantification (0 for from-scratch panels).
    pub delta_reused_histograms: usize,
    /// Memoized EMD entries dropped by targeted invalidation ahead of the
    /// search (0 for from-scratch panels).
    pub delta_invalidated_emds: usize,
    /// Whether the panel's outcome was served from the cross-session cell
    /// cache (bitwise-identical to a fresh compute, nothing recomputed).
    pub from_cache: bool,
    /// Every tree node, root first.
    pub nodes: Vec<NodeView>,
}

impl PanelView {
    /// Builds the full wire view of a panel (general info + all nodes).
    pub fn from_panel(panel: &Panel) -> crate::error::Result<Self> {
        let mut view = Self::general_only(panel);
        view.nodes = node_views(panel)?;
        Ok(view)
    }

    /// The general-info part alone (no tree nodes) — enough for the
    /// *General* box and cheap to build.
    pub fn general_only(panel: &Panel) -> Self {
        let info = panel.general_info();
        PanelView {
            id: panel.id,
            config: panel.config.describe(),
            unfairness: info.unfairness,
            num_partitions: info.num_partitions,
            tree_nodes: info.tree_nodes,
            max_depth: info.max_depth,
            individuals: info.individuals,
            elapsed_us: u64::try_from(info.elapsed_us).unwrap_or(u64::MAX),
            candidate_splits: info.candidate_splits,
            histograms_built: info.histograms_built,
            emd_calls: info.emd_calls,
            emd_cache_hits: info.emd_cache_hits,
            pairwise_batches: info.pairwise_batches,
            delta_reused_histograms: info.delta_reused_histograms,
            delta_invalidated_emds: info.delta_invalidated_emds,
            from_cache: info.from_cache,
            nodes: Vec::new(),
        }
    }
}

/// Wire views of every node of a panel's tree, root first.
pub fn node_views(panel: &Panel) -> crate::error::Result<Vec<NodeView>> {
    let tree = &panel.outcome.tree;
    let mut nodes = Vec::with_capacity(tree.len());
    for id in 0..tree.len() {
        let stats = panel.node_stats(id)?;
        let tree_node = tree.node(id);
        nodes.push(NodeView::from_stats(
            stats,
            tree_node.parent,
            tree_node.children.clone(),
        ));
    }
    Ok(nodes)
}

/// Side-by-side comparison of two panels (the `compare` command).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareView {
    /// First panel id.
    pub a_id: usize,
    /// Second panel id.
    pub b_id: usize,
    /// First panel's configuration description.
    pub a_config: String,
    /// Second panel's configuration description.
    pub b_config: String,
    /// First panel's unfairness.
    pub a_unfairness: f64,
    /// Second panel's unfairness.
    pub b_unfairness: f64,
    /// `b_unfairness - a_unfairness`.
    pub delta: f64,
    /// First panel's partition count.
    pub a_partitions: usize,
    /// Second panel's partition count.
    pub b_partitions: usize,
    /// First panel's individual count.
    pub a_individuals: usize,
    /// Second panel's individual count.
    pub b_individuals: usize,
}

impl CompareView {
    /// Builds the comparison of two panels.
    pub fn new(a: &Panel, b: &Panel) -> Self {
        let ia = a.general_info();
        let ib = b.general_info();
        CompareView {
            a_id: a.id,
            b_id: b.id,
            a_config: a.config.describe(),
            b_config: b.config.describe(),
            a_unfairness: ia.unfairness,
            b_unfairness: ib.unfairness,
            delta: ib.unfairness - ia.unfairness,
            a_partitions: ia.num_partitions,
            b_partitions: ib.num_partitions,
            a_individuals: ia.individuals,
            b_individuals: ib.individuals,
        }
    }
}

/// One subgroup line of a `subgroups` result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubgroupEntry {
    /// Conjunctive label, e.g. `gender=Female ∧ city=Lyon`.
    pub label: String,
    /// Members.
    pub size: usize,
    /// Mean-score advantage over the rest of the population.
    pub advantage: f64,
    /// Histogram divergence from the rest of the population.
    pub divergence: f64,
}

/// The `subgroups` command result: extremes of the subgroup lattice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubgroupView {
    /// Dataset analyzed.
    pub dataset: String,
    /// Scoring function used.
    pub function: String,
    /// Conjunction-depth bound.
    pub depth: usize,
    /// Minimum subgroup size considered.
    pub min_size: usize,
    /// Total subgroups enumerated.
    pub total: usize,
    /// Most favored subgroups, best first.
    pub most_favored: Vec<SubgroupEntry>,
    /// Least favored subgroups, worst first.
    pub least_favored: Vec<SubgroupEntry>,
}

/// A streaming re-audit trajectory (the `stream` command): the marketplace
/// it ran against plus the per-round audits of
/// [`fairank_marketplace::stream::run_stream`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamView {
    /// Marketplace name.
    pub marketplace: String,
    /// The full per-round trajectory.
    pub outcome: fairank_marketplace::stream::StreamOutcome,
}

/// The head of a dataset (the `data` command): raw cells, rendered
/// client-side with the same alignment the REPL always used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataHeadView {
    /// Dataset name.
    pub name: String,
    /// Column names, in dataset order.
    pub columns: Vec<String>,
    /// Shown rows (each cell already value-rendered).
    pub rows: Vec<Vec<String>>,
    /// Total rows in the dataset (may exceed `rows.len()`).
    pub total_rows: usize,
}

/// The server registry's live state (the `sessions` admin reply): session
/// names plus dataset-store and cell-cache statistics, so an operator can
/// see how much sharing and memoization the fleet is getting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RegistryStatsView {
    /// Live session names, sorted.
    pub sessions: Vec<String>,
    /// Distinct datasets resident in the shared content-addressed store.
    pub store_datasets: u64,
    /// Approximate resident bytes across those datasets (each counted
    /// once, however many sessions share it).
    pub store_bytes: u64,
    /// Ready entries in the cross-session cell cache.
    pub cell_cache_entries: u64,
    /// Cell claims served from the cache since server start.
    pub cell_cache_hits: u64,
    /// Cell claims that computed (and published) since server start.
    pub cell_cache_misses: u64,
    /// Cache entries evicted by the LRU bound since server start.
    pub cell_cache_evictions: u64,
}

/// A structured session response — the typed result of [`crate::command::apply`].
///
/// Every variant is a machine-readable payload; [`crate::present::render`]
/// turns any of them into exactly the text the string-based `execute` API
/// printed before this layer existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The command reference (`help`).
    Help,
    /// The session should end (`quit`).
    Quit,
    /// Registered datasets (`datasets`).
    DatasetList(Vec<DatasetEntry>),
    /// Registered scoring functions (`funcs`).
    FunctionList(Vec<FunctionEntry>),
    /// Existing panels (`panels`).
    PanelList(Vec<PanelEntry>),
    /// A CSV dataset was loaded (`load`).
    DatasetLoaded {
        /// Registered name.
        name: String,
        /// Rows loaded.
        rows: usize,
        /// Source path.
        path: String,
    },
    /// A synthetic dataset was generated (`generate`).
    DatasetGenerated {
        /// Registered name.
        name: String,
        /// Generator preset.
        preset: String,
        /// Population size.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A scoring function was defined (`define`).
    FunctionDefined {
        /// Registered name.
        name: String,
        /// The expression as typed.
        expr: String,
    },
    /// The head of a dataset (`data`).
    DataHead(DataHeadView),
    /// Per-column summary statistics (`describe`). The table is produced by
    /// the dataset substrate; the wire carries it as rendered text.
    Description {
        /// Dataset name.
        name: String,
        /// The statistics table.
        text: String,
    },
    /// The session was persisted (`save`).
    SessionSaved {
        /// Target directory.
        dir: String,
        /// Datasets written.
        datasets: usize,
        /// Functions written.
        functions: usize,
    },
    /// A saved session replaced the current one (`open`).
    SessionOpened {
        /// Source directory.
        dir: String,
        /// Datasets restored.
        datasets: usize,
        /// Functions restored.
        functions: usize,
    },
    /// A filtered dataset was derived (`filter`).
    DatasetDerived {
        /// New dataset name.
        name: String,
        /// Source dataset.
        source: String,
        /// Filter expression.
        expr: String,
        /// Rows surviving the filter.
        rows: usize,
    },
    /// An anonymized dataset was derived (`anonymize`).
    DatasetAnonymized {
        /// New dataset name.
        name: String,
        /// Source dataset.
        source: String,
        /// Algorithm name (`Mondrian`, `Datafly`, `Incognito`).
        method: String,
        /// The k of k-anonymity.
        k: usize,
        /// Rows suppressed by the algorithm.
        suppressed: usize,
    },
    /// A quantification created a panel (`quantify`).
    PanelCreated(PanelView),
    /// A panel's general box and tree (`show`).
    PanelDetail(PanelView),
    /// One tree node's statistics (`node`).
    NodeDetail(NodeView),
    /// A search-decision explanation (`why`).
    Explanation {
        /// Panel id.
        panel: usize,
        /// Node id.
        node: usize,
        /// The rendered explanation.
        text: String,
    },
    /// Two panels side by side (`compare`).
    CompareReport(CompareView),
    /// A panel was exported to JSON (`export`).
    Exported {
        /// Panel id.
        panel: usize,
        /// Output path.
        path: String,
    },
    /// Subgroup lattice extremes (`subgroups`).
    Subgroups(SubgroupView),
    /// The §4 auditor scenario (`audit`).
    Audit(AuditorReport),
    /// The §4 job-owner scenario (`jobowner`).
    JobOwnerSweep(JobOwnerReport),
    /// The §4 end-user scenario (`enduser`).
    EndUserView(EndUserReport),
    /// A streaming incremental re-audit (`stream`).
    Stream(StreamView),
    /// A whole scenario plan ran (`scenario`): the reduced outcome plus
    /// per-cell engine counters and wall-clock stats.
    Scenario(ScenarioReport),
    /// The server's live sessions plus store/cache statistics
    /// (`sessions`, admin only).
    SessionList(RegistryStatsView),
    /// A session was evicted from the server registry (`evict`, admin
    /// only).
    SessionEvicted {
        /// The evicted session's name.
        name: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use fairank_core::quantify::Quantify;
    use fairank_core::scoring::ScoreSource;
    use fairank_data::paper;

    fn panel() -> Panel {
        let ds = paper::table1_dataset();
        let source = ScoreSource::Function(paper::table1_scoring());
        let space = ds.to_space(&source).unwrap();
        let config = Configuration::new("table1", "paper-f");
        let outcome = Quantify::new(config.criterion).run_space(&space).unwrap();
        Panel {
            id: 0,
            config,
            space,
            outcome,
            from_cache: false,
        }
    }

    fn round_trip(response: &Response) {
        let json = serde_json::to_string(response).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(response, &back, "round trip changed {json}");
    }

    #[test]
    fn panel_view_mirrors_general_info() {
        let p = panel();
        let view = PanelView::from_panel(&p).unwrap();
        let info = p.general_info();
        assert_eq!(view.id, 0);
        assert_eq!(view.unfairness, info.unfairness);
        assert_eq!(view.num_partitions, info.num_partitions);
        assert_eq!(view.tree_nodes, info.tree_nodes);
        assert_eq!(view.individuals, 10);
        assert_eq!(view.nodes.len(), p.outcome.tree.len());
        // Edges mirror the tree.
        assert_eq!(view.nodes[0].parent, None);
        for node in &view.nodes {
            for &c in &node.children {
                assert_eq!(view.nodes[c].parent, Some(node.node));
            }
        }
        // Leaf sizes cover the population.
        let leaf_total: usize = view
            .nodes
            .iter()
            .filter(|n| n.is_leaf)
            .map(|n| n.size)
            .sum();
        assert_eq!(leaf_total, 10);
    }

    #[test]
    fn compare_view_delta() {
        let p = panel();
        let view = CompareView::new(&p, &p);
        assert_eq!(view.delta, 0.0);
        assert_eq!(view.a_config, view.b_config);
    }

    // One serde round trip per Response variant — the wire contract of the
    // whole command language.

    #[test]
    fn round_trip_simple_variants() {
        round_trip(&Response::Help);
        round_trip(&Response::Quit);
        round_trip(&Response::DatasetLoaded {
            name: "d".into(),
            rows: 7,
            path: "x.csv".into(),
        });
        round_trip(&Response::DatasetGenerated {
            name: "pop".into(),
            preset: "biased".into(),
            n: 200,
            seed: 42,
        });
        round_trip(&Response::FunctionDefined {
            name: "f".into(),
            expr: "rating*1.0".into(),
        });
        round_trip(&Response::Description {
            name: "pop".into(),
            text: "3 rows × 2 columns\n".into(),
        });
        round_trip(&Response::SessionSaved {
            dir: "/tmp/s".into(),
            datasets: 1,
            functions: 2,
        });
        round_trip(&Response::SessionOpened {
            dir: "/tmp/s".into(),
            datasets: 1,
            functions: 2,
        });
        round_trip(&Response::DatasetDerived {
            name: "women".into(),
            source: "pop".into(),
            expr: "gender=Female".into(),
            rows: 48,
        });
        round_trip(&Response::DatasetAnonymized {
            name: "anon".into(),
            source: "pop".into(),
            method: "Mondrian".into(),
            k: 5,
            suppressed: 0,
        });
        round_trip(&Response::Explanation {
            panel: 0,
            node: 1,
            text: "SPLIT on gender".into(),
        });
        round_trip(&Response::Exported {
            panel: 3,
            path: "p.json".into(),
        });
    }

    #[test]
    fn round_trip_listing_variants() {
        round_trip(&Response::DatasetList(vec![DatasetEntry {
            name: "pop".into(),
            rows: 100,
            columns: 5,
        }]));
        round_trip(&Response::DatasetList(Vec::new()));
        round_trip(&Response::FunctionList(vec![FunctionEntry {
            name: "f".into(),
            terms: vec![("rating".into(), 0.7), ("language_test".into(), 0.3)],
        }]));
        round_trip(&Response::PanelList(vec![PanelEntry {
            id: 0,
            unfairness: 0.25,
            config: "pop | f".into(),
        }]));
        round_trip(&Response::DataHead(DataHeadView {
            name: "pop".into(),
            columns: vec!["gender".into(), "rating".into()],
            rows: vec![vec!["F".into(), "0.2".into()]],
            total_rows: 100,
        }));
    }

    #[test]
    fn round_trip_panel_variants() {
        let p = panel();
        let view = PanelView::from_panel(&p).unwrap();
        round_trip(&Response::PanelCreated(view.clone()));
        round_trip(&Response::PanelDetail(view.clone()));
        round_trip(&Response::NodeDetail(view.nodes[0].clone()));
        round_trip(&Response::CompareReport(CompareView::new(&p, &p)));
    }

    #[test]
    fn round_trip_subgroups_variant() {
        round_trip(&Response::Subgroups(SubgroupView {
            dataset: "pop".into(),
            function: "f".into(),
            depth: 2,
            min_size: 5,
            total: 17,
            most_favored: vec![SubgroupEntry {
                label: "gender=Male".into(),
                size: 52,
                advantage: 0.12,
                divergence: 0.3,
            }],
            least_favored: vec![SubgroupEntry {
                label: "gender=Female".into(),
                size: 48,
                advantage: -0.12,
                divergence: 0.3,
            }],
        }));
    }

    #[test]
    fn round_trip_registry_admin_variants() {
        round_trip(&Response::SessionList(RegistryStatsView {
            sessions: vec!["a".into(), "b".into()],
            store_datasets: 3,
            store_bytes: 123_456,
            cell_cache_entries: 17,
            cell_cache_hits: 40,
            cell_cache_misses: 17,
            cell_cache_evictions: 2,
        }));
        round_trip(&Response::SessionList(RegistryStatsView::default()));
        round_trip(&Response::SessionEvicted { name: "a".into() });
    }

    #[test]
    fn round_trip_scenario_variant() {
        use crate::plan::{compile, Perspective, ScenarioSpec};

        let mut session = crate::session::Session::new();
        session
            .add_dataset("table1", fairank_data::paper::table1_dataset())
            .unwrap();
        session
            .add_function("paper-f", fairank_data::paper::table1_scoring())
            .unwrap();
        let spec = ScenarioSpec::new(Perspective::Grid {
            datasets: vec!["table1".into()],
            functions: vec!["paper-f".into()],
            filter: None,
        });
        let report = compile(&session, &spec)
            .unwrap()
            .run(&mut session)
            .unwrap();
        round_trip(&Response::Scenario(report));
    }

    #[test]
    fn round_trip_report_variants() {
        use fairank_core::fairness::FairnessCriterion;
        use fairank_data::filter::Filter;
        use fairank_marketplace::scenario::taskrabbit_like;
        use fairank_marketplace::Transparency;

        let market = taskrabbit_like(120, 7).unwrap();
        let audit = crate::report::auditor_report(
            &market,
            &Transparency::full(),
            &FairnessCriterion::default(),
            1,
            10,
        )
        .unwrap();
        round_trip(&Response::Audit(audit));

        let base = market.job("wood-panels").unwrap().scoring.clone();
        let sweep = crate::report::job_owner_sweep(
            market.workers(),
            &base,
            "rating",
            &[0.0, 0.5, 1.0],
            &FairnessCriterion::default(),
        )
        .unwrap();
        round_trip(&Response::JobOwnerSweep(sweep));

        let end_user = crate::report::end_user_report(
            &market,
            &Filter::all().eq("gender", "Female"),
            &FairnessCriterion::default(),
        )
        .unwrap();
        round_trip(&Response::EndUserView(end_user));
    }

    #[test]
    fn round_trip_stream_variant() {
        use fairank_core::fairness::FairnessCriterion;
        use fairank_marketplace::scenario::taskrabbit_like;
        use fairank_marketplace::stream::{run_stream, StreamConfig};
        use fairank_marketplace::Transparency;

        let market = taskrabbit_like(50, 11).unwrap();
        let outcome = run_stream(
            &market,
            "errands",
            &Transparency::full(),
            &FairnessCriterion::default(),
            StreamConfig {
                rounds: 2,
                arrivals_per_round: 1,
                departures_per_round: 1,
                rescores_per_round: 2,
                seed: Some(3),
            },
        )
        .unwrap();
        round_trip(&Response::Stream(StreamView {
            marketplace: market.name.clone(),
            outcome,
        }));
    }
}
