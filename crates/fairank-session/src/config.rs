//! The Configuration box (Figure 3, left): dataset, scoring, filter,
//! fairness criterion.

use fairank_core::fairness::FairnessCriterion;
use fairank_core::scoring::ScoreSource;
use fairank_data::filter::Filter;
use serde::{Deserialize, Serialize};

/// How a configuration obtains scores — by a named session function, an
/// inline source, or ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScoringChoice {
    /// A scoring function registered in the session under this name.
    Named(String),
    /// An inline score source (function, raw scores or ranking).
    Inline(ScoreSource),
}

/// A complete exploration configuration. Panels are produced by running a
/// configuration against the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    /// Name of the dataset registered in the session.
    pub dataset: String,
    /// Score source choice.
    pub scoring: ScoringChoice,
    /// Protected-attribute filter applied before quantification.
    pub filter: Filter,
    /// The fairness criterion to optimize.
    pub criterion: FairnessCriterion,
}

impl Configuration {
    /// A configuration over `dataset` using a named function and defaults
    /// everywhere else.
    pub fn new(dataset: impl Into<String>, function: impl Into<String>) -> Self {
        Configuration {
            dataset: dataset.into(),
            scoring: ScoringChoice::Named(function.into()),
            filter: Filter::all(),
            criterion: FairnessCriterion::default(),
        }
    }

    /// Replaces the criterion.
    pub fn with_criterion(mut self, criterion: FairnessCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Replaces the filter.
    pub fn with_filter(mut self, filter: Filter) -> Self {
        self.filter = filter;
        self
    }

    /// Uses an inline score source instead of a named function.
    pub fn with_source(mut self, source: ScoreSource) -> Self {
        self.scoring = ScoringChoice::Inline(source);
        self
    }

    /// One-line description shown in panel headers.
    pub fn describe(&self) -> String {
        let scoring = match &self.scoring {
            ScoringChoice::Named(n) => n.clone(),
            ScoringChoice::Inline(ScoreSource::Function(f)) => {
                let terms: Vec<String> = f
                    .terms()
                    .iter()
                    .map(|(n, w)| format!("{w}·{n}"))
                    .collect();
                terms.join(" + ")
            }
            ScoringChoice::Inline(ScoreSource::Scores(_)) => "<provided scores>".into(),
            ScoringChoice::Inline(ScoreSource::Ranking(_)) => "<ranking only>".into(),
        };
        format!(
            "{} | f: {} | filter: {} | {} {} ({} bins)",
            self.dataset,
            scoring,
            self.filter.render(),
            self.criterion.objective.name(),
            self.criterion.aggregator.name(),
            self.criterion.hist.bins(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::fairness::{Aggregator, Objective};
    use fairank_core::scoring::LinearScoring;

    #[test]
    fn describe_named() {
        let c = Configuration::new("table1", "paper-f");
        let d = c.describe();
        assert!(d.contains("table1"));
        assert!(d.contains("paper-f"));
        assert!(d.contains("most-unfair mean"));
        assert!(d.contains("10 bins"));
        assert!(d.contains("filter: *"));
    }

    #[test]
    fn describe_inline_function() {
        let f = LinearScoring::builder()
            .weight("rating", 0.7)
            .weight("language_test", 0.3)
            .build_unchecked()
            .unwrap();
        let c = Configuration::new("d", "x").with_source(ScoreSource::Function(f));
        let d = c.describe();
        assert!(d.contains("0.7·rating"));
        assert!(d.contains("0.3·language_test"));
    }

    #[test]
    fn describe_ranking_and_scores() {
        let c = Configuration::new("d", "x").with_source(ScoreSource::Ranking(vec![]));
        assert!(c.describe().contains("<ranking only>"));
        let c = Configuration::new("d", "x").with_source(ScoreSource::Scores(vec![]));
        assert!(c.describe().contains("<provided scores>"));
    }

    #[test]
    fn builders_compose() {
        let c = Configuration::new("d", "f")
            .with_criterion(FairnessCriterion::new(
                Objective::LeastUnfair,
                Aggregator::Max,
            ))
            .with_filter(Filter::all().eq("gender", "F"));
        assert!(c.describe().contains("least-unfair max"));
        assert!(c.describe().contains("gender=F"));
    }

    #[test]
    fn serde_round_trip() {
        let c = Configuration::new("d", "f");
        let json = serde_json::to_string(&c).unwrap();
        let back: Configuration = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
