//! Declarative scenario plans: grids, sweeps and perspective reports
//! compiled into independent cell jobs plus a deterministic reduce.
//!
//! The four analysis entry points of the session layer — `quantify_grid`,
//! `auditor_report`, `job_owner_sweep` and `end_user_report` — used to
//! hand-roll their own loops and run them serially. This module replaces
//! the loops with one substrate:
//!
//! 1. A serde-serializable [`ScenarioSpec`] *says* what the workload is:
//!    a [`Perspective`] (raw grid / auditor / job owner / end user), a
//!    [`SearchStrategy`] and a [`CriterionGrid`] of fairness criteria.
//! 2. [`compile`] turns a spec into a [`Plan`]: an explicit list of
//!    independent [`Cell`] jobs (every input resolved and validated up
//!    front, each cell self-contained and `Send`) plus a deterministic
//!    reduce step.
//! 3. The plan runs through any executor — [`Plan::run`] (sequential),
//!    [`Plan::run_parallel`] (one scoped thread per cell), or
//!    [`Plan::run_with`] (caller-provided, e.g. the `fairank-service`
//!    worker pool) — and reduces to a serializable [`ScenarioReport`]
//!    carrying per-cell engine counters and wall-clock stats.
//!
//! Cell execution is deterministic (a cell's result depends only on its
//! compiled inputs), so every executor produces bit-identical reports;
//! the legacy entry points are thin builders over this layer and render
//! byte-identically to their pre-plan implementations.

use std::sync::Arc;
use std::time::Instant;

use fairank_core::cancel::RunBudget;
use fairank_core::emd::{Emd, EmdBackendKind};
use fairank_core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank_core::histogram::HistogramSpec;
use fairank_core::plan::{CellKey, CellOutcome, SearchStrategy};
use fairank_core::scoring::{LinearScoring, ScoreSource};
use fairank_core::space::RankingSpace;
use fairank_core::subgroup::{least_favored, most_favored, subgroup_stats};
use fairank_core::quantify::Quantify;
use fairank_data::dataset::Dataset;
use fairank_data::filter::Filter;
use fairank_marketplace::stream::{StreamConfig, StreamOutcome, StreamScenario};
use fairank_marketplace::{Marketplace, Transparency};
use serde::{Deserialize, Serialize};

use crate::cellcache::{CachedCell, CellCache, Claim};
use crate::config::{Configuration, ScoringChoice};
use crate::error::{Result, SessionError};
use crate::report::{
    rebalanced_variant, AuditorJobRow, AuditorReport, EndUserJobRow, EndUserReport,
    JobOwnerReport, VariantRow,
};
use crate::session::Session;

// ------------------------------------------------------------------- spec

/// A canned marketplace to analyze (the scenario presets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketSpec {
    /// Preset name (`taskrabbit` or `qapa`).
    pub preset: String,
    /// Population size.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
}

impl MarketSpec {
    /// Builds the marketplace this spec describes.
    pub fn build(&self) -> Result<Marketplace> {
        crate::command::marketplace(&self.preset, self.n, self.seed)
    }
}

/// Whose question the scenario answers — this decides what the cells
/// compute and how the reduce step assembles them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Perspective {
    /// Raw quantification grid over session datasets × functions ×
    /// criteria; with the `quantify` strategy each cell also commits a
    /// session panel (the batched form of `quantify`).
    Grid {
        /// Session dataset names.
        datasets: Vec<String>,
        /// Session scoring-function names.
        functions: Vec<String>,
        /// Optional filter expression applied before quantification.
        filter: Option<String>,
    },
    /// The §4 auditor: quantify every job of a marketplace and identify
    /// most/least favored subgroups. One cell per job × criterion.
    Auditor {
        /// The marketplace to audit.
        market: MarketSpec,
        /// Anonymize worker data to `k`-anonymity before auditing.
        k: Option<usize>,
        /// Observe rankings only (function opacity).
        ranking_only: bool,
        /// Subgroup conjunction-depth bound.
        subgroup_depth: usize,
        /// Minimum subgroup size considered.
        min_subgroup: usize,
    },
    /// The §4 job owner: sweep one skill's weight across variants. One
    /// cell per weight × criterion.
    JobOwner {
        /// The marketplace the job lives in.
        market: MarketSpec,
        /// Job id whose scoring is swept.
        job: String,
        /// The skill (attribute) to sweep.
        skill: String,
        /// Weights to try, in sweep order.
        weights: Vec<f64>,
    },
    /// The §4 end user: evaluate how every job treats given groups. One
    /// cell per group × job.
    EndUser {
        /// The marketplace to evaluate.
        market: MarketSpec,
        /// Group filter expressions (e.g. `gender=Female`).
        groups: Vec<String>,
    },
    /// A streaming incremental re-audit: replay arrival/departure/feedback
    /// event rounds against one job and re-quantify after each via the
    /// delta engine. One cell per criterion.
    Stream {
        /// The marketplace the stream runs against.
        market: MarketSpec,
        /// Job id to monitor.
        job: String,
        /// Anonymize worker data to `k`-anonymity before observing.
        k: Option<usize>,
        /// Observe rankings only (function opacity).
        ranking_only: bool,
        /// Event-stream parameters (rounds, churn rates, seed).
        config: StreamConfig,
    },
}

impl Perspective {
    /// Short perspective name (`grid` / `auditor` / `job-owner` /
    /// `end-user`).
    pub fn name(&self) -> &'static str {
        match self {
            Perspective::Grid { .. } => "grid",
            Perspective::Auditor { .. } => "auditor",
            Perspective::JobOwner { .. } => "job-owner",
            Perspective::EndUser { .. } => "end-user",
            Perspective::Stream { .. } => "stream",
        }
    }
}

/// The cartesian grid of fairness criteria a scenario evaluates: every
/// objective × aggregator × bin count × EMD backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriterionGrid {
    /// Objectives to evaluate.
    pub objectives: Vec<Objective>,
    /// Pairwise-distance aggregators to evaluate.
    pub aggregators: Vec<Aggregator>,
    /// Histogram bin counts to evaluate.
    pub bins: Vec<usize>,
    /// EMD backends to evaluate.
    pub emds: Vec<EmdBackendKind>,
}

impl Default for CriterionGrid {
    fn default() -> Self {
        CriterionGrid {
            objectives: vec![Objective::default()],
            aggregators: vec![Aggregator::default()],
            bins: vec![10],
            emds: vec![EmdBackendKind::default()],
        }
    }
}

impl CriterionGrid {
    /// Number of criteria in the grid (product of the axis sizes).
    pub fn cardinality(&self) -> usize {
        self.objectives.len() * self.aggregators.len() * self.bins.len() * self.emds.len()
    }

    /// Materializes the grid as `(label, criterion)` pairs in
    /// objective-major order. Every axis must be non-empty.
    pub fn criteria(&self) -> Result<Vec<(String, FairnessCriterion)>> {
        if self.cardinality() == 0 {
            return Err(SessionError::Command(
                "criterion grid has an empty axis (objectives, aggregators, bins \
                 and emds must each name at least one value)"
                    .into(),
            ));
        }
        let mut out = Vec::with_capacity(self.cardinality());
        for &objective in &self.objectives {
            for &aggregator in &self.aggregators {
                for &bins in &self.bins {
                    for &backend in &self.emds {
                        let criterion = FairnessCriterion::new(objective, aggregator)
                            .with_hist(HistogramSpec::unit(bins)?)
                            .with_emd(Emd::new(backend));
                        out.push((
                            format!(
                                "{} {} ({} bins, {} emd)",
                                objective.name(),
                                aggregator.name(),
                                bins,
                                backend.name()
                            ),
                            criterion,
                        ));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// A whole scenario as data: what to analyze (perspective), how to search
/// (strategy) and under which criteria (grid). One spec compiles into one
/// [`Plan`] and runs as one command/wire request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// What the cells compute and how results reduce.
    pub perspective: Perspective,
    /// Search strategy; `None` means the default `QUANTIFY` search.
    pub strategy: Option<SearchStrategy>,
    /// Criterion grid; `None` means the single default criterion.
    pub criteria: Option<CriterionGrid>,
}

impl ScenarioSpec {
    /// A spec over `perspective` with the default strategy and criteria.
    pub fn new(perspective: Perspective) -> Self {
        ScenarioSpec {
            perspective,
            strategy: None,
            criteria: None,
        }
    }

    /// The effective search strategy.
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy.unwrap_or_default()
    }

    /// The effective criterion grid.
    pub fn criterion_grid(&self) -> CriterionGrid {
        self.criteria.clone().unwrap_or_default()
    }
}

// ------------------------------------------------------------------ cells

/// One independent unit of plan work. Cells own every input they need
/// (resolved at compile time), so they can execute on any thread in any
/// order; results are deterministic functions of the compiled inputs.
#[derive(Debug)]
pub struct Cell {
    index: usize,
    label: String,
    work: CellWork,
    /// Cancellation scope the cell's search polls. Compiled as unlimited;
    /// [`Plan::with_run_budget`] (or a session-backed run) stamps the
    /// request's deadline and cancel tokens.
    budget: RunBudget,
    /// Content-addressed identity for memoization, when the cell's inputs
    /// have one (grid panel cells over stored datasets). `None` for cells
    /// over mutable or derived inputs — those always execute.
    cache_key: Option<CellKey>,
}

#[derive(Debug)]
enum CellWork {
    /// A grid cell: run the strategy on a prepared configuration. With the
    /// `quantify` strategy the outcome can be committed as a session panel.
    Panel {
        config: Configuration,
        space: RankingSpace,
        strategy: SearchStrategy,
    },
    /// An auditor cell: quantify one job's observed ranking and find its
    /// extremal subgroups.
    AuditJob {
        criterion_idx: usize,
        job_id: String,
        title: String,
        space: RankingSpace,
        criterion: FairnessCriterion,
        strategy: SearchStrategy,
        subgroup_depth: usize,
        min_subgroup: usize,
    },
    /// A job-owner cell: quantify one scoring-function variant.
    SweepVariant {
        criterion_idx: usize,
        label: String,
        weights: Vec<(String, f64)>,
        space: RankingSpace,
        criterion: FairnessCriterion,
        strategy: SearchStrategy,
    },
    /// An end-user cell: closed-form group statistics for one job.
    EndUserJob {
        group_idx: usize,
        job_id: String,
        title: String,
        scores: Vec<f64>,
        ranking: Vec<u32>,
        member: Vec<bool>,
        group_size: usize,
    },
    /// A stream cell: one full streaming re-audit of a job under one
    /// criterion (the event trajectory is seed-deterministic, so every
    /// criterion's cell replays the identical churn).
    Stream {
        criterion_idx: usize,
        job_id: String,
        market: Marketplace,
        transparency: Transparency,
        search: Quantify,
        config: StreamConfig,
    },
}

/// Per-cell engine counters and wall-clock, surfaced in the report.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStat {
    /// Cell label (what the cell computed).
    pub label: String,
    /// Cell wall-clock time in microseconds.
    pub elapsed_us: u64,
    /// Nodes/states/partitionings the search evaluated.
    pub nodes_evaluated: usize,
    /// Candidate (node, attribute) splits scored.
    pub candidate_splits: usize,
    /// Histograms the engine actually built.
    pub histograms_built: usize,
    /// EMD distances actually computed.
    pub emd_calls: usize,
    /// Distance lookups served from the engine memo.
    pub emd_cache_hits: usize,
    /// Pairwise/cross aggregations the batched EMD backend resolved as one
    /// batch (0 under the per-pair backends).
    pub pairwise_batches: usize,
    /// Histograms served from previous-generation caches by incremental
    /// (delta) re-quantification (0 for from-scratch cells).
    pub delta_reused_histograms: usize,
    /// Memoized EMD entries dropped by targeted invalidation (0 for
    /// from-scratch cells).
    pub delta_invalidated_emds: usize,
    /// 1 when this cell was served from the cross-session cell cache
    /// (bitwise-identical to a fresh compute, nothing recomputed).
    pub cache_hits: usize,
    /// 1 when this cell was computed and published to the cell cache.
    /// Uncacheable cells report 0 on both counters.
    pub cache_misses: usize,
    /// Unfairness the cell measured (`None` for cells that do not quantify,
    /// e.g. end-user statistics).
    pub unfairness: Option<f64>,
}

/// The result of one executed cell: its stat line plus the payload the
/// reduce step assembles.
#[derive(Debug)]
pub struct CellResult {
    index: usize,
    stat: CellStat,
    payload: CellPayload,
}

#[derive(Debug)]
enum CellPayload {
    Panel {
        // Boxed: a panel payload (configuration + resolved space + full
        // outcome) dwarfs the row payloads of the other perspectives.
        config: Box<Configuration>,
        space: Box<RankingSpace>,
        outcome: Box<CellOutcome>,
    },
    AuditRow {
        criterion_idx: usize,
        row: AuditorJobRow,
    },
    Variant {
        criterion_idx: usize,
        row: VariantRow,
    },
    EndUserRow {
        group_idx: usize,
        row: EndUserJobRow,
    },
    Stream {
        criterion_idx: usize,
        outcome: StreamOutcome,
    },
}

impl CellResult {
    /// The executed cell's per-cell statistics — what streaming replies
    /// emit as a `{"chunk": ..}` line the moment the cell finishes,
    /// before the plan's reduce assembles the final report.
    pub fn stat(&self) -> &CellStat {
        &self.stat
    }
}

fn elapsed_us(elapsed: std::time::Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

impl Cell {
    /// The cell's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Position of the cell within its plan.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Executes the cell, consulting the cross-session cell cache first.
    /// A hit serves the memoized outcome (bitwise-identical to a fresh
    /// compute, by cell determinism) without running the search; a miss
    /// computes under single-flight (concurrent claimants of the same key
    /// wait for this compute instead of duplicating it) and publishes the
    /// result. Cells without a content identity — and all cells when the
    /// cache is disabled — just execute.
    pub fn execute_cached(self, cache: &CellCache) -> Result<CellResult> {
        let Some(key) = self.cache_key else {
            return self.execute();
        };
        let started = Instant::now();
        match cache.claim(key) {
            Claim::Bypass => self.execute(),
            Claim::Hit(cached) => {
                let Cell {
                    index, label, work, ..
                } = self;
                let CellWork::Panel { config, space, .. } = work else {
                    return Err(SessionError::Internal(
                        "a cache key was derived for a non-panel cell".into(),
                    ));
                };
                // The cell's own compiled config and space are
                // content-identical to the original compute's (the key
                // covers every input they derive from), so only the
                // outcome comes from the cache.
                let mut stat = cached.stat.clone();
                stat.label = label;
                stat.elapsed_us = elapsed_us(started.elapsed());
                stat.cache_hits = 1;
                stat.cache_misses = 0;
                Ok(CellResult {
                    index,
                    stat,
                    payload: CellPayload::Panel {
                        config: Box::new(config),
                        space: Box::new(space),
                        outcome: Box::new(cached.outcome.clone()),
                    },
                })
            }
            Claim::Miss(guard) => {
                // An Err drops the guard uncompleted, aborting the flight
                // so waiters retry — a failed compute never wedges a key.
                let mut result = self.execute()?;
                if let CellPayload::Panel { outcome, .. } = &result.payload {
                    let mut stat = result.stat.clone();
                    stat.cache_hits = 0;
                    stat.cache_misses = 0;
                    guard.complete(Arc::new(CachedCell {
                        outcome: (**outcome).clone(),
                        stat,
                    }));
                }
                result.stat.cache_misses = 1;
                Ok(result)
            }
        }
    }

    /// Executes the cell. Self-contained and deterministic: the result
    /// depends only on the compiled inputs, never on execution order.
    pub fn execute(self) -> Result<CellResult> {
        let Cell {
            index,
            label,
            work,
            budget,
            cache_key: _,
        } = self;
        match work {
            CellWork::Panel {
                config,
                space,
                strategy,
            } => {
                let outcome = strategy.run_budgeted(config.criterion, &space, &budget)?;
                Ok(CellResult {
                    index,
                    stat: CellStat {
                        label,
                        elapsed_us: elapsed_us(outcome.elapsed),
                        nodes_evaluated: outcome.stats.nodes_evaluated,
                        candidate_splits: outcome.stats.candidate_splits,
                        histograms_built: outcome.stats.histograms_built,
                        emd_calls: outcome.stats.emd_calls,
                        emd_cache_hits: outcome.stats.emd_cache_hits,
                        pairwise_batches: outcome.stats.pairwise_batches,
                        delta_reused_histograms: outcome.stats.delta_reused_histograms,
                        delta_invalidated_emds: outcome.stats.delta_invalidated_emds,
                        cache_hits: 0,
                        cache_misses: 0,
                        unfairness: Some(outcome.unfairness),
                    },
                    payload: CellPayload::Panel {
                        config: Box::new(config),
                        space: Box::new(space),
                        outcome: Box::new(outcome),
                    },
                })
            }
            CellWork::AuditJob {
                criterion_idx,
                job_id,
                title,
                space,
                criterion,
                strategy,
                subgroup_depth,
                min_subgroup,
            } => {
                let outcome = strategy.run_budgeted(criterion, &space, &budget)?;
                let stats = subgroup_stats(&space, &criterion, subgroup_depth, min_subgroup)?;
                let most = most_favored(&stats, 1);
                let least = least_favored(&stats, 1);
                let row = AuditorJobRow {
                    job_id,
                    title,
                    unfairness: outcome.unfairness,
                    partitions: outcome.num_partitions,
                    most_favored: most.first().map(|s| s.label.clone()),
                    most_favored_advantage: most.first().map_or(0.0, |s| s.advantage),
                    least_favored: least.first().map(|s| s.label.clone()),
                    least_favored_advantage: least.first().map_or(0.0, |s| s.advantage),
                };
                Ok(CellResult {
                    index,
                    stat: CellStat {
                        label,
                        elapsed_us: elapsed_us(outcome.elapsed),
                        nodes_evaluated: outcome.stats.nodes_evaluated,
                        candidate_splits: outcome.stats.candidate_splits,
                        histograms_built: outcome.stats.histograms_built,
                        emd_calls: outcome.stats.emd_calls,
                        emd_cache_hits: outcome.stats.emd_cache_hits,
                        pairwise_batches: outcome.stats.pairwise_batches,
                        delta_reused_histograms: outcome.stats.delta_reused_histograms,
                        delta_invalidated_emds: outcome.stats.delta_invalidated_emds,
                        cache_hits: 0,
                        cache_misses: 0,
                        unfairness: Some(outcome.unfairness),
                    },
                    payload: CellPayload::AuditRow { criterion_idx, row },
                })
            }
            CellWork::SweepVariant {
                criterion_idx,
                label: variant_label,
                weights,
                space,
                criterion,
                strategy,
            } => {
                let outcome = strategy.run_budgeted(criterion, &space, &budget)?;
                let row = VariantRow {
                    label: variant_label,
                    weights,
                    unfairness: outcome.unfairness,
                    partitions: outcome.num_partitions,
                };
                Ok(CellResult {
                    index,
                    stat: CellStat {
                        label,
                        elapsed_us: elapsed_us(outcome.elapsed),
                        nodes_evaluated: outcome.stats.nodes_evaluated,
                        candidate_splits: outcome.stats.candidate_splits,
                        histograms_built: outcome.stats.histograms_built,
                        emd_calls: outcome.stats.emd_calls,
                        emd_cache_hits: outcome.stats.emd_cache_hits,
                        pairwise_batches: outcome.stats.pairwise_batches,
                        delta_reused_histograms: outcome.stats.delta_reused_histograms,
                        delta_invalidated_emds: outcome.stats.delta_invalidated_emds,
                        cache_hits: 0,
                        cache_misses: 0,
                        unfairness: Some(outcome.unfairness),
                    },
                    payload: CellPayload::Variant { criterion_idx, row },
                })
            }
            CellWork::EndUserJob {
                group_idx,
                job_id,
                title,
                scores,
                ranking,
                member,
                group_size,
            } => {
                let start = Instant::now();
                let n = member.len();
                let mut rank_of = vec![0usize; n];
                for (rank, &row) in ranking.iter().enumerate() {
                    rank_of[row as usize] = rank;
                }
                let denom = (n.max(2) - 1) as f64;
                let (mut pct_sum, mut g_sum, mut o_sum, mut o_count) =
                    (0.0, 0.0, 0.0, 0usize);
                for row in 0..n {
                    if member[row] {
                        pct_sum += 1.0 - rank_of[row] as f64 / denom;
                        g_sum += scores[row];
                    } else {
                        o_sum += scores[row];
                        o_count += 1;
                    }
                }
                let row = EndUserJobRow {
                    job_id,
                    title,
                    group_mean_percentile: if group_size == 0 {
                        0.0
                    } else {
                        pct_sum / group_size as f64
                    },
                    group_mean_score: if group_size == 0 {
                        0.0
                    } else {
                        g_sum / group_size as f64
                    },
                    others_mean_score: if o_count == 0 {
                        0.0
                    } else {
                        o_sum / o_count as f64
                    },
                    group_size,
                };
                Ok(CellResult {
                    index,
                    stat: CellStat {
                        label,
                        elapsed_us: elapsed_us(start.elapsed()),
                        nodes_evaluated: 0,
                        candidate_splits: 0,
                        histograms_built: 0,
                        emd_calls: 0,
                        emd_cache_hits: 0,
                        pairwise_batches: 0,
                        delta_reused_histograms: 0,
                        delta_invalidated_emds: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        unfairness: None,
                    },
                    payload: CellPayload::EndUserRow { group_idx, row },
                })
            }
            CellWork::Stream {
                criterion_idx,
                job_id,
                market,
                transparency,
                search,
                config,
            } => {
                let start = Instant::now();
                let mut scenario =
                    StreamScenario::with_search(&market, &job_id, &transparency, search, config)?;
                scenario.set_run_budget(budget);
                let outcome = scenario.run()?;
                // A stream cell is a whole trajectory: sum the per-round
                // engine counters; unfairness is the final round's reading.
                let emd_calls = outcome.rounds.iter().map(|r| r.emd_calls).sum();
                let histograms_built =
                    outcome.rounds.iter().map(|r| r.histograms_rebuilt).sum();
                let reused = outcome
                    .rounds
                    .iter()
                    .map(|r| r.delta_reused_histograms)
                    .sum();
                let invalidated = outcome
                    .rounds
                    .iter()
                    .map(|r| r.delta_invalidated_emds)
                    .sum();
                let unfairness = outcome.rounds.last().map(|r| r.unfairness);
                Ok(CellResult {
                    index,
                    stat: CellStat {
                        label,
                        elapsed_us: elapsed_us(start.elapsed()),
                        nodes_evaluated: 0,
                        candidate_splits: 0,
                        histograms_built,
                        emd_calls,
                        emd_cache_hits: 0,
                        pairwise_batches: 0,
                        delta_reused_histograms: reused,
                        delta_invalidated_emds: invalidated,
                        cache_hits: 0,
                        cache_misses: 0,
                        unfairness,
                    },
                    payload: CellPayload::Stream {
                        criterion_idx,
                        outcome,
                    },
                })
            }
        }
    }
}

// ----------------------------------------------------------------- report

/// One row of a grid-perspective scenario outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridRow {
    /// Configuration description (dataset | function | filter | criterion).
    pub config: String,
    /// Quantified unfairness.
    pub unfairness: f64,
    /// Partitions in the final partitioning.
    pub partitions: usize,
    /// Session panel id the cell committed (`quantify` strategy runs
    /// against a session only).
    pub panel: Option<usize>,
}

/// An auditor report for one criterion of the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditOutcome {
    /// Criterion label (empty when a single implicit criterion was used).
    pub criterion: String,
    /// The marketplace-wide audit under that criterion.
    pub report: AuditorReport,
}

/// A job-owner sweep for one criterion of the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOwnerOutcome {
    /// Criterion label (empty when a single implicit criterion was used).
    pub criterion: String,
    /// The sweep under that criterion.
    pub report: JobOwnerReport,
}

/// An end-user view for one group of the spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndUserOutcome {
    /// The group definition (rendered filter).
    pub group: String,
    /// The cross-job view for that group.
    pub report: EndUserReport,
}

/// A streaming re-audit trajectory for one criterion of the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamAuditOutcome {
    /// Criterion label (empty when a single implicit criterion was used).
    pub criterion: String,
    /// The per-round trajectory under that criterion.
    pub outcome: StreamOutcome,
}

/// The perspective-specific payload of a [`ScenarioReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioOutcome {
    /// Grid rows, in grid order.
    Grid(Vec<GridRow>),
    /// One audit per criterion.
    Audit(Vec<AuditOutcome>),
    /// One sweep per criterion.
    JobOwner(Vec<JobOwnerOutcome>),
    /// One view per group.
    EndUser(Vec<EndUserOutcome>),
    /// One streaming trajectory per criterion.
    Stream(Vec<StreamAuditOutcome>),
}

/// The result of running a whole plan: the reduced outcome plus per-cell
/// execution statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Perspective name (`grid` / `auditor` / `job-owner` / `end-user`).
    pub perspective: String,
    /// Strategy description (e.g. `quantify`, `beam(width=4)`).
    pub strategy: String,
    /// Total wall-clock of the run (execution + reduce) in microseconds.
    pub total_elapsed_us: u64,
    /// Per-cell stats, in plan order.
    pub cells: Vec<CellStat>,
    /// The reduced, perspective-specific outcome.
    pub outcome: ScenarioOutcome,
}

// ------------------------------------------------------------------- plan

#[derive(Debug)]
enum Reduce {
    Grid,
    Auditor {
        marketplace: String,
        transparency: Transparency,
        criteria: Vec<String>,
    },
    JobOwner {
        skill: String,
        criteria: Vec<String>,
    },
    EndUser {
        groups: Vec<String>,
    },
    Stream {
        criteria: Vec<String>,
    },
}

/// A compiled scenario: independent cells plus the deterministic reduce.
#[derive(Debug)]
pub struct Plan {
    perspective: &'static str,
    strategy: String,
    cells: Vec<Cell>,
    reduce: Reduce,
}

/// Compiles a spec against a session into an executable plan. All names
/// are resolved and all inputs prepared here, before anything runs — a
/// plan that compiles cannot fail on missing session state.
pub fn compile(session: &Session, spec: &ScenarioSpec) -> Result<Plan> {
    let strategy = spec.strategy();
    let grid = spec.criterion_grid();
    let criteria = grid.criteria()?;
    match &spec.perspective {
        Perspective::Grid {
            datasets,
            functions,
            filter,
        } => {
            if datasets.is_empty() || functions.is_empty() {
                return Err(SessionError::Command(
                    "a grid scenario needs at least one dataset and one function".into(),
                ));
            }
            let filter = filter
                .as_deref()
                .map(Filter::parse)
                .transpose()?;
            let mut configs = Vec::with_capacity(
                datasets.len() * functions.len() * criteria.len(),
            );
            for dataset in datasets {
                for function in functions {
                    for (_, criterion) in &criteria {
                        let mut config =
                            Configuration::new(dataset, function).with_criterion(*criterion);
                        if let Some(filter) = &filter {
                            config = config.with_filter(filter.clone());
                        }
                        configs.push(config);
                    }
                }
            }
            Plan::for_configurations(session, configs, strategy)
        }
        Perspective::Auditor {
            market,
            k,
            ranking_only,
            subgroup_depth,
            min_subgroup,
        } => {
            let market = market.build()?;
            let transparency = observation_transparency(*k, *ranking_only);
            Plan::for_auditor(
                &market,
                &transparency,
                &criteria,
                strategy,
                *subgroup_depth,
                *min_subgroup,
            )
        }
        Perspective::JobOwner {
            market,
            job,
            skill,
            weights,
        } => {
            let market = market.build()?;
            let base = market.job(job)?.scoring.clone();
            Plan::for_job_owner(market.workers(), &base, skill, weights, &criteria, strategy)
        }
        Perspective::EndUser { market, groups } => {
            if groups.is_empty() {
                return Err(SessionError::Command(
                    "an end-user scenario needs at least one group expression".into(),
                ));
            }
            let market = market.build()?;
            let filters = groups
                .iter()
                .map(|g| Filter::parse(g))
                .collect::<std::result::Result<Vec<_>, _>>()?;
            Plan::for_end_user(&market, &filters, strategy)
        }
        Perspective::Stream {
            market,
            job,
            k,
            ranking_only,
            config,
        } => {
            let market = market.build()?;
            let transparency = observation_transparency(*k, *ranking_only);
            Plan::for_stream(&market, &transparency, job, &criteria, strategy, *config)
        }
    }
}

/// The paper's transparency axes as the session commands expose them:
/// optional `k`-anonymization of worker data, optional function opacity.
pub(crate) fn observation_transparency(k: Option<usize>, ranking_only: bool) -> Transparency {
    Transparency {
        function: if ranking_only {
            fairank_marketplace::FunctionTransparency::RankingOnly
        } else {
            fairank_marketplace::FunctionTransparency::Visible
        },
        data: match k {
            Some(k) => fairank_marketplace::DataTransparency::Anonymized { k },
            None => fairank_marketplace::DataTransparency::Full,
        },
    }
}

/// Canonical byte serialization of a panel cell's resolved spec — the
/// `spec` half of its [`CellKey`]. Every analysis-relevant input appears,
/// length-prefixed: the resolved score source (concrete weights), the
/// filter, the range-fitted criterion (objective, aggregator, bins,
/// histogram range, EMD backend) and the search strategy. Serialization
/// is serde-canonical (struct field order), so equal specs always
/// produce equal bytes.
fn panel_spec_bytes(
    source: &ScoreSource,
    filter: &Filter,
    criterion: &FairnessCriterion,
    strategy: &SearchStrategy,
) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"panel.v1");
    for part in [
        serde_json::to_string(source),
        serde_json::to_string(filter),
        serde_json::to_string(criterion),
        serde_json::to_string(strategy),
    ] {
        let part = part.map_err(|e| SessionError::Json(e.to_string()))?;
        bytes.extend_from_slice(&(part.len() as u64).to_le_bytes());
        bytes.extend_from_slice(part.as_bytes());
    }
    Ok(bytes)
}

fn audit_label(job_id: &str, criterion_label: &str) -> String {
    if criterion_label.is_empty() {
        format!("audit {job_id}")
    } else {
        format!("audit {job_id} · {criterion_label}")
    }
}

impl Plan {
    /// Number of cells the plan fans out.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Labels of every cell, in plan order.
    pub fn cell_labels(&self) -> Vec<&str> {
        self.cells.iter().map(Cell::label).collect()
    }

    /// A grid plan over explicit configurations — the substrate
    /// [`Session::quantify_grid`] builds on. Resolves and validates every
    /// configuration up front, exactly as the pre-plan implementation did.
    pub(crate) fn for_configurations(
        session: &Session,
        configs: Vec<Configuration>,
        strategy: SearchStrategy,
    ) -> Result<Plan> {
        let mut cells = Vec::with_capacity(configs.len());
        for (index, config) in configs.iter().enumerate() {
            let handle = session.dataset_handle(&config.dataset)?;
            let source = match &config.scoring {
                ScoringChoice::Named(name) => {
                    ScoreSource::Function(session.function(name)?.clone())
                }
                ScoringChoice::Inline(source) => source.clone(),
            };
            // Unfiltered configs build their space straight off the shared
            // columns — no per-cell copy of the dataset; only a filter
            // materializes a working set.
            let space = if config.filter.is_empty() {
                handle.dataset().to_space(&source)?
            } else {
                handle.dataset().filter(&config.filter)?.to_space(&source)?
            };
            let mut config = config.clone();
            config.criterion = config.criterion.fit_range(&space);
            // The cache key hashes the *resolved* spec: the concrete score
            // source (never just a function's session-local name), the
            // filter, the range-fitted criterion and the strategy —
            // combined with the dataset's content fingerprint.
            let cache_key = Some(CellKey::new(
                handle.fingerprint(),
                &panel_spec_bytes(&source, &config.filter, &config.criterion, &strategy)?,
            ));
            cells.push(Cell {
                index,
                label: config.describe(),
                work: CellWork::Panel {
                    config,
                    space,
                    strategy,
                },
                budget: RunBudget::unlimited(),
                cache_key,
            });
        }
        Ok(Plan {
            perspective: "grid",
            strategy: strategy.describe(),
            cells,
            reduce: Reduce::Grid,
        })
    }

    /// An auditor plan over an already-built marketplace — the substrate
    /// [`crate::report::auditor_report`] builds on.
    pub(crate) fn for_auditor(
        market: &Marketplace,
        transparency: &Transparency,
        criteria: &[(String, FairnessCriterion)],
        strategy: SearchStrategy,
        subgroup_depth: usize,
        min_subgroup: usize,
    ) -> Result<Plan> {
        let mut cells = Vec::with_capacity(criteria.len() * market.jobs().len());
        for (criterion_idx, (criterion_label, criterion)) in criteria.iter().enumerate() {
            for job in market.jobs() {
                let obs = market.observe(&job.id, transparency)?;
                let space = obs.dataset.to_space(&obs.source)?;
                // Fit the histogram to the observed score range, as the
                // session's quantify does — unnormalized job scorings must
                // not saturate the unit-range edge bins.
                let fitted = criterion.fit_range(&space);
                cells.push(Cell {
                    index: cells.len(),
                    label: audit_label(&job.id, criterion_label),
                    work: CellWork::AuditJob {
                        criterion_idx,
                        job_id: job.id.clone(),
                        title: job.title.clone(),
                        space,
                        criterion: fitted,
                        strategy,
                        subgroup_depth,
                        min_subgroup,
                    },
                    budget: RunBudget::unlimited(),
                    cache_key: None,
                });
            }
        }
        Ok(Plan {
            perspective: "auditor",
            strategy: strategy.describe(),
            cells,
            reduce: Reduce::Auditor {
                marketplace: market.name.clone(),
                transparency: transparency.clone(),
                criteria: criteria.iter().map(|(l, _)| l.clone()).collect(),
            },
        })
    }

    /// A job-owner plan over an explicit dataset and base scoring — the
    /// substrate [`crate::report::job_owner_sweep`] builds on.
    ///
    /// The sweep deliberately keeps the criterion's histogram range fixed
    /// across variants instead of fitting it per variant: rebalancing
    /// already guarantees `[0, 1]` scores, and picking the fairest variant
    /// requires every row's unfairness in the same score units.
    pub(crate) fn for_job_owner(
        dataset: &Dataset,
        base: &LinearScoring,
        skill: &str,
        weights: &[f64],
        criteria: &[(String, FairnessCriterion)],
        strategy: SearchStrategy,
    ) -> Result<Plan> {
        if weights.is_empty() {
            return Err(SessionError::Command(
                "a job-owner scenario needs at least one weight to sweep".into(),
            ));
        }
        let mut cells = Vec::with_capacity(criteria.len() * weights.len());
        for (criterion_idx, (criterion_label, criterion)) in criteria.iter().enumerate() {
            for &w in weights {
                let variant = rebalanced_variant(base, skill, w)?;
                let space = dataset.to_space(&ScoreSource::Function(variant.clone()))?;
                let variant_label = format!("{skill}={w:.2}");
                let label = if criterion_label.is_empty() {
                    format!("sweep {variant_label}")
                } else {
                    format!("sweep {variant_label} · {criterion_label}")
                };
                cells.push(Cell {
                    index: cells.len(),
                    label,
                    work: CellWork::SweepVariant {
                        criterion_idx,
                        label: variant_label,
                        weights: variant.terms().to_vec(),
                        space,
                        criterion: *criterion,
                        strategy,
                    },
                    budget: RunBudget::unlimited(),
                    cache_key: None,
                });
            }
        }
        Ok(Plan {
            perspective: "job-owner",
            strategy: strategy.describe(),
            cells,
            reduce: Reduce::JobOwner {
                skill: skill.to_string(),
                criteria: criteria.iter().map(|(l, _)| l.clone()).collect(),
            },
        })
    }

    /// An end-user plan over an already-built marketplace — the substrate
    /// [`crate::report::end_user_report`] builds on. The strategy is
    /// recorded for the report header; end-user cells are closed-form.
    pub(crate) fn for_end_user(
        market: &Marketplace,
        groups: &[Filter],
        strategy: SearchStrategy,
    ) -> Result<Plan> {
        let workers = market.workers();
        let n = workers.num_rows();
        let mut cells = Vec::with_capacity(groups.len() * market.jobs().len());
        for (group_idx, group) in groups.iter().enumerate() {
            let group_rows = group.matching_rows(workers)?;
            let mut member = vec![false; n];
            for &r in &group_rows {
                member[r as usize] = true;
            }
            for job in market.jobs() {
                cells.push(Cell {
                    index: cells.len(),
                    label: format!("end-user {} · {}", group.render(), job.id),
                    work: CellWork::EndUserJob {
                        group_idx,
                        job_id: job.id.clone(),
                        title: job.title.clone(),
                        scores: market.scores_for(&job.id)?,
                        ranking: market.ranking_for(&job.id)?,
                        member: member.clone(),
                        group_size: group_rows.len(),
                    },
                    budget: RunBudget::unlimited(),
                    cache_key: None,
                });
            }
        }
        Ok(Plan {
            perspective: "end-user",
            strategy: strategy.describe(),
            cells,
            reduce: Reduce::EndUser {
                groups: groups.iter().map(Filter::render).collect(),
            },
        })
    }

    /// A stream plan over an already-built marketplace: one cell per
    /// criterion, each replaying the identical seed-deterministic event
    /// trajectory through the delta engine. Only the `quantify` strategy
    /// is meaningful here — beam and exhaustive searches carry no
    /// incremental state to reuse between rounds.
    pub(crate) fn for_stream(
        market: &Marketplace,
        transparency: &Transparency,
        job: &str,
        criteria: &[(String, FairnessCriterion)],
        strategy: SearchStrategy,
        config: StreamConfig,
    ) -> Result<Plan> {
        // Validate the job id at compile time, like every other resolver.
        market.job(job)?;
        let SearchStrategy::Quantify {
            max_depth,
            min_partition,
        } = strategy
        else {
            return Err(SessionError::Command(
                "stream scenarios require the quantify strategy (beam and \
                 exhaustive searches cannot reuse incremental state)"
                    .into(),
            ));
        };
        let mut cells = Vec::with_capacity(criteria.len());
        for (criterion_idx, (criterion_label, criterion)) in criteria.iter().enumerate() {
            let mut search = Quantify::new(*criterion).with_min_partition_size(min_partition);
            if let Some(depth) = max_depth {
                search = search.with_max_depth(depth);
            }
            let label = if criterion_label.is_empty() {
                format!("stream {job}")
            } else {
                format!("stream {job} · {criterion_label}")
            };
            cells.push(Cell {
                index: cells.len(),
                label,
                work: CellWork::Stream {
                    criterion_idx,
                    job_id: job.to_string(),
                    market: market.clone(),
                    transparency: transparency.clone(),
                    search,
                    config,
                },
                budget: RunBudget::unlimited(),
                cache_key: None,
            });
        }
        Ok(Plan {
            perspective: "stream",
            strategy: strategy.describe(),
            cells,
            reduce: Reduce::Stream {
                criteria: criteria.iter().map(|(l, _)| l.clone()).collect(),
            },
        })
    }

    /// Stamps every cell with the given cancellation scope. Cells compile
    /// with an unlimited budget; session-backed runs stamp the session's
    /// budget automatically, and the service stamps its per-request scope
    /// before handing cells to the worker pool.
    pub fn with_run_budget(mut self, budget: &RunBudget) -> Plan {
        for cell in &mut self.cells {
            cell.budget = budget.clone();
        }
        self
    }

    /// Runs every cell sequentially on the calling thread, then reduces.
    pub fn run(self, session: &mut Session) -> Result<ScenarioReport> {
        self.with_run_budget(session.run_budget())
            .execute_with(run_cells_sequential)
            .finish(Some(session))
    }

    /// Runs cells on bounded scoped OS threads (they are CPU-bound and
    /// independent), then reduces. Results are identical to [`Plan::run`].
    pub fn run_parallel(self, session: &mut Session) -> Result<ScenarioReport> {
        self.with_run_budget(session.run_budget())
            .execute_with(run_cells_scoped)
            .finish(Some(session))
    }

    /// Runs cells through a caller-provided executor (e.g. a server worker
    /// pool), then reduces. The executor must return one result per cell;
    /// order does not matter (results carry their cell index).
    pub fn run_with<E>(self, session: &mut Session, executor: E) -> Result<ScenarioReport>
    where
        E: FnOnce(Vec<Cell>) -> Vec<Result<CellResult>>,
    {
        self.with_run_budget(session.run_budget())
            .execute_with(executor)
            .finish(Some(session))
    }

    /// Runs sequentially without a session: marketplace perspectives never
    /// touch one, and grid plans simply skip the panel commit.
    pub(crate) fn run_detached(self) -> Result<ScenarioReport> {
        self.execute_with(run_cells_sequential).finish(None)
    }

    /// The execution half of a run: hands every cell to the executor and
    /// captures the results. No session is involved, so callers that keep
    /// sessions behind locks (the service) can release the lock while the
    /// cells run and re-acquire it only for [`ExecutedPlan::finish`] — a
    /// worker that needs the same session's lock must never wait on a
    /// thread that is waiting on workers.
    pub fn execute_with<E>(self, executor: E) -> ExecutedPlan
    where
        E: FnOnce(Vec<Cell>) -> Vec<Result<CellResult>>,
    {
        let started = Instant::now();
        let Plan {
            perspective,
            strategy,
            cells,
            reduce,
        } = self;
        let expected = cells.len();
        let results = executor(cells);
        ExecutedPlan {
            perspective,
            strategy,
            reduce,
            started,
            expected,
            results,
        }
    }
}

/// A plan whose cells have executed, waiting for the reduce step.
#[derive(Debug)]
pub struct ExecutedPlan {
    perspective: &'static str,
    strategy: String,
    reduce: Reduce,
    started: Instant,
    expected: usize,
    results: Vec<Result<CellResult>>,
}

impl ExecutedPlan {
    /// Reduces the cell results into the report. Grid plans run against a
    /// session commit one panel per `quantify` cell; pass `None` to skip
    /// commits (marketplace perspectives never need a session).
    pub fn finish(self, mut session: Option<&mut Session>) -> Result<ScenarioReport> {
        let ExecutedPlan {
            perspective,
            strategy,
            reduce,
            started,
            expected,
            results,
        } = self;
        let mut results = results
            .into_iter()
            .collect::<Result<Vec<CellResult>>>()?;
        if results.len() != expected {
            return Err(SessionError::Internal(format!(
                "plan executor returned {} results for {expected} cells",
                results.len()
            )));
        }
        // Executors may complete out of order; the reduce is defined over
        // plan order.
        results.sort_by_key(|r| r.index);
        let stats: Vec<CellStat> = results.iter().map(|r| r.stat.clone()).collect();

        let outcome = match reduce {
            Reduce::Grid => {
                let mut rows = Vec::with_capacity(results.len());
                for result in results {
                    let from_cache = result.stat.cache_hits > 0;
                    let CellPayload::Panel {
                        config,
                        space,
                        outcome,
                    } = result.payload
                    else {
                        return Err(SessionError::Internal(
                            "grid reduce received a non-grid cell".into(),
                        ));
                    };
                    let description = config.describe();
                    let (unfairness, partitions) =
                        (outcome.unfairness, outcome.num_partitions);
                    let panel = match (&mut session, outcome.quantify) {
                        (Some(session), Some(quantify)) => {
                            Some(session.commit_panel(*config, *space, quantify, from_cache))
                        }
                        _ => None,
                    };
                    rows.push(GridRow {
                        config: description,
                        unfairness,
                        partitions,
                        panel,
                    });
                }
                ScenarioOutcome::Grid(rows)
            }
            Reduce::Auditor {
                marketplace,
                transparency,
                criteria,
            } => {
                let mut buckets: Vec<Vec<AuditorJobRow>> =
                    criteria.iter().map(|_| Vec::new()).collect();
                for result in results {
                    let CellPayload::AuditRow { criterion_idx, row } = result.payload
                    else {
                        return Err(SessionError::Internal(
                            "auditor reduce received a non-audit cell".into(),
                        ));
                    };
                    buckets[criterion_idx].push(row);
                }
                ScenarioOutcome::Audit(
                    criteria
                        .into_iter()
                        .zip(buckets)
                        .map(|(criterion, mut rows)| {
                            rows.sort_by(|a, b| {
                                b.unfairness
                                    .partial_cmp(&a.unfairness)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            });
                            AuditOutcome {
                                criterion,
                                report: AuditorReport {
                                    marketplace: marketplace.clone(),
                                    transparency: transparency.clone(),
                                    rows,
                                },
                            }
                        })
                        .collect(),
                )
            }
            Reduce::JobOwner { skill, criteria } => {
                let mut buckets: Vec<Vec<VariantRow>> =
                    criteria.iter().map(|_| Vec::new()).collect();
                for result in results {
                    let CellPayload::Variant { criterion_idx, row } = result.payload
                    else {
                        return Err(SessionError::Internal(
                            "job-owner reduce received a non-sweep cell".into(),
                        ));
                    };
                    buckets[criterion_idx].push(row);
                }
                ScenarioOutcome::JobOwner(
                    criteria
                        .into_iter()
                        .zip(buckets)
                        .map(|(criterion, rows)| {
                            let fairest = rows
                                .iter()
                                .enumerate()
                                .min_by(|(_, a), (_, b)| {
                                    a.unfairness
                                        .partial_cmp(&b.unfairness)
                                        .unwrap_or(std::cmp::Ordering::Equal)
                                })
                                .map(|(i, _)| i)
                                .unwrap_or(0);
                            JobOwnerOutcome {
                                criterion,
                                report: JobOwnerReport {
                                    skill: skill.clone(),
                                    rows,
                                    fairest,
                                },
                            }
                        })
                        .collect(),
                )
            }
            Reduce::EndUser { groups } => {
                let mut buckets: Vec<Vec<EndUserJobRow>> =
                    groups.iter().map(|_| Vec::new()).collect();
                for result in results {
                    let CellPayload::EndUserRow { group_idx, row } = result.payload
                    else {
                        return Err(SessionError::Internal(
                            "end-user reduce received a non-end-user cell".into(),
                        ));
                    };
                    buckets[group_idx].push(row);
                }
                ScenarioOutcome::EndUser(
                    groups
                        .into_iter()
                        .zip(buckets)
                        .map(|(group, mut rows)| {
                            rows.sort_by(|a, b| {
                                b.group_mean_percentile
                                    .partial_cmp(&a.group_mean_percentile)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            });
                            EndUserOutcome {
                                group,
                                report: EndUserReport { group: String::new(), rows },
                            }
                        })
                        .collect(),
                )
            }
            Reduce::Stream { criteria } => {
                let mut buckets: Vec<Option<StreamOutcome>> =
                    criteria.iter().map(|_| None).collect();
                for result in results {
                    let CellPayload::Stream {
                        criterion_idx,
                        outcome,
                    } = result.payload
                    else {
                        return Err(SessionError::Internal(
                            "stream reduce received a non-stream cell".into(),
                        ));
                    };
                    buckets[criterion_idx] = Some(outcome);
                }
                ScenarioOutcome::Stream(
                    criteria
                        .into_iter()
                        .zip(buckets)
                        .map(|(criterion, outcome)| {
                            outcome
                                .map(|outcome| StreamAuditOutcome { criterion, outcome })
                                .ok_or_else(|| {
                                    SessionError::Internal(
                                        "stream reduce is missing a criterion's cell".into(),
                                    )
                                })
                        })
                        .collect::<Result<Vec<_>>>()?,
                )
            }
        };

        let mut report = ScenarioReport {
            perspective: perspective.to_string(),
            strategy,
            total_elapsed_us: 0,
            cells: stats,
            outcome,
        };
        // Fix up the EndUserReport group fields (the inner report repeats
        // the group for standalone rendering).
        if let ScenarioOutcome::EndUser(views) = &mut report.outcome {
            for view in views {
                view.report.group = view.group.clone();
            }
        }
        report.total_elapsed_us = elapsed_us(started.elapsed());
        Ok(report)
    }
}

/// The sequential executor: cells run in plan order on this thread.
pub fn run_cells_sequential(cells: Vec<Cell>) -> Vec<Result<CellResult>> {
    cells.into_iter().map(Cell::execute).collect()
}

/// The scoped-thread executor: cells drain a shared queue across at most
/// `available_parallelism` OS threads (cells are CPU-bound, so more
/// threads than cores only adds oversubscription — a 384-cell grid must
/// not spawn 384 concurrent searches). Panicking cells become `Internal`
/// errors; the other cells still run.
pub fn run_cells_scoped(cells: Vec<Cell>) -> Vec<Result<CellResult>> {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(cells.len());
    if workers <= 1 {
        return run_cells_sequential(cells);
    }
    let queue = std::sync::Mutex::new(cells.into_iter());
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Hold the queue lock only to pull the next cell.
                let Some(cell) = queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .next()
                else {
                    break;
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || cell.execute(),
                ))
                .unwrap_or_else(|_| {
                    Err(SessionError::Internal(
                        "a scenario cell panicked while executing".into(),
                    ))
                });
                results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(result);
            });
        }
    });
    // Completion order is arbitrary; the reduce orders by cell index.
    results.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        let mut s = Session::new();
        s.add_dataset("table1", fairank_data::paper::table1_dataset())
            .unwrap();
        s.add_function("paper-f", fairank_data::paper::table1_scoring())
            .unwrap();
        s
    }

    fn grid_spec() -> ScenarioSpec {
        ScenarioSpec {
            perspective: Perspective::Grid {
                datasets: vec!["table1".into()],
                functions: vec!["paper-f".into()],
                filter: None,
            },
            strategy: None,
            criteria: Some(CriterionGrid {
                objectives: vec![Objective::MostUnfair],
                aggregators: vec![Aggregator::Mean, Aggregator::Max],
                bins: vec![5, 10],
                emds: vec![EmdBackendKind::OneD],
            }),
        }
    }

    #[test]
    fn grid_compile_counts_cells() {
        let s = session();
        let plan = compile(&s, &grid_spec()).unwrap();
        assert_eq!(plan.cell_count(), 4); // 1 dataset × 1 function × 4 criteria
        assert_eq!(plan.cell_labels().len(), 4);
    }

    #[test]
    fn grid_run_commits_panels_in_order() {
        let mut s = session();
        let plan = compile(&s, &grid_spec()).unwrap();
        let report = plan.run(&mut s).unwrap();
        let ScenarioOutcome::Grid(rows) = &report.outcome else {
            panic!("expected grid outcome");
        };
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.panel, Some(i));
            assert_eq!(
                s.panel(i).unwrap().outcome.unfairness,
                row.unfairness
            );
        }
        assert_eq!(report.cells.len(), 4);
        assert!(report.cells.iter().all(|c| c.unfairness.is_some()));
    }

    #[test]
    fn sequential_and_parallel_runs_agree() {
        let mut a = session();
        let mut b = session();
        let ra = compile(&a, &grid_spec()).unwrap().run(&mut a).unwrap();
        let rb = compile(&b, &grid_spec())
            .unwrap()
            .run_parallel(&mut b)
            .unwrap();
        let (ScenarioOutcome::Grid(rows_a), ScenarioOutcome::Grid(rows_b)) =
            (&ra.outcome, &rb.outcome)
        else {
            panic!("expected grid outcomes");
        };
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn beam_strategy_reports_without_panels() {
        let mut s = session();
        let mut spec = grid_spec();
        spec.strategy = Some(SearchStrategy::Beam { width: 2 });
        let report = compile(&s, &spec).unwrap().run(&mut s).unwrap();
        let ScenarioOutcome::Grid(rows) = &report.outcome else {
            panic!("expected grid outcome");
        };
        assert!(rows.iter().all(|r| r.panel.is_none()));
        assert!(s.panels().is_empty());
        assert!(report.strategy.starts_with("beam"));
    }

    #[test]
    fn compile_validates_names_before_running() {
        let s = session();
        let mut spec = grid_spec();
        spec.perspective = Perspective::Grid {
            datasets: vec!["ghost".into()],
            functions: vec!["paper-f".into()],
            filter: None,
        };
        assert!(matches!(
            compile(&s, &spec),
            Err(SessionError::UnknownDataset(_))
        ));
    }

    #[test]
    fn criterion_grid_cardinality_and_labels() {
        let grid = CriterionGrid {
            objectives: vec![Objective::MostUnfair, Objective::LeastUnfair],
            aggregators: vec![Aggregator::Mean],
            bins: vec![5, 10, 20],
            emds: vec![EmdBackendKind::OneD, EmdBackendKind::Transport],
        };
        assert_eq!(grid.cardinality(), 12);
        let criteria = grid.criteria().unwrap();
        assert_eq!(criteria.len(), 12);
        assert!(criteria[0].0.contains("most-unfair mean"));
        // Empty axis is an error.
        let empty = CriterionGrid {
            objectives: vec![],
            ..CriterionGrid::default()
        };
        assert_eq!(empty.cardinality(), 0);
        assert!(empty.criteria().is_err());
    }

    #[test]
    fn auditor_spec_compiles_one_cell_per_job_and_criterion() {
        let s = Session::new();
        let spec = ScenarioSpec {
            perspective: Perspective::Auditor {
                market: MarketSpec {
                    preset: "taskrabbit".into(),
                    n: 80,
                    seed: 7,
                },
                k: None,
                ranking_only: false,
                subgroup_depth: 1,
                min_subgroup: 10,
            },
            strategy: None,
            criteria: Some(CriterionGrid {
                objectives: vec![Objective::MostUnfair],
                aggregators: vec![Aggregator::Mean, Aggregator::Max],
                bins: vec![10],
                emds: vec![EmdBackendKind::OneD],
            }),
        };
        let market = fairank_marketplace::scenario::taskrabbit_like(80, 7).unwrap();
        let plan = compile(&s, &spec).unwrap();
        assert_eq!(plan.cell_count(), 2 * market.jobs().len());
        let mut s2 = Session::new();
        let report = plan.run_parallel(&mut s2).unwrap();
        let ScenarioOutcome::Audit(audits) = &report.outcome else {
            panic!("expected audit outcome");
        };
        assert_eq!(audits.len(), 2);
        for audit in audits {
            assert_eq!(audit.report.rows.len(), market.jobs().len());
            assert!(!audit.criterion.is_empty());
        }
    }

    #[test]
    fn end_user_spec_supports_multiple_groups() {
        let s = Session::new();
        let spec = ScenarioSpec::new(Perspective::EndUser {
            market: MarketSpec {
                preset: "taskrabbit".into(),
                n: 80,
                seed: 7,
            },
            groups: vec!["gender=Female".into(), "gender=Male".into()],
        });
        let mut s2 = Session::new();
        let report = compile(&s, &spec).unwrap().run(&mut s2).unwrap();
        let ScenarioOutcome::EndUser(views) = &report.outcome else {
            panic!("expected end-user outcome");
        };
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].report.group, views[0].group);
        assert!(report.cells.iter().all(|c| c.unfairness.is_none()));
    }

    fn stream_spec(seed: Option<u64>) -> ScenarioSpec {
        ScenarioSpec {
            perspective: Perspective::Stream {
                market: MarketSpec {
                    preset: "taskrabbit".into(),
                    n: 60,
                    seed: 3,
                },
                job: "errands".into(),
                k: None,
                ranking_only: false,
                config: StreamConfig {
                    rounds: 2,
                    arrivals_per_round: 2,
                    departures_per_round: 2,
                    rescores_per_round: 3,
                    seed,
                },
            },
            strategy: None,
            criteria: Some(CriterionGrid {
                objectives: vec![Objective::MostUnfair],
                aggregators: vec![Aggregator::Mean, Aggregator::Max],
                bins: vec![10],
                emds: vec![EmdBackendKind::OneD],
            }),
        }
    }

    /// Strips the wall-clock fields — the only legitimately nondeterministic
    /// parts of a stream report.
    fn strip_stream_timing(mut report: ScenarioReport) -> ScenarioReport {
        report.total_elapsed_us = 0;
        for cell in &mut report.cells {
            cell.elapsed_us = 0;
        }
        if let ScenarioOutcome::Stream(streams) = &mut report.outcome {
            for s in streams {
                for r in &mut s.outcome.rounds {
                    r.requantify_us = 0;
                }
            }
        }
        report
    }

    #[test]
    fn stream_spec_compiles_one_cell_per_criterion_and_runs() {
        let s = Session::new();
        let plan = compile(&s, &stream_spec(Some(11))).unwrap();
        assert_eq!(plan.cell_count(), 2);
        assert!(plan.cell_labels()[0].starts_with("stream errands"));
        let report = plan.run_detached().unwrap();
        let ScenarioOutcome::Stream(streams) = &report.outcome else {
            panic!("expected stream outcome");
        };
        assert_eq!(streams.len(), 2);
        for stream in streams {
            assert!(!stream.criterion.is_empty());
            assert_eq!(stream.outcome.rounds.len(), 3); // round 0 + 2 churn rounds
            assert_eq!(stream.outcome.job_id, "errands");
        }
        // The cell stats surface the delta counters: churn rounds reuse
        // surviving histograms.
        assert!(report.cells.iter().all(|c| c.delta_reused_histograms > 0));
        assert!(report.cells.iter().all(|c| c.unfairness.is_some()));
    }

    #[test]
    fn stream_runs_are_deterministic() {
        let s = Session::new();
        let a = compile(&s, &stream_spec(Some(5)))
            .unwrap()
            .run_detached()
            .unwrap();
        let b = compile(&s, &stream_spec(Some(5)))
            .unwrap()
            .run_detached()
            .unwrap();
        assert_eq!(strip_stream_timing(a), strip_stream_timing(b));
    }

    #[test]
    fn stream_rejects_non_quantify_strategies() {
        let s = Session::new();
        let mut spec = stream_spec(None);
        spec.strategy = Some(SearchStrategy::Beam { width: 4 });
        let err = compile(&s, &spec).unwrap_err();
        assert!(err.to_string().contains("quantify strategy"));
    }

    #[test]
    fn stream_validates_the_job_at_compile_time() {
        let s = Session::new();
        let mut spec = stream_spec(None);
        let Perspective::Stream { job, .. } = &mut spec.perspective else {
            unreachable!();
        };
        *job = "ghost-job".into();
        assert!(compile(&s, &spec).is_err());
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = grid_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Strategy/criteria may be omitted entirely in hand-written JSON.
        let minimal: ScenarioSpec = serde_json::from_str(
            r#"{"perspective": {"Grid": {"datasets": ["a"], "functions": ["f"], "filter": null}}}"#,
        )
        .unwrap();
        assert_eq!(minimal.strategy(), SearchStrategy::default());
        assert_eq!(minimal.criterion_grid(), CriterionGrid::default());
    }
}
