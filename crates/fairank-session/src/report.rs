//! Role-specific reports: the paper's three demonstration scenarios (§4).
//!
//! * [`auditor_report`] — AUDITOR: "quantify the fairness for each job
//!   offered on the platform, and identify demographics groups that are
//!   least/most favored on the platform by each job".
//! * [`job_owner_sweep`] — JOB OWNER: "define different scoring functions
//!   and examine their impact … choose the best function for their job".
//! * [`end_user_report`] — END-USER: "given a group to which the end-user
//!   belongs and a job of interest, see how well the marketplace is
//!   treating that group".

use fairank_core::fairness::FairnessCriterion;
use fairank_core::plan::SearchStrategy;
use fairank_core::scoring::LinearScoring;
use fairank_data::dataset::Dataset;
use fairank_data::filter::Filter;
use fairank_marketplace::{Marketplace, Transparency};
use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::plan::{Plan, ScenarioOutcome};

// ---------------------------------------------------------------- auditor

/// One job row of an auditor report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditorJobRow {
    /// Job id.
    pub job_id: String,
    /// Job title.
    pub title: String,
    /// Quantified unfairness of the job's ranking.
    pub unfairness: f64,
    /// Number of partitions in the most-unfair partitioning.
    pub partitions: usize,
    /// Label of the most favored subgroup (highest score advantage).
    pub most_favored: Option<String>,
    /// Its mean-score advantage over the rest of the population.
    pub most_favored_advantage: f64,
    /// Label of the least favored subgroup.
    pub least_favored: Option<String>,
    /// Its (negative) mean-score advantage.
    pub least_favored_advantage: f64,
}

/// The auditor's marketplace-wide fairness report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditorReport {
    /// Marketplace name.
    pub marketplace: String,
    /// Transparency setting the audit ran under.
    pub transparency: Transparency,
    /// Per-job rows, most unfair first.
    pub rows: Vec<AuditorJobRow>,
}

/// Audits every job of a marketplace under a transparency setting.
/// `subgroup_depth` bounds the subgroup conjunction length;
/// `min_subgroup` skips groups smaller than that.
///
/// A thin builder over the scenario plan layer: one plan cell per job
/// (quantification + extremal subgroups), reduced into the sorted report.
pub fn auditor_report(
    marketplace: &Marketplace,
    transparency: &Transparency,
    criterion: &FairnessCriterion,
    subgroup_depth: usize,
    min_subgroup: usize,
) -> Result<AuditorReport> {
    let criteria = [(String::new(), *criterion)];
    let plan = Plan::for_auditor(
        marketplace,
        transparency,
        &criteria,
        SearchStrategy::default(),
        subgroup_depth,
        min_subgroup,
    )?;
    match plan.run_detached()?.outcome {
        ScenarioOutcome::Audit(mut audits) if audits.len() == 1 => {
            Ok(audits.remove(0).report)
        }
        _ => Err(crate::error::SessionError::Internal(
            "auditor plan reduced to a non-audit outcome".into(),
        )),
    }
}

impl AuditorReport {
    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "AUDITOR REPORT — marketplace {:?}\n{:<16} {:>10} {:>6}  {:<34} {:<34}\n",
            self.marketplace, "job", "unfairness", "parts", "most favored", "least favored"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<16} {:>10.4} {:>6}  {:<34} {:<34}\n",
                r.job_id,
                r.unfairness,
                r.partitions,
                r.most_favored
                    .as_deref()
                    .map(|l| format!("{l} ({:+.3})", r.most_favored_advantage))
                    .unwrap_or_else(|| "-".into()),
                r.least_favored
                    .as_deref()
                    .map(|l| format!("{l} ({:+.3})", r.least_favored_advantage))
                    .unwrap_or_else(|| "-".into()),
            ));
        }
        out
    }
}

// -------------------------------------------------------------- job owner

/// One scoring-function variant of a job-owner sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantRow {
    /// Display label, e.g. `rating=0.4`.
    pub label: String,
    /// The full weight vector of the variant.
    pub weights: Vec<(String, f64)>,
    /// Quantified (most-unfair) unfairness under the variant.
    pub unfairness: f64,
    /// Partitions found.
    pub partitions: usize,
}

/// The job-owner exploration result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOwnerReport {
    /// The swept skill.
    pub skill: String,
    /// One row per weight tried, in sweep order.
    pub rows: Vec<VariantRow>,
    /// Index (into `rows`) of the fairest variant — the one whose
    /// most-unfair partitioning has the *lowest* unfairness.
    pub fairest: usize,
}

/// Sweeps the weight of `skill` in `base` over `weights` and quantifies
/// each variant on `dataset`. The remaining weights are rescaled so all
/// weights sum to 1 (keeping scores in `[0, 1]`).
///
/// The sweep deliberately keeps the criterion's histogram range fixed
/// across variants instead of fitting it per variant: rebalancing already
/// guarantees `[0, 1]` scores, and picking the fairest variant requires
/// every row's unfairness to be measured in the same score units.
pub fn job_owner_sweep(
    dataset: &Dataset,
    base: &LinearScoring,
    skill: &str,
    weights: &[f64],
    criterion: &FairnessCriterion,
) -> Result<JobOwnerReport> {
    let criteria = [(String::new(), *criterion)];
    let plan = Plan::for_job_owner(
        dataset,
        base,
        skill,
        weights,
        &criteria,
        SearchStrategy::default(),
    )?;
    match plan.run_detached()?.outcome {
        ScenarioOutcome::JobOwner(mut sweeps) if sweeps.len() == 1 => {
            Ok(sweeps.remove(0).report)
        }
        _ => Err(crate::error::SessionError::Internal(
            "job-owner plan reduced to a non-sweep outcome".into(),
        )),
    }
}

/// Sets `skill` to `weight` and rescales the other weights so the total
/// stays 1.0 (the paper's functions map into `[0, 1]`).
pub(crate) fn rebalanced_variant(
    base: &LinearScoring,
    skill: &str,
    weight: f64,
) -> Result<LinearScoring> {
    let others_total: f64 = base
        .terms()
        .iter()
        .filter(|(n, _)| n != skill)
        .map(|(_, w)| w)
        .sum();
    let mut builder = LinearScoring::builder();
    for (name, w) in base.terms() {
        if name == skill {
            continue;
        }
        let rescaled = if others_total > 0.0 {
            w / others_total * (1.0 - weight)
        } else {
            0.0
        };
        builder = builder.weight(name.clone(), rescaled);
    }
    builder = builder.weight(skill, weight);
    Ok(builder.build_unchecked()?)
}

impl JobOwnerReport {
    /// Renders the sweep as a table with the fairest row marked.
    pub fn render(&self) -> String {
        let mut out = format!(
            "JOB OWNER SWEEP — skill {:?}\n{:<16} {:>10} {:>6}\n",
            self.skill, "variant", "unfairness", "parts"
        );
        for (i, r) in self.rows.iter().enumerate() {
            let marker = if i == self.fairest { "  ← fairest" } else { "" };
            out.push_str(&format!(
                "{:<16} {:>10.4} {:>6}{}\n",
                r.label, r.unfairness, r.partitions, marker
            ));
        }
        out
    }
}

// --------------------------------------------------------------- end user

/// How one job treats the end-user's group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndUserJobRow {
    /// Job id.
    pub job_id: String,
    /// Job title.
    pub title: String,
    /// Mean percentile of the group's members in the job's ranking
    /// (1.0 = always at the top, 0.0 = always at the bottom).
    pub group_mean_percentile: f64,
    /// Mean score of the group.
    pub group_mean_score: f64,
    /// Mean score of everyone else.
    pub others_mean_score: f64,
    /// Members of the group.
    pub group_size: usize,
}

/// The end-user's cross-job view of their group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndUserReport {
    /// The group definition (rendered filter).
    pub group: String,
    /// Per-job rows, best-treated first.
    pub rows: Vec<EndUserJobRow>,
}

/// Evaluates how every job of the marketplace treats the group selected by
/// `group` (e.g. `gender=Female & city=Grenoble`).
///
/// A thin builder over the scenario plan layer: one closed-form plan cell
/// per job, reduced into the percentile-sorted report.
pub fn end_user_report(
    marketplace: &Marketplace,
    group: &Filter,
    _criterion: &FairnessCriterion,
) -> Result<EndUserReport> {
    let plan = Plan::for_end_user(
        marketplace,
        std::slice::from_ref(group),
        SearchStrategy::default(),
    )?;
    match plan.run_detached()?.outcome {
        ScenarioOutcome::EndUser(mut views) if views.len() == 1 => {
            Ok(views.remove(0).report)
        }
        _ => Err(crate::error::SessionError::Internal(
            "end-user plan reduced to a non-end-user outcome".into(),
        )),
    }
}

impl EndUserReport {
    /// Renders the report; the top row is the job to target.
    pub fn render(&self) -> String {
        let mut out = format!(
            "END-USER REPORT — group {}\n{:<16} {:>11} {:>12} {:>12}\n",
            self.group, "job", "percentile", "group score", "others score"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<16} {:>11.3} {:>12.3} {:>12.3}\n",
                r.job_id, r.group_mean_percentile, r.group_mean_score, r.others_mean_score
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_marketplace::scenario::taskrabbit_like;

    fn market() -> Marketplace {
        taskrabbit_like(300, 17).unwrap()
    }

    #[test]
    fn auditor_report_covers_all_jobs() {
        let m = market();
        let report = auditor_report(
            &m,
            &Transparency::full(),
            &FairnessCriterion::default(),
            2,
            10,
        )
        .unwrap();
        assert_eq!(report.rows.len(), m.jobs().len());
        // Sorted most unfair first.
        for w in report.rows.windows(2) {
            assert!(w[0].unfairness >= w[1].unfairness);
        }
        // Favored subgroups identified with sensible signs.
        let top = &report.rows[0];
        assert!(top.most_favored.is_some());
        assert!(top.most_favored_advantage >= 0.0);
        assert!(top.least_favored_advantage <= 0.0);
        let text = report.render();
        assert!(text.contains("AUDITOR REPORT"));
        assert!(text.contains(&top.job_id));
    }

    #[test]
    fn auditor_bias_targets_show_up_as_least_favored() {
        let m = market();
        let report = auditor_report(
            &m,
            &Transparency::full(),
            &FairnessCriterion::default(),
            1,
            20,
        )
        .unwrap();
        // On the pure-rating job the injected penalties hit Female /
        // African-American workers; one of them must be least favored.
        let rated = report
            .rows
            .iter()
            .find(|r| r.job_id == "rated-anything")
            .unwrap();
        let least = rated.least_favored.as_deref().unwrap();
        assert!(
            least.contains("Female") || least.contains("African-American"),
            "least favored was {least}"
        );
    }

    #[test]
    fn job_owner_sweep_finds_fairest_weight() {
        let m = market();
        let base = m.job("wood-panels").unwrap().scoring.clone();
        let report = job_owner_sweep(
            m.workers(),
            &base,
            "rating",
            &[0.0, 0.25, 0.5, 0.75, 1.0],
            &FairnessCriterion::default(),
        )
        .unwrap();
        assert_eq!(report.rows.len(), 5);
        let fairest = &report.rows[report.fairest];
        for r in &report.rows {
            assert!(fairest.unfairness <= r.unfairness + 1e-12);
        }
        // Rating carries the injected bias: weighting it fully should be
        // no fairer than the fairest option.
        let full_rating = report.rows.last().unwrap();
        assert!(full_rating.unfairness >= fairest.unfairness);
        assert!(report.render().contains("← fairest"));
    }

    #[test]
    fn rebalanced_weights_sum_to_one() {
        let base = LinearScoring::builder()
            .weight("a", 0.5)
            .weight("b", 0.3)
            .weight("c", 0.2)
            .build_unchecked()
            .unwrap();
        let v = rebalanced_variant(&base, "a", 0.8).unwrap();
        let total: f64 = v.terms().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let a = v.terms().iter().find(|(n, _)| n == "a").unwrap().1;
        assert!((a - 0.8).abs() < 1e-12);
        // b : c keeps its 3:2 proportion within the remaining 0.2.
        let b = v.terms().iter().find(|(n, _)| n == "b").unwrap().1;
        assert!((b - 0.12).abs() < 1e-12);
    }

    #[test]
    fn end_user_report_ranks_jobs_for_group() {
        let m = market();
        let group = Filter::all().eq("gender", "Female");
        let report = end_user_report(&m, &group, &FairnessCriterion::default()).unwrap();
        assert_eq!(report.rows.len(), m.jobs().len());
        assert!(report.rows[0].group_size > 0);
        for w in report.rows.windows(2) {
            assert!(w[0].group_mean_percentile >= w[1].group_mean_percentile);
        }
        // The biased rating-only job should treat women worse than the
        // best job for them.
        let rated = report
            .rows
            .iter()
            .find(|r| r.job_id == "rated-anything")
            .unwrap();
        assert!(report.rows[0].group_mean_percentile >= rated.group_mean_percentile);
        assert!(rated.group_mean_score < rated.others_mean_score);
        assert!(report.render().contains("END-USER REPORT"));
    }

    #[test]
    fn end_user_empty_group_is_safe() {
        let m = market();
        let group = Filter::all().eq("gender", "Nonexistent");
        let report = end_user_report(&m, &group, &FairnessCriterion::default()).unwrap();
        assert!(report.rows.iter().all(|r| r.group_size == 0));
    }

    #[test]
    fn reports_serialize() {
        let m = market();
        let report = auditor_report(
            &m,
            &Transparency::full(),
            &FairnessCriterion::default(),
            1,
            20,
        )
        .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: AuditorReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
