//! The cross-session memoized plan-cell cache.
//!
//! Plan cells are deterministic functions of their compiled inputs
//! (pinned since the plan layer landed, bit-identical across all four EMD
//! backends), and the dataset store gives those inputs a stable content
//! identity — so a cell's outcome can be memoized under its
//! [`CellKey`] and served to every session and connection asking the same
//! question, bitwise-identical to a fresh compute.
//!
//! The cache is:
//!
//! - **Size-bounded.** `cap` ready entries, least-recently-used eviction
//!   (`serve --cell-cache-cap`; 0 disables caching entirely).
//! - **Single-flight.** Two clients racing the same key compute it once:
//!   the first claimant gets a [`ComputeGuard`] and runs the cell on its
//!   worker; later claimants block on a condvar until the guard completes
//!   (hit) or is dropped on failure (they retry and compute themselves).
//! - **Observable.** Hit/miss/eviction counters feed `CellStat`s, the
//!   panel General box and the `sessions` admin reply; `misses` counts
//!   actual computes, so `hits + misses` is the total claim traffic.
//!
//! Only content-addressed work is cached: cells over mutable inputs (the
//! streaming re-audit's evolving spaces) have no stable fingerprint,
//! never get a key, and always bypass this cache — the incremental
//! `DeltaEngine` is their reuse story.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use fairank_core::plan::{CellKey, CellOutcome};

use crate::plan::CellStat;

/// The memoized result of one plan cell: the outcome plus the engine
/// counters the original compute reported. The resolved space is *not*
/// stored — on a hit the claiming cell already owns a content-identical
/// compiled space, so entries stay tree-sized.
#[derive(Debug)]
pub struct CachedCell {
    /// The cell outcome, bitwise-identical to a fresh compute.
    pub outcome: CellOutcome,
    /// The stat line of the original compute (cache counters zeroed; the
    /// serving side stamps its own label, wall-clock and hit flag).
    pub stat: CellStat,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Ready (servable) entries currently resident.
    pub entries: u64,
    /// Claims served from a resident entry (including waits on an
    /// in-flight compute that completed).
    pub hits: u64,
    /// Claims that had to compute (exactly the number of actual computes).
    pub misses: u64,
    /// Ready entries evicted by the LRU bound.
    pub evictions: u64,
}

#[derive(Debug)]
enum Slot {
    /// A claimant is computing this key; waiters block until it resolves.
    InFlight,
    /// A servable result, stamped with its last-use tick for LRU.
    Ready { value: Arc<CachedCell>, stamp: u64 },
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CellKey, Slot>,
    /// Monotone use counter backing the LRU stamps.
    tick: u64,
}

/// The outcome of [`CellCache::claim`].
#[derive(Debug)]
pub enum Claim<'a> {
    /// A resident result — serve it, nothing to compute.
    Hit(Arc<CachedCell>),
    /// This claimant computes: run the cell, then
    /// [`ComputeGuard::complete`] (dropping the guard uncompleted aborts
    /// the flight and wakes waiters to retry).
    Miss(ComputeGuard<'a>),
    /// Caching is disabled (`cap == 0`); just execute.
    Bypass,
}

/// The concurrent, size-bounded, single-flight cell cache.
#[derive(Debug)]
pub struct CellCache {
    cap: usize,
    inner: Mutex<CacheInner>,
    done: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for CellCache {
    fn default() -> Self {
        CellCache::new(CellCache::DEFAULT_CAP)
    }
}

impl CellCache {
    /// Default ready-entry bound. Entries are tree-sized (an outcome plus
    /// counters), so thousands are cheap.
    pub const DEFAULT_CAP: usize = 4096;

    /// A cache bounded to `cap` ready entries; `cap == 0` disables
    /// caching (every claim is a [`Claim::Bypass`]).
    pub fn new(cap: usize) -> CellCache {
        CellCache {
            cap,
            inner: Mutex::new(CacheInner::default()),
            done: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// The configured ready-entry bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claims `key`: a resident result is a [`Claim::Hit`]; an absent key
    /// makes this claimant the computer ([`Claim::Miss`]); a key another
    /// claimant is computing blocks until that flight resolves.
    pub fn claim(&self, key: CellKey) -> Claim<'_> {
        if !self.enabled() {
            return Claim::Bypass;
        }
        let mut inner = self.lock();
        loop {
            match inner.map.get(&key) {
                Some(Slot::Ready { .. }) => {
                    inner.tick += 1;
                    let tick = inner.tick;
                    let Some(Slot::Ready { value, stamp }) = inner.map.get_mut(&key) else {
                        unreachable!("entry vanished under the lock");
                    };
                    *stamp = tick;
                    let value = Arc::clone(value);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Claim::Hit(value);
                }
                Some(Slot::InFlight) => {
                    // Another claimant is computing this key. Wait for it
                    // to complete (→ hit) or abort (→ retry, likely
                    // becoming the computer ourselves).
                    inner = self
                        .done
                        .wait(inner)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                None => {
                    inner.map.insert(key, Slot::InFlight);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Claim::Miss(ComputeGuard {
                        cache: self,
                        key,
                        completed: false,
                    });
                }
            }
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        let entries = {
            let inner = self.lock();
            inner
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count() as u64
        };
        CacheStats {
            entries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Inserts a completed result and evicts down to `cap` ready entries
    /// (in-flight slots are never evicted and don't count toward the cap).
    fn finish_flight(&self, key: CellKey, value: Arc<CachedCell>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let stamp = inner.tick;
        inner.map.insert(key, Slot::Ready { value, stamp });
        while inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
            > self.cap
        {
            // O(entries) min-stamp scan: fine at cache-sized populations,
            // and only paid on insert-past-cap.
            let Some(oldest) = inner
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { stamp, .. } => Some((*stamp, *k)),
                    Slot::InFlight => None,
                })
                .min_by_key(|&(stamp, _)| stamp)
                .map(|(_, k)| k)
            else {
                break;
            };
            inner.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.done.notify_all();
    }

    /// Removes an aborted flight's slot so waiters can retry.
    fn abort_flight(&self, key: CellKey) {
        let mut inner = self.lock();
        if matches!(inner.map.get(&key), Some(Slot::InFlight)) {
            inner.map.remove(&key);
        }
        drop(inner);
        self.done.notify_all();
    }
}

/// Exclusive right (and obligation) to compute one in-flight cell.
///
/// Call [`ComputeGuard::complete`] with the computed result to publish it
/// and wake waiters. Dropping the guard without completing (the compute
/// errored or panicked) aborts the flight: the slot is removed and
/// waiters retry, so a failure never wedges the key.
#[derive(Debug)]
pub struct ComputeGuard<'a> {
    cache: &'a CellCache,
    key: CellKey,
    completed: bool,
}

impl ComputeGuard<'_> {
    /// The key this guard is computing.
    pub fn key(&self) -> CellKey {
        self.key
    }

    /// Publishes the computed result and wakes waiters.
    pub fn complete(mut self, value: Arc<CachedCell>) {
        self.completed = true;
        self.cache.finish_flight(self.key, value);
    }
}

impl Drop for ComputeGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.cache.abort_flight(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::fingerprint::fingerprint_bytes;
    use fairank_core::quantify::SearchStats;

    fn key(tag: &str) -> CellKey {
        CellKey::new(fingerprint_bytes(b"dataset"), tag.as_bytes())
    }

    fn cached(unfairness: f64) -> Arc<CachedCell> {
        Arc::new(CachedCell {
            outcome: CellOutcome {
                unfairness,
                num_partitions: 2,
                stats: SearchStats::default(),
                elapsed: std::time::Duration::from_micros(10),
                quantify: None,
            },
            stat: CellStat {
                label: String::new(),
                elapsed_us: 10,
                nodes_evaluated: 1,
                candidate_splits: 0,
                histograms_built: 0,
                emd_calls: 0,
                emd_cache_hits: 0,
                pairwise_batches: 0,
                delta_reused_histograms: 0,
                delta_invalidated_emds: 0,
                cache_hits: 0,
                cache_misses: 0,
                unfairness: Some(unfairness),
            },
        })
    }

    #[test]
    fn miss_then_hit() {
        let cache = CellCache::new(8);
        let Claim::Miss(guard) = cache.claim(key("a")) else {
            panic!("first claim must miss");
        };
        guard.complete(cached(0.5));
        let Claim::Hit(value) = cache.claim(key("a")) else {
            panic!("second claim must hit");
        };
        assert_eq!(value.outcome.unfairness, 0.5);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn zero_cap_disables() {
        let cache = CellCache::new(0);
        assert!(!cache.enabled());
        assert!(matches!(cache.claim(key("a")), Claim::Bypass));
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = CellCache::new(2);
        for tag in ["a", "b"] {
            let Claim::Miss(guard) = cache.claim(key(tag)) else {
                panic!("fresh keys miss");
            };
            guard.complete(cached(0.1));
        }
        // Touch "a" so "b" is the LRU entry.
        assert!(matches!(cache.claim(key("a")), Claim::Hit(_)));
        let Claim::Miss(guard) = cache.claim(key("c")) else {
            panic!("fresh key misses");
        };
        guard.complete(cached(0.3));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        assert!(matches!(cache.claim(key("a")), Claim::Hit(_)));
        assert!(matches!(cache.claim(key("c")), Claim::Hit(_)));
        // "b" was evicted: claiming it is a fresh miss (recomputable).
        assert!(matches!(cache.claim(key("b")), Claim::Miss(_)));
    }

    #[test]
    fn dropped_guard_aborts_and_lets_the_next_claimant_compute() {
        let cache = CellCache::new(8);
        {
            let Claim::Miss(_guard) = cache.claim(key("a")) else {
                panic!("first claim must miss");
            };
            // Guard dropped uncompleted (simulating a failed compute).
        }
        let Claim::Miss(guard) = cache.claim(key("a")) else {
            panic!("aborted flight must be reclaimable");
        };
        guard.complete(cached(0.9));
        assert!(matches!(cache.claim(key("a")), Claim::Hit(_)));
    }

    #[test]
    fn racing_claims_single_flight() {
        let cache = Arc::new(CellCache::new(8));
        let racers = 8;
        let barrier = Arc::new(std::sync::Barrier::new(racers));
        std::thread::scope(|scope| {
            for _ in 0..racers {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    match cache.claim(key("hot")) {
                        Claim::Hit(value) => assert_eq!(value.outcome.unfairness, 0.7),
                        Claim::Miss(guard) => {
                            // Simulate the compute while the others wait.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            guard.complete(cached(0.7));
                        }
                        Claim::Bypass => panic!("cache is enabled"),
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one racer computes");
        assert_eq!(stats.hits, racers as u64 - 1, "everyone else hits");
    }

    #[test]
    fn in_flight_slots_are_never_evicted() {
        let cache = CellCache::new(1);
        let Claim::Miss(flight) = cache.claim(key("slow")) else {
            panic!("fresh key misses");
        };
        // Fill past the cap while "slow" is still computing.
        for tag in ["a", "b"] {
            let Claim::Miss(guard) = cache.claim(key(tag)) else {
                panic!("fresh keys miss");
            };
            guard.complete(cached(0.2));
        }
        flight.complete(cached(0.8));
        // The flight's entry survived to completion and is servable.
        assert!(matches!(cache.claim(key("slow")), Claim::Hit(_)));
    }
}
