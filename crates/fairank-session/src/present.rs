//! Human rendering of [`Response`] payloads.
//!
//! This module is the *only* place structured session results become text.
//! [`render`] turns any [`Response`] into exactly the string the old
//! string-in/string-out `execute` API produced (the `api_equivalence` suite
//! pins this byte for byte), so the CLI REPL is `render(apply(..)?)` and a
//! remote client that received a response as JSON renders the identical
//! transcript locally.

use crate::response::{
    CompareView, DataHeadView, DatasetEntry, FunctionEntry, NodeView, PanelEntry, PanelView,
    Response, StreamView, SubgroupView,
};
use fairank_marketplace::stream::StreamOutcome;

/// The command reference shown by `help`.
pub const HELP: &str = "\
FaiRank commands:
  datasets | funcs | panels            list session objects
  load <name> <path.csv>               load a CSV dataset
  generate <name> <preset> [n=] [seed=]  presets: crowdsourcing, biased,
                                       taskrabbit, qapa
  define <name> <attr*w+attr*w…>       define a scoring function
  data <name> [rows=10]                print the head of a dataset
  describe <name>                      per-column summary statistics
  save <dir> | open <dir>              persist / restore the session
  filter <new> <src> \"<expr>\"          derive a filtered dataset
  anonymize <new> <src> k=2 [method=mondrian|datafly]
  quantify <dataset> <func> [objective=most|least] [agg=mean|max|min|variance]
           [bins=10] [emd=1d|transport|batched|kernel] [where=\"<expr>\"] [opaque]
  subgroups <dataset> <func> [depth=2] [min=5] [top=5]
                                       most/least favored subgroups
  show <panel>                         render a panel's partitioning tree
  node <panel> <node>                  the Node box for one tree node
  why <panel> <node>                   explain the search decision at a node
  compare <a> <b>                      compare two panels
  export <panel> <path.json>           export a panel as JSON
  audit <taskrabbit|qapa> [n=] [seed=] [k=] [ranking-only]
  jobowner <preset> <job> <skill> [n=] [seed=]
  enduser <preset> \"<group expr>\" [n=] [seed=]
  stream <preset> <job> [n=] [seed=] [rounds=] [arrivals=] [departures=]
         [rescores=] [stream-seed=] [k=] [ranking-only]
                                       incremental re-audit over live churn
  scenario grid <ds,..> <func,..> [objectives=] [aggs=] [bins=] [emd=]
           [strategy=quantify|beam|exhaustive] [width=] [depth=] [min=]
           [budget=] [where=\"<expr>\"]   compile a grid into parallel cells
  scenario auditor <preset> [n=] [seed=] [k=] [ranking-only] [sg-depth=] [sg-min=]
  scenario jobowner <preset> <job> <skill> [weights=w1,w2,..] [n=] [seed=]
  scenario enduser <preset> \"<group>\"… [n=] [seed=]
  scenario stream <preset> <job> [rounds=] [arrivals=] [departures=] [rescores=]
           [stream-seed=] [n=] [seed=] [k=] [ranking-only]
  scenario <spec.json>                 run a scenario plan from a JSON spec
  sessions | evict <name>              registry admin (server --admin only)
  help | quit
";

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders histogram bin counts as a sparkline, one character per bin. An
/// empty histogram (no mass anywhere) renders as dots.
pub fn sparkline_counts(counts: &[u64]) -> String {
    if counts.iter().all(|&c| c == 0) {
        return "·".repeat(counts.len());
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                SPARK_LEVELS[0]
            } else {
                let idx = ((c as f64 / max as f64) * (SPARK_LEVELS.len() - 1) as f64).round()
                    as usize;
                SPARK_LEVELS[idx.clamp(1, SPARK_LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Renders the structured response exactly as the REPL prints it.
pub fn render(response: &Response) -> String {
    match response {
        Response::Help => HELP.to_string(),
        Response::Quit => "quit".to_string(),
        Response::DatasetList(entries) => render_dataset_list(entries),
        Response::FunctionList(entries) => render_function_list(entries),
        Response::PanelList(entries) => render_panel_list(entries),
        Response::DatasetLoaded { name, rows, path } => {
            format!("loaded {name} ({rows} rows) from {path}")
        }
        Response::DatasetGenerated {
            name,
            preset,
            n,
            seed,
        } => format!("generated {name} = {preset}(n={n}, seed={seed})"),
        Response::FunctionDefined { name, expr } => format!("defined {name} = {expr}"),
        Response::DataHead(head) => render_data_head(head),
        Response::Description { text, .. } => text.clone(),
        Response::SessionSaved {
            dir,
            datasets,
            functions,
        } => format!("saved {datasets} dataset(s) and {functions} function(s) to {dir}"),
        Response::SessionOpened {
            dir,
            datasets,
            functions,
        } => format!("opened session from {dir}: {datasets} dataset(s), {functions} function(s)"),
        Response::DatasetDerived {
            name,
            source,
            expr,
            rows,
        } => format!("{name} = {source} where {expr} ({rows} rows)"),
        Response::DatasetAnonymized {
            name,
            source,
            method,
            k,
            suppressed,
        } => format!("{name} = {method}({source}, k={k}), {suppressed} rows suppressed"),
        Response::PanelCreated(view) => format!(
            "panel #{}: unfairness {:.6} over {} partitions\n{}",
            view.id,
            view.unfairness,
            view.num_partitions,
            render_tree_view(&view.nodes)
        ),
        Response::PanelDetail(view) => format!(
            "{}\n{}",
            render_general_view(view),
            render_tree_view(&view.nodes)
        ),
        Response::NodeDetail(node) => render_node_view(node),
        Response::Explanation { text, .. } => text.clone(),
        Response::CompareReport(view) => render_compare_view(view),
        Response::Exported { panel, path } => format!("exported panel #{panel} to {path}"),
        Response::Subgroups(view) => render_subgroups_view(view),
        Response::Audit(report) => report.render(),
        Response::JobOwnerSweep(report) => report.render(),
        Response::EndUserView(report) => report.render(),
        Response::Scenario(report) => render_scenario_report(report),
        Response::SessionList(view) => {
            let mut out = if view.sessions.is_empty() {
                "no live sessions".to_string()
            } else {
                view.sessions
                    .iter()
                    .map(|n| format!("session {n}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            out.push_str(&format!(
                "\nstore: {} datasets, {} bytes\ncell cache: {} entries ({} hits, {} misses, {} evictions)",
                view.store_datasets,
                view.store_bytes,
                view.cell_cache_entries,
                view.cell_cache_hits,
                view.cell_cache_misses,
                view.cell_cache_evictions,
            ));
            out
        }
        Response::SessionEvicted { name } => format!("evicted session {name:?}"),
        Response::Stream(view) => render_stream_view(view),
    }
}

/// Renders a streaming re-audit: header plus the per-round trajectory.
fn render_stream_view(view: &StreamView) -> String {
    format!(
        "STREAM RE-AUDIT — {} · job {} · {} round(s) · seed {}\n{}",
        view.marketplace,
        view.outcome.job_id,
        view.outcome.config.rounds,
        view.outcome.config.seed(),
        render_stream_rounds(&view.outcome),
    )
}

/// Renders the per-round table of a streaming trajectory, shared by the
/// `stream` command and the stream scenario perspective.
fn render_stream_rounds(outcome: &StreamOutcome) -> String {
    let mut out = String::from(
        "  round  events  workers  unfairness  parts  reused  dropped  emds        µs\n",
    );
    for r in &outcome.rounds {
        out.push_str(&format!(
            "  {:<5}  {:<6}  {:<7}  {:<10.6}  {:<5}  {:<6}  {:<7}  {:<4}  {:>8}\n",
            r.round,
            r.events,
            r.population,
            r.unfairness,
            r.num_partitions,
            r.delta_reused_histograms,
            r.emd_entries_dropped,
            r.emd_calls,
            r.requantify_us,
        ));
    }
    out.push_str(&format!(
        "  {} histogram(s) reused across {} churn round(s)\n",
        outcome.total_reused_histograms(),
        outcome.rounds.len().saturating_sub(1),
    ));
    out
}

/// Renders a scenario-plan report: header, the perspective-specific
/// outcome, then one stat line per cell.
fn render_scenario_report(report: &crate::plan::ScenarioReport) -> String {
    use crate::plan::ScenarioOutcome;

    let mut out = format!(
        "SCENARIO REPORT — {} · strategy {} · {} cell(s) · {} µs\n",
        report.perspective,
        report.strategy,
        report.cells.len(),
        report.total_elapsed_us,
    );
    match &report.outcome {
        ScenarioOutcome::Grid(rows) => {
            for row in rows {
                let panel = row
                    .panel
                    .map(|id| format!("#{id}"))
                    .unwrap_or_else(|| "-".into());
                out.push_str(&format!(
                    "{:<5} u={:.6}  parts={:<3} {}\n",
                    panel, row.unfairness, row.partitions, row.config
                ));
            }
        }
        ScenarioOutcome::Audit(audits) => {
            for audit in audits {
                if !audit.criterion.is_empty() {
                    out.push_str(&format!("criterion: {}\n", audit.criterion));
                }
                out.push_str(&audit.report.render());
            }
        }
        ScenarioOutcome::JobOwner(sweeps) => {
            for sweep in sweeps {
                if !sweep.criterion.is_empty() {
                    out.push_str(&format!("criterion: {}\n", sweep.criterion));
                }
                out.push_str(&sweep.report.render());
            }
        }
        ScenarioOutcome::EndUser(views) => {
            for view in views {
                out.push_str(&view.report.render());
            }
        }
        ScenarioOutcome::Stream(streams) => {
            for stream in streams {
                if !stream.criterion.is_empty() {
                    out.push_str(&format!("criterion: {}\n", stream.criterion));
                }
                out.push_str(&format!(
                    "stream {} · {} round(s) · seed {}\n",
                    stream.outcome.job_id,
                    stream.outcome.config.rounds,
                    stream.outcome.config.seed(),
                ));
                out.push_str(&render_stream_rounds(&stream.outcome));
            }
        }
    }
    out.push_str("cell stats:\n");
    for cell in &report.cells {
        let unfairness = cell
            .unfairness
            .map(|u| format!("u={u:.4}  "))
            .unwrap_or_default();
        // Delta counters only appear on cells that actually ran
        // incrementally, so from-scratch reports render unchanged.
        let delta = if cell.delta_reused_histograms + cell.delta_invalidated_emds > 0 {
            format!(
                ", Δ reused {} dropped {}",
                cell.delta_reused_histograms, cell.delta_invalidated_emds
            )
        } else {
            String::new()
        };
        // Likewise the cache marker only appears on served-from-cache
        // cells, keeping uncached renderings byte-identical.
        let cached = if cell.cache_hits > 0 { ", cached" } else { "" };
        out.push_str(&format!(
            "  {:<44} {:>8} µs  {}cand={} hists={} emds={} (hits {}, batches {}{}{})\n",
            cell.label,
            cell.elapsed_us,
            unfairness,
            cell.candidate_splits,
            cell.histograms_built,
            cell.emd_calls,
            cell.emd_cache_hits,
            cell.pairwise_batches,
            delta,
            cached,
        ));
    }
    out
}

fn render_dataset_list(entries: &[DatasetEntry]) -> String {
    if entries.is_empty() {
        return "no datasets — try `generate d biased` or `load d file.csv`".into();
    }
    entries
        .iter()
        .map(|e| format!("{}  ({} rows, {} columns)", e.name, e.rows, e.columns))
        .collect::<Vec<_>>()
        .join("\n")
}

fn render_function_list(entries: &[FunctionEntry]) -> String {
    if entries.is_empty() {
        return "no functions — try `define f rating*0.7+language_test*0.3`".into();
    }
    entries
        .iter()
        .map(|e| {
            let terms: Vec<String> = e
                .terms
                .iter()
                .map(|(a, w)| format!("{w}·{a}"))
                .collect();
            format!("{} = {}", e.name, terms.join(" + "))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn render_panel_list(entries: &[PanelEntry]) -> String {
    if entries.is_empty() {
        return "no panels — run `quantify <dataset> <function>`".into();
    }
    entries
        .iter()
        .map(|e| format!("#{}  u={:.4}  {}", e.id, e.unfairness, e.config))
        .collect::<Vec<_>>()
        .join("\n")
}

fn render_data_head(head: &DataHeadView) -> String {
    let mut widths: Vec<usize> = head.columns.iter().map(String::len).collect();
    for row in &head.rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, name) in head.columns.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        out.push_str(&format!("{:width$}", name, width = widths[i]));
    }
    out.push('\n');
    for row in &head.rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        out.push('\n');
    }
    if head.rows.len() < head.total_rows {
        out.push_str(&format!(
            "… ({} more rows)\n",
            head.total_rows - head.rows.len()
        ));
    }
    out
}

/// Renders a partitioning tree from its wire nodes (`nodes[0]` is the
/// root), with box-drawing connectors and leaf sparklines.
pub fn render_tree_view(nodes: &[NodeView]) -> String {
    let mut out = String::new();
    if !nodes.is_empty() {
        render_tree_node(nodes, 0, "", true, true, &mut out);
    }
    out
}

fn render_tree_node(
    nodes: &[NodeView],
    node: usize,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) {
    let view = &nodes[node];
    let connector = if is_root {
        ""
    } else if is_last {
        "└─ "
    } else {
        "├─ "
    };
    // Only the last path step is new information at this depth.
    let label = view
        .label
        .rsplit(" ∧ ")
        .next()
        .unwrap_or(&view.label)
        .to_string();
    let annotation = if view.is_leaf {
        format!(
            " (n={}, μ={:.3}) {}",
            view.size,
            view.mean_score,
            sparkline_counts(&view.histogram)
        )
    } else {
        format!(
            " (n={}) ⊢ split on {}",
            view.size,
            view.split_attribute.as_deref().unwrap_or("?")
        )
    };
    out.push_str(prefix);
    out.push_str(connector);
    out.push_str(&format!("[{node}] "));
    out.push_str(&label);
    out.push_str(&annotation);
    out.push('\n');

    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { "│  " })
    };
    for (i, &child) in view.children.iter().enumerate() {
        render_tree_node(
            nodes,
            child,
            &child_prefix,
            i + 1 == view.children.len(),
            false,
            out,
        );
    }
}

/// Renders the *General* box of a panel view (the tree nodes are ignored).
pub fn render_general_view(view: &PanelView) -> String {
    format!(
        "Panel #{} — {}\n\
         unfairness      {:.6}\n\
         partitions      {}\n\
         tree nodes      {}\n\
         max depth       {}\n\
         individuals     {}\n\
         search time     {} µs\n\
         splits scored   {}\n\
         histograms      {}\n\
         EMD calls       {} ({} cache hits, {} batches)\n\
         delta reuse     {} histograms, {} EMD entries invalidated\n",
        view.id,
        view.config,
        view.unfairness,
        view.num_partitions,
        view.tree_nodes,
        view.max_depth,
        view.individuals,
        view.elapsed_us,
        view.candidate_splits,
        view.histograms_built,
        view.emd_calls,
        view.emd_cache_hits,
        view.pairwise_batches,
        view.delta_reused_histograms,
        view.delta_invalidated_emds,
    )
}

/// Renders the *Node* box for one wire node.
pub fn render_node_view(view: &NodeView) -> String {
    let kind = if view.is_leaf {
        "final partition".to_string()
    } else {
        format!(
            "internal, split on {}",
            view.split_attribute.as_deref().unwrap_or("?")
        )
    };
    let divergence = view
        .divergence_vs_siblings
        .map(|d| format!("{d:.4}"))
        .unwrap_or_else(|| "-".into());
    format!(
        "Node [{}] {}\n\
         kind            {}\n\
         individuals     {}\n\
         mean score      {:.4}\n\
         score range     [{:.4}, {:.4}]\n\
         vs siblings     {}\n\
         histogram       {}  (bins of {:?})\n",
        view.node,
        view.label,
        kind,
        view.size,
        view.mean_score,
        view.min_score,
        view.max_score,
        divergence,
        sparkline_counts(&view.histogram),
        view.histogram,
    )
}

fn render_compare_view(view: &CompareView) -> String {
    format!(
        "compare      #{:<28} #{}\n\
         config       {:<28} {}\n\
         unfairness   {:<28.6} {:.6}  (Δ {:+.6})\n\
         partitions   {:<28} {}\n\
         individuals  {:<28} {}\n",
        view.a_id,
        view.b_id,
        view.a_config,
        view.b_config,
        view.a_unfairness,
        view.b_unfairness,
        view.delta,
        view.a_partitions,
        view.b_partitions,
        view.a_individuals,
        view.b_individuals,
    )
}

fn render_subgroups_view(view: &SubgroupView) -> String {
    let mut out = format!(
        "subgroups of {} under {} (depth ≤ {}, size ≥ {}): {}\n",
        view.dataset, view.function, view.depth, view.min_size, view.total
    );
    out.push_str("most favored:\n");
    for s in &view.most_favored {
        out.push_str(&format!(
            "  {:<44} n={:<4} advantage {:+.3}  divergence {:.3}\n",
            s.label, s.size, s.advantage, s.divergence
        ));
    }
    out.push_str("least favored:\n");
    for s in &view.least_favored {
        out.push_str(&format!(
            "  {:<44} n={:<4} advantage {:+.3}  divergence {:.3}\n",
            s.label, s.size, s.advantage, s.divergence
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_counts_shapes() {
        assert_eq!(sparkline_counts(&[0, 0, 0]), "···");
        let s = sparkline_counts(&[3, 0, 1]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('█'));
        assert_eq!(s.chars().nth(1), Some('▁'));
    }

    #[test]
    fn empty_listings_render_hints() {
        assert!(render(&Response::DatasetList(Vec::new())).contains("no datasets"));
        assert!(render(&Response::FunctionList(Vec::new())).contains("no functions"));
        assert!(render(&Response::PanelList(Vec::new())).contains("no panels"));
    }

    #[test]
    fn quit_and_help_are_stable() {
        assert_eq!(render(&Response::Quit), "quit");
        assert!(render(&Response::Help).contains("FaiRank commands"));
    }

    #[test]
    fn data_head_alignment_and_ellipsis() {
        let head = DataHeadView {
            name: "pop".into(),
            columns: vec!["gender".into(), "r".into()],
            rows: vec![
                vec!["F".into(), "0.25".into()],
                vec!["M".into(), "0.5".into()],
            ],
            total_rows: 4,
        };
        let text = render(&Response::DataHead(head));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 rows + ellipsis
        assert!(lines[0].starts_with("gender"));
        // The `r` column is padded to the widest cell (`0.25`).
        assert_eq!(lines[0], "gender  r   ");
        assert_eq!(lines[3], "… (2 more rows)");
    }

    #[test]
    fn simple_ack_lines() {
        assert_eq!(
            render(&Response::DatasetLoaded {
                name: "d".into(),
                rows: 3,
                path: "x.csv".into()
            }),
            "loaded d (3 rows) from x.csv"
        );
        assert_eq!(
            render(&Response::DatasetAnonymized {
                name: "a".into(),
                source: "d".into(),
                method: "Mondrian".into(),
                k: 2,
                suppressed: 0
            }),
            "a = Mondrian(d, k=2), 0 rows suppressed"
        );
        assert_eq!(
            render(&Response::Exported {
                panel: 1,
                path: "p.json".into()
            }),
            "exported panel #1 to p.json"
        );
    }
}
